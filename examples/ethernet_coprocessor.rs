//! The Ethernet network coprocessor (paper §5): four frame-buffer
//! channels merged onto one bus, with a look at what happens when the
//! group is overloaded (bus splitting, the paper's future-work item).
//!
//! Run with: `cargo run --example ethernet_coprocessor`

use std::error::Error;

use interface_synthesis::core::{BusGenerator, ProtocolGenerator};
use interface_synthesis::sim::Simulator;
use interface_synthesis::systems::ethernet_coprocessor;

fn main() -> Result<(), Box<dyn Error>> {
    let eth = ethernet_coprocessor();
    println!("== ethernet coprocessor: derived channels ==\n");
    for &ch in &eth.channels {
        let c = eth.system.channel(ch);
        println!(
            "  {} : {} {} {}  ({} accesses of {} bits)",
            c.name,
            eth.system.behavior(c.accessor).name,
            c.direction.arrow(),
            eth.system.variable(c.variable).name,
            c.accesses,
            c.message_bits()
        );
    }

    let design = BusGenerator::new().generate(&eth.system, &eth.groups[0])?;
    println!("\n== single shared bus ==\n");
    println!(
        "  width {} pins, total wires {}, reduction {:.1}% vs {} dedicated pins",
        design.width,
        design.total_wires(),
        100.0 * design.interconnect_reduction(&eth.system),
        design.dedicated_wires(&eth.system)
    );

    let refined = ProtocolGenerator::new().refine(&eth.system, &design)?;
    let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
    println!("\n== simulation ==\n");
    for (_, outcome) in report.finished_behaviors() {
        println!(
            "  {} finished at {} clocks",
            outcome.name,
            outcome.finish_time.expect("finished")
        );
    }

    // Splitting: if the same four channels had no compute padding, no
    // single bus would satisfy Eq. 1 and the group must split.
    println!("\n== bus splitting (future-work extension) ==\n");
    let outcome = BusGenerator::new().generate_with_split(&eth.system, &eth.groups[0])?;
    println!(
        "  this group fits on {} bus(es); widths {:?}",
        outcome.bus_count(),
        outcome.buses.iter().map(|b| b.width).collect::<Vec<_>>()
    );
    println!("  (generate_with_split only splits when Eq. 1 fails on every width)");
    Ok(())
}

//! The answering machine (paper §5): the *complete* pipeline starting
//! from an unpartitioned specification — partition, derive channels,
//! group them, generate the bus and protocol, simulate.
//!
//! Run with: `cargo run --example answering_machine`

use std::error::Error;

use interface_synthesis::core::{BusGenerator, ProtocolGenerator};
use interface_synthesis::partition::Partitioner;
use interface_synthesis::sim::Simulator;
use interface_synthesis::systems::answering_machine::answering_machine_unpartitioned;

fn main() -> Result<(), Box<dyn Error>> {
    let sys = answering_machine_unpartitioned();
    println!("== unpartitioned specification ==\n");
    for b in &sys.behaviors {
        println!("  process {}", b.name);
    }
    for v in &sys.variables {
        println!("  variable {} : {}", v.name, v.ty);
    }

    // System partitioning (the paper's Fig. 1 step): controller logic on
    // one chip, the sample memories on another.
    let result = Partitioner::new()
        .place_behavior("CONTROLLER", "ctrl_chip")
        .place_behavior("PLAY_GREETING", "ctrl_chip")
        .place_behavior("RECORD_MSG", "ctrl_chip")
        .place_variable("GREETING", "mem_chip")
        .place_variable("MESSAGES", "mem_chip")
        .partition(&sys)?;

    println!("\n== after partitioning: derived channels ==\n");
    for &ch in &result.channels {
        let c = result.system.channel(ch);
        println!(
            "  {} : {} {} {}  ({} accesses of {} bits)",
            c.name,
            result.system.behavior(c.accessor).name,
            c.direction.arrow(),
            result.system.variable(c.variable).name,
            c.accesses,
            c.message_bits()
        );
    }
    let groups = result.channel_groups();
    println!("  -> {} bus candidate group(s)", groups.len());

    // Bus generation on the single chip-to-chip group.
    let design = BusGenerator::new().generate(&result.system, &groups[0])?;
    println!("\n== bus generation ==\n");
    println!(
        "  width {} pins (dedicated would need {}), reduction {:.1}%",
        design.width,
        design.dedicated_wires(&result.system),
        100.0 * design.interconnect_reduction(&result.system)
    );
    println!("  exploration (width: bus rate vs sum of channel rates):");
    for row in design
        .exploration
        .rows
        .iter()
        .take(design.width as usize + 2)
    {
        println!(
            "    w={:>2}  {:>6.2} vs {:>6.2}  {}",
            row.width,
            row.bus_rate,
            row.sum_ave_rates,
            if row.feasible {
                "feasible"
            } else {
                "infeasible"
            }
        );
    }

    // Protocol generation + simulation.
    let refined = ProtocolGenerator::new().refine(&result.system, &design)?;
    let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
    println!("\n== simulation of the refined machine ==\n");
    for (_, outcome) in report.finished_behaviors() {
        println!(
            "  {} finished at {} clocks",
            outcome.name,
            outcome.finish_time.expect("finished")
        );
    }
    let messages = result
        .system
        .variable_by_name("MESSAGES")
        .expect("MESSAGES");
    if let interface_synthesis::spec::Value::Array(items) = report.final_variable(messages) {
        println!(
            "  MESSAGES[0..4] = {:?}",
            items
                .iter()
                .take(4)
                .map(|v| v.as_u64().unwrap_or(0))
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}

//! Design-space exploration: how constraints and weights steer bus
//! generation (the paper's Fig. 8 methodology), plus protocol and
//! arbitration trade-offs measured in simulation.
//!
//! Run with: `cargo run --example design_space_explorer`

use std::error::Error;

use interface_synthesis::core::{
    Arbitration, BusDesign, BusGenerator, Constraint, ProtocolGenerator, ProtocolKind,
};
use interface_synthesis::sim::Simulator;
use interface_synthesis::systems::flc;

fn main() -> Result<(), Box<dyn Error>> {
    let f = flc::flc();
    let chans = f.bus_channels();

    println!("== width exploration (no constraints) ==\n");
    let exploration = BusGenerator::new().explore(&f.system, &chans)?;
    println!("  width  bus rate  sum of ave rates  feasible");
    for row in &exploration.rows {
        println!(
            "  {:>5}  {:>8.2}  {:>16.2}  {}",
            row.width,
            row.bus_rate,
            row.sum_ave_rates,
            if row.feasible { "yes" } else { "no" }
        );
    }

    println!("\n== constraint-driven selection (Fig. 8) ==\n");
    let scenarios: Vec<(&str, Vec<Constraint>)> = vec![
        (
            "A: peak-rate floor",
            vec![Constraint::min_peak_rate(f.ch2, 10.0, 10.0)],
        ),
        (
            "B: peak floor + width band [14,18]",
            vec![
                Constraint::min_peak_rate(f.ch2, 10.0, 2.0),
                Constraint::min_bus_width(14, 1.0),
                Constraint::max_bus_width(18, 2.0),
            ],
        ),
        (
            "C: heavy width band [14,16]",
            vec![
                Constraint::min_peak_rate(f.ch2, 10.0, 1.0),
                Constraint::min_bus_width(14, 5.0),
                Constraint::max_bus_width(16, 5.0),
            ],
        ),
        (
            "D: pin-starved (max 10 pins, heavy)",
            vec![Constraint::max_bus_width(10, 100.0)],
        ),
    ];
    for (name, constraints) in scenarios {
        let design = BusGenerator::new()
            .constraints(constraints)
            .generate(&f.system, &chans)?;
        println!(
            "  {name:<38} -> width {:>2}, cost {:>8.2}, reduction {:>5.1}%",
            design.width,
            design.cost,
            100.0 * design.interconnect_reduction(&f.system)
        );
    }

    println!("\n== protocol trade-off at width 8 (measured) ==\n");
    for protocol in [
        ProtocolKind::FullHandshake,
        ProtocolKind::HalfHandshake,
        ProtocolKind::FixedDelay { cycles: 3 },
    ] {
        // Half-handshake cannot serve ch2 (a read); use ch1 alone.
        let design = BusDesign::with_width(vec![f.ch1], 8, protocol);
        let refined = ProtocolGenerator::new().refine(&f.system, &design)?;
        let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
        println!(
            "  {:<16} {} control line(s), EVAL_R3 = {} clocks",
            protocol.to_string(),
            protocol.control_lines(),
            report.finish_time(f.eval_r3).expect("finished")
        );
    }

    println!("\n== arbitration grant delay on the shared bus (measured) ==\n");
    for grant in [0u32, 2, 8] {
        let design = BusDesign::with_width(chans.clone(), 8, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new()
            .with_arbitration(Arbitration::round_robin().with_grant_cycles(grant))
            .refine(&f.system, &design)?;
        let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
        println!(
            "  grant = {grant} clk: EVAL_R3 = {} clk, CONV_R2 = {} clk",
            report.finish_time(f.eval_r3).expect("finished"),
            report.finish_time(f.conv_r2).expect("finished")
        );
    }
    Ok(())
}

//! Quickstart: the paper's Figs. 3–5 worked example, end to end.
//!
//! Takes the partitioned system (behaviors `P`/`Q`, remote variables `X`
//! and `MEM`, channels CH0–CH3), implements the channels on an 8-bit
//! full-handshake bus, prints the generated VHDL-style refinement (the
//! paper's Fig. 4/5 artifacts) and simulates it.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::fig3;
use interface_synthesis::vhdl::VhdlPrinter;

fn main() -> Result<(), Box<dyn Error>> {
    let f = fig3::fig3();
    println!("== input: partitioned system (Fig. 3) ==\n");
    for ch in &f.system.channels {
        println!(
            "  {} : {} {} {}   ({} data + {} addr bits)",
            ch.name,
            f.system.behavior(ch.accessor).name,
            ch.direction.arrow(),
            f.system.variable(ch.variable).name,
            ch.data_bits,
            ch.addr_bits,
        );
    }

    // The paper fixes this bus at 8 bits ("whose width has been
    // determined to be 8 bits").
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
    // Rolled word loops print in the paper's Fig. 4 form
    // (`for j in 0 to 1 loop ... msg(j*8 + 7 downto j*8)`).
    let refined = ProtocolGenerator::new()
        .with_rolled_word_loops()
        .refine(&f.system, &design)?;

    println!("\n== generated bus structure (Fig. 4) ==\n");
    println!(
        "  {} data lines, {} control lines, {} ID lines ({} wires total)",
        design.width,
        design.control_lines(),
        design.id_bits(),
        design.total_wires()
    );
    for &(ch, code) in &refined.bus.id_codes {
        println!(
            "  channel {} -> ID \"{}\"",
            refined.system.channel(ch).name,
            interface_synthesis::spec::BitVec::from_u64(code, design.id_bits().max(1)),
        );
    }

    println!("\n== refined specification (Fig. 4/5 style) ==\n");
    println!("{}", VhdlPrinter::new().print_refined(&refined));

    println!("== simulating the refined specification ==\n");
    let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
    println!("  quiescent at t = {} cycles", report.time());
    println!("  X     = {}", report.final_variable(f.x));
    if let Value::Array(items) = report.final_variable(f.mem) {
        println!("  MEM(17) = {} (X + 7, written by P)", items[17]);
        println!("  MEM(60) = {} (COUNT, written by Q)", items[60]);
    }
    for (id, outcome) in report.finished_behaviors() {
        let _ = id;
        println!(
            "  {} finished at t = {} cycles",
            outcome.name,
            outcome.finish_time.expect("finished")
        );
    }
    Ok(())
}

//! The Matsushita fuzzy logic controller (the paper's Fig. 6–8 case
//! study): sweep bus widths for the ch1+ch2 group, pick a width under a
//! designer constraint, refine and simulate.
//!
//! Run with: `cargo run --example fuzzy_logic_controller`

use std::error::Error;

use interface_synthesis::core::{
    BusDesign, BusGenerator, Constraint, ProtocolGenerator, ProtocolKind,
};
use interface_synthesis::estimate::BusTiming;
use interface_synthesis::sim::Simulator;
use interface_synthesis::systems::flc::{
    self, CONV_COMPUTE_CYCLES, EVAL_COMPUTE_CYCLES, FLC_ACCESSES,
};

fn main() -> Result<(), Box<dyn Error>> {
    let f = flc::flc();
    println!("== FLC (Fig. 6): processes on chip1, memories on chip2 ==\n");
    println!(
        "  ch1: EVAL_R3 > trru0   ({} messages of 23 bits)",
        FLC_ACCESSES
    );
    println!(
        "  ch2: CONV_R2 < trru2   ({} messages of 23 bits)",
        FLC_ACCESSES
    );
    println!("  dedicated wires: {}\n", f.dedicated_wires());

    // Fig. 7: performance vs width (analytic sweep).
    println!("== performance vs bus width (Fig. 7, analytic) ==\n");
    println!("  width  EVAL_R3  CONV_R2   (clocks)");
    for width in [1u32, 2, 4, 6, 8, 12, 16, 20, 23, 24] {
        let t = BusTiming::new(width, 2);
        let eval = FLC_ACCESSES * (EVAL_COMPUTE_CYCLES + t.cycles_per_access(23));
        let conv = FLC_ACCESSES * (CONV_COMPUTE_CYCLES + t.cycles_per_access(23));
        println!("  {width:>5}  {eval:>7}  {conv:>7}");
    }

    // Fig. 8 design A: constrain ch2's peak rate.
    println!("\n== constrained bus generation (Fig. 8 design A) ==\n");
    let design = BusGenerator::new()
        .constraint(Constraint::min_peak_rate(f.ch2, 10.0, 10.0))
        .generate(&f.system, &f.bus_channels())?;
    println!(
        "  selected width {} pins, bus rate {} b/clk, interconnect reduction {:.1}%",
        design.width,
        design.bus_rate,
        100.0 * design.interconnect_reduction(&f.system)
    );

    // Refine and simulate at the selected width.
    let refined = ProtocolGenerator::new().refine(&f.system, &design)?;
    let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
    println!("\n== simulation at the selected width ==\n");
    println!(
        "  EVAL_R3 finished at {} clocks",
        report.finish_time(f.eval_r3).expect("finished")
    );
    println!(
        "  CONV_R2 finished at {} clocks",
        report.finish_time(f.conv_r2).expect("finished")
    );
    println!(
        "  conv checksum = {} (expected {})",
        report.final_variable(f.conv_acc).as_i64()?,
        flc::expected_conv_checksum()
    );

    // For comparison: the unconstrained minimum-width implementation.
    let minimal = BusGenerator::new().generate(&f.system, &f.bus_channels())?;
    println!(
        "\n(unconstrained generation would pick {} pins — the smallest \
         width satisfying Eq. 1)",
        minimal.width
    );

    // And the designer can always bypass the algorithm entirely:
    let narrow = BusDesign::with_width(f.bus_channels(), 4, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &narrow)?;
    let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
    println!(
        "(a designer-forced 4-pin bus still works, but CONV_R2 takes {} clocks)",
        report.finish_time(f.conv_r2).expect("finished")
    );
    Ok(())
}

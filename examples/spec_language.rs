//! Driving the pipeline from specification-language text embedded in
//! Rust: parse, lint, synthesize, simulate, check assertions.
//!
//! Run with: `cargo run --example spec_language`

use std::error::Error;

use interface_synthesis::core::{BusGenerator, ProtocolGenerator};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::lint::lint_system;

const SPEC: &str = r#"
-- A tiny self-checking producer/memory split.
system scratchpad;

module cpu;
module ram;

store ram_store on ram {
    var SCRATCH : int<16>[32];
}

behavior writer on cpu {
    for i in 0 to 31 {
        compute 2 "prepare value";
        send wr(i, i * i);
    }
}

behavior verifier on cpu {
    var v : int<16>;
    compute 500 "wait for the writer";
    for j in 0 to 31 {
        receive rd(j, v);
        assert v = j * j "square readback";
    }
}

channel wr : writer writes SCRATCH;
channel rd : verifier reads SCRATCH;
"#;

fn main() -> Result<(), Box<dyn Error>> {
    let system = interface_synthesis::lang::parse_system(SPEC)?;
    println!(
        "parsed `{}`: {} behaviors, {} channels",
        system.name,
        system.behaviors.len(),
        system.channels.len()
    );

    let findings = lint_system(&system);
    if findings.is_empty() {
        println!("lint: clean");
    }
    for finding in &findings {
        println!("lint: {finding}");
    }

    let channels: Vec<_> = system.channel_ids().collect();
    let design = BusGenerator::new().generate(&system, &channels)?;
    println!(
        "bus generation picked {} pins ({} total wires, {:.1}% fewer data lines)",
        design.width,
        design.total_wires(),
        100.0 * design.interconnect_reduction(&system)
    );

    let refined = ProtocolGenerator::new().refine(&system, &design)?;
    let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
    println!(
        "simulated to t = {} cycles; {} assertions held",
        report.time(),
        report.assertions_checked()
    );
    for (_, outcome) in report.finished_behaviors() {
        println!(
            "  {} finished at {} cycles",
            outcome.name,
            outcome.finish_time.expect("finished")
        );
    }
    Ok(())
}

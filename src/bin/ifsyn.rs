//! `ifsyn` — the interface-synthesis command line.
//!
//! ```text
//! ifsyn SPEC.ifs [options]
//! ifsyn analyze SPEC.ifs [--width W] [--protocol P] [--json]
//! ifsyn analyze --from-vcd FILE --meta FILE [--json]
//!
//!   --channels ch1,ch2     channels to implement (default: all)
//!   --width N              designer-specified bus width (default: run
//!                          the bus-generation algorithm)
//!   --protocol P           full | half | fixed:N      (default: full)
//!   --min-width N[:W]      constraint with optional weight (default 1)
//!   --max-width N[:W]      constraint with optional weight
//!   --min-peak CH=R[:W]    MinPeakRate(CH) = R bits/clock
//!   --derive-channels      rewrite direct cross-module variable
//!                          accesses into channels before synthesis
//!   --no-arbitration       paper-faithful mode (no bus arbiter)
//!   --rolled               emit Fig. 4-style rolled word loops
//!   --protocol-timeout W[:R]  generate timeout-hardened handshakes:
//!                          watchdog of W cycles per wait, R retries
//!                          (default 3) before raising the status flag
//!   --integrity            generate integrity-protected transfers: a
//!                          position-weighted check word per run, verified
//!                          on the receive side (implies hardening)
//!   --fault SPEC           inject a fault (repeatable). SPEC is one of
//!                            stuck0:SIG[@FROM[-UNTIL]]
//!                            stuck1:SIG[@FROM[-UNTIL]]
//!                            flip:SIG:BIT@T
//!                            drop:SIG@FROM[-UNTIL]
//!                            delay:SIG:CYCLES@FROM[-UNTIL]
//!                          faults turn on deadlock diagnosis
//!   --print-vhdl           print the refined specification
//!   --vcd FILE             write a VCD waveform of the simulation
//!   --bus-meta FILE        write the bus-metadata JSON sidecar
//!                          (ifsyn-bus-meta-v1) describing wires and
//!                          channels, for offline `analyze --from-vcd`
//!   --dot FILE             write a Graphviz graph of the refined system
//!   --lint                 print specification warnings and exit
//!   --check                model-check the refined system instead of
//!                          simulating it: explore every schedule (and
//!                          every in-budget --check-fault pattern) and
//!                          verify the robustness property catalog;
//!                          exits nonzero on any violation
//!   --check-fault SPEC     adversarial fault for --check (repeatable):
//!                            stuck0:SIG
//!                            flip:SIG:BIT[:BUDGET]
//!                          unlike --fault these carry no schedule times;
//!                          the checker tries every legal strike point
//!   --check-threads N      explore the frontier with N worker threads
//!                          (reports are byte-identical to N=1)
//!   --check-limit STATES   stop exploring after STATES states and report
//!                          BOUND verdicts instead of running out of
//!                          memory on huge systems
//!   --check-bitstate BITS  lossy bitstate dedup keyed by a 2^BITS
//!                          fingerprint: invariant/terminal violations
//!                          found are real, but a clean run is
//!                          probabilistic, not a proof; leads-to checks
//!                          report INCONC instead of FAIL (a collision
//!                          can forge unreachability)
//!   --check-no-por         disable partial-order reduction (explore the
//!                          full interleaving graph)
//!   --explore              print the width exploration table and exit
//!   --explore-csv FILE     write the exploration as CSV and exit
//!   --sweep-sim LO-HI      refine the system at every bus width in
//!                          LO..=HI and batch-simulate all of them,
//!                          printing a finish-time table
//!   --jobs N               worker threads for --sweep-sim (0 or unset:
//!                          one per core, or $IFSYN_SWEEP_THREADS)
//!   --sim-threads N        threads *inside* each simulation: shard the
//!                          processes of one system across N workers
//!                          (results are byte-identical to N=1). With
//!                          --sweep-sim the automatic --jobs count
//!                          shrinks so jobs x sim-threads stays within
//!                          the machine's budget
//!   --lockstep             with --sweep-sim: run width variants whose
//!                          compiled programs match through the lockstep
//!                          convoy engine (one dispatch stream, N lanes)
//!
//! `ifsyn analyze` runs the post-simulation bus analyzer: the spec is
//! synthesized (honoring --width/--protocol/--channels/--min-width/...),
//! simulated with tracing, and the trace is analyzed for per-bus
//! utilization, idle and backpressure cycles, per-channel observed
//! transfer rates and START->DONE latency histograms. With --from-vcd
//! the analyzer instead ingests a waveform written by --vcd plus the
//! --bus-meta sidecar, with no re-synthesis. --json switches the report
//! to the ifsyn-analyze-report-v1 document.
//! ```

use std::error::Error;
use std::process::ExitCode;

use interface_synthesis::core::{
    BusDesign, BusGenerator, Constraint, ProtocolGenerator, ProtocolKind,
};
use interface_synthesis::sim::{FaultPlan, SimConfig, Simulator};
use interface_synthesis::spec::{ChannelId, System};
use interface_synthesis::vhdl::VhdlPrinter;

#[derive(Debug, Default)]
struct Options {
    spec_path: Option<String>,
    channels: Option<Vec<String>>,
    width: Option<u32>,
    protocol: ProtocolArg,
    constraints: Vec<ConstraintArg>,
    derive_channels: bool,
    no_arbitration: bool,
    rolled: bool,
    protocol_timeout: Option<(u64, Option<u32>)>,
    integrity: bool,
    faults: Vec<String>,
    check: bool,
    check_faults: Vec<String>,
    check_threads: usize,
    check_limit: Option<usize>,
    check_bitstate: Option<u32>,
    check_no_por: bool,
    print_vhdl: bool,
    vcd: Option<String>,
    bus_meta: Option<String>,
    dot: Option<String>,
    analyze: bool,
    from_vcd: Option<String>,
    meta: Option<String>,
    json: bool,
    explore: bool,
    explore_csv: Option<String>,
    lint: bool,
    sweep_sim: Option<(u32, u32)>,
    jobs: usize,
    sim_threads: usize,
    lockstep: bool,
}

#[derive(Debug, Default, Clone, Copy)]
enum ProtocolArg {
    #[default]
    Full,
    Half,
    Fixed(u32),
}

#[derive(Debug, Clone)]
enum ConstraintArg {
    MinWidth(u32, f64),
    MaxWidth(u32, f64),
    MinPeak(String, f64, f64),
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ifsyn: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    let options = parse_args(std::env::args().skip(1))?;
    if options.jobs > 0 {
        interface_synthesis::bench::sweep::set_sweep_threads(options.jobs);
    }
    if options.analyze && options.from_vcd.is_some() {
        return analyze_offline(&options);
    }
    let Some(path) = &options.spec_path else {
        return Err("usage: ifsyn SPEC.ifs [options]  (see --help in the README)".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut system =
        interface_synthesis::lang::parse_system(&source).map_err(|e| format!("{path}:{e}"))?;

    if options.derive_channels {
        let result = interface_synthesis::partition::Partitioner::new().partition(&system)?;
        let n = result.channels.len();
        system = result.system;
        println!("derived {n} channel(s) from cross-module accesses");
    }

    if options.lint {
        let findings = interface_synthesis::spec::lint::lint_system(&system);
        if findings.is_empty() {
            println!("no lints: `{}` looks clean", system.name);
        } else {
            for finding in &findings {
                println!("warning: {finding}");
            }
        }
        return Ok(());
    }

    let channels = select_channels(&system, &options)?;
    // In JSON analyze mode the report is the whole stdout document.
    if !(options.analyze && options.json) {
        println!(
            "system `{}`: {} behaviors, {} channels selected",
            system.name,
            system.behaviors.len(),
            channels.len()
        );
    }

    let protocol = match options.protocol {
        ProtocolArg::Full => ProtocolKind::FullHandshake,
        ProtocolArg::Half => ProtocolKind::HalfHandshake,
        ProtocolArg::Fixed(n) => ProtocolKind::FixedDelay { cycles: n },
    };

    let mut generator = BusGenerator::new().with_protocol(protocol);
    for c in &options.constraints {
        generator = generator.constraint(resolve_constraint(&system, c)?);
    }

    if options.analyze {
        return analyze_spec(&system, channels, protocol, &generator, &options);
    }

    if let Some(csv_path) = &options.explore_csv {
        let exploration = generator.explore(&system, &channels)?;
        std::fs::write(csv_path, exploration.to_csv())
            .map_err(|e| format!("cannot write `{csv_path}`: {e}"))?;
        println!("wrote exploration CSV to {csv_path}");
        return Ok(());
    }

    if options.explore {
        let exploration = generator.explore(&system, &channels)?;
        println!("\nwidth  bus rate  sum ave rates  feasible  cost");
        for row in &exploration.rows {
            println!(
                "{:>5}  {:>8.2}  {:>13.2}  {:>8}  {}",
                row.width,
                row.bus_rate,
                row.sum_ave_rates,
                if row.feasible { "yes" } else { "no" },
                row.cost.map(|c| format!("{c:.2}")).unwrap_or_default()
            );
        }
        return Ok(());
    }

    if let Some((lo, hi)) = options.sweep_sim {
        return sweep_sim(&system, &channels, protocol, &options, lo, hi);
    }

    let design = match options.width {
        Some(w) => BusDesign::with_width(channels, w, protocol),
        None => generator.generate(&system, &channels)?,
    };
    println!(
        "bus: {} data + {} control + {} ID lines = {} wires ({}, reduction {:.1}%)",
        design.width,
        design.control_lines(),
        design.id_bits(),
        design.total_wires(),
        design.protocol,
        100.0 * design.interconnect_reduction(&system)
    );

    let refined = build_protocol_generator(&options).refine(&system, &design)?;
    let area = interface_synthesis::estimate::AreaEstimator::new();
    let before = area.estimate_system(&system, 0)?;
    let after = area.estimate_system(&refined.system, design.total_wires())?;
    println!(
        "refinement overhead: +{} controller states, +{} register bits \
         ({:.0} -> {:.0} gate equivalents)",
        after.states.saturating_sub(before.states),
        after.register_bits.saturating_sub(before.register_bits),
        before.gates,
        after.gates
    );

    if options.print_vhdl {
        println!("\n{}", VhdlPrinter::new().print_refined(&refined));
    }

    if let Some(dot_path) = &options.dot {
        let dot = interface_synthesis::vhdl::refined_to_dot(&refined);
        std::fs::write(dot_path, dot).map_err(|e| format!("cannot write `{dot_path}`: {e}"))?;
        println!("wrote structure graph to {dot_path}");
    }

    if let Some(meta_path) = &options.bus_meta {
        let meta = interface_synthesis::vhdl::bus_metadata_json(&refined);
        std::fs::write(meta_path, meta).map_err(|e| format!("cannot write `{meta_path}`: {e}"))?;
        println!("wrote bus metadata to {meta_path}");
    }

    if options.check {
        return check_refined(&refined, &options);
    }

    let mut config = if options.vcd.is_some() {
        SimConfig::new().with_trace()
    } else {
        SimConfig::new()
    };
    if options.sim_threads > 1 {
        config = config.with_sim_threads(options.sim_threads);
        println!("parallel kernel: {} sim-threads", options.sim_threads);
    }
    if !options.faults.is_empty() {
        let mut plan = FaultPlan::new();
        for spec in &options.faults {
            plan = add_fault(plan, spec)?;
        }
        // A silent hang under injection is useless; diagnose it instead.
        config = config.with_faults(plan).with_deadlock_detection();
        println!(
            "injecting {} fault(s); deadlock diagnosis on",
            options.faults.len()
        );
    }
    // The content-hash cache dedups repeated protocol bodies (the same
    // handshake procedure instantiated per channel) within the run.
    let cache = interface_synthesis::sim::CodeCache::new();
    let report = Simulator::with_config_cached(&refined.system, config, Some(&cache))?
        .run_to_quiescence()?;
    println!("\nsimulation quiescent at t = {} cycles", report.time());
    for (_, outcome) in report.finished_behaviors() {
        println!(
            "  {:<24} finished at {:>8} cycles",
            outcome.name,
            outcome.finish_time.expect("finished")
        );
    }
    let blocked: Vec<&str> = report
        .blocked_behaviors()
        .map(|(_, o)| o.name.as_str())
        .collect();
    if !blocked.is_empty() {
        println!("  idle servers: {}", blocked.join(", "));
    }

    if !options.faults.is_empty() {
        let injected = report.injected_faults();
        println!("  {} fault injection(s) applied", injected.len());
        for f in injected.iter().take(10) {
            println!("    t = {:>6}  {}: {}", f.time, f.signal, f.effect);
        }
        if injected.len() > 10 {
            println!("    ... and {} more", injected.len() - 10);
        }
        let raised: Vec<String> = refined
            .bus
            .status_flags
            .iter()
            .map(|&(_, sig)| refined.system.signal(sig).name.clone())
            .filter(|n| {
                report.final_signal_by_name(n) == Some(&interface_synthesis::spec::Value::Bit(true))
            })
            .collect();
        if !raised.is_empty() {
            println!("  status flags raised: {}", raised.join(", "));
        }
    }

    if let Some(vcd_path) = &options.vcd {
        let vcd = interface_synthesis::sim::vcd::to_vcd_string(&refined.system, &report);
        std::fs::write(vcd_path, vcd).map_err(|e| format!("cannot write `{vcd_path}`: {e}"))?;
        println!("wrote waveform to {vcd_path}");
    }
    Ok(())
}

/// Trace-event budget for `ifsyn analyze` simulations: large enough for
/// every bundled spec at any width (the width-1 FLC trace is ~50k
/// events); the default cap would silently truncate long runs.
const ANALYZE_TRACE_CAP: usize = 2_000_000;

/// `ifsyn analyze SPEC`: synthesize, simulate with tracing, and run the
/// bus analyzer over the in-memory trace.
fn analyze_spec(
    system: &System,
    channels: Vec<ChannelId>,
    protocol: ProtocolKind,
    generator: &BusGenerator,
    options: &Options,
) -> Result<(), Box<dyn Error>> {
    use interface_synthesis::analyze::{analyze_report, BusMeta};

    let design = match options.width {
        Some(w) => BusDesign::with_width(channels, w, protocol),
        None => generator.generate(system, &channels)?,
    };
    let refined = build_protocol_generator(options).refine(system, &design)?;
    if !options.json {
        println!(
            "bus: {} data + {} control + {} ID lines = {} wires ({})",
            design.width,
            design.control_lines(),
            design.id_bits(),
            design.total_wires(),
            design.protocol,
        );
    }
    let config = SimConfig::new()
        .with_trace()
        .with_max_trace_events(ANALYZE_TRACE_CAP)
        .with_sim_threads(options.sim_threads.max(1));
    let report = Simulator::with_config(&refined.system, config)?.run_to_quiescence()?;
    let meta = BusMeta::from_refined(&refined);
    let analysis = analyze_report(&refined.system, &report, &meta)?;
    if let Some(meta_path) = &options.bus_meta {
        let sidecar = interface_synthesis::vhdl::bus_metadata_json(&refined);
        std::fs::write(meta_path, sidecar)
            .map_err(|e| format!("cannot write `{meta_path}`: {e}"))?;
        if !options.json {
            println!("wrote bus metadata to {meta_path}");
        }
    }
    if let Some(vcd_path) = &options.vcd {
        let vcd = interface_synthesis::sim::vcd::to_vcd_string(&refined.system, &report);
        std::fs::write(vcd_path, vcd).map_err(|e| format!("cannot write `{vcd_path}`: {e}"))?;
        if !options.json {
            println!("wrote waveform to {vcd_path}");
        }
    }
    if options.json {
        print!("{}", analysis.to_json());
    } else {
        print!("\n{}", analysis.render());
    }
    Ok(())
}

/// `ifsyn analyze --from-vcd FILE --meta FILE`: run the analyzer over a
/// waveform written by `--vcd` and its `--bus-meta` sidecar, with no
/// re-synthesis or simulation.
fn analyze_offline(options: &Options) -> Result<(), Box<dyn Error>> {
    use interface_synthesis::analyze::{analyze_vcd, BusMeta};

    let vcd_path = options.from_vcd.as_deref().expect("checked by caller");
    let meta_path = options
        .meta
        .as_deref()
        .ok_or("analyze --from-vcd requires --meta FILE (written by --bus-meta)")?;
    let vcd_text =
        std::fs::read_to_string(vcd_path).map_err(|e| format!("cannot read `{vcd_path}`: {e}"))?;
    let meta_text = std::fs::read_to_string(meta_path)
        .map_err(|e| format!("cannot read `{meta_path}`: {e}"))?;
    let meta = BusMeta::from_json(&meta_text)?;
    let analysis = analyze_vcd(&vcd_text, &meta)?;
    if options.json {
        print!("{}", analysis.to_json());
    } else {
        print!("{}", analysis.render());
    }
    Ok(())
}

/// Builds the protocol generator the CLI options describe.
fn build_protocol_generator(options: &Options) -> ProtocolGenerator {
    let mut pg = ProtocolGenerator::new();
    if options.no_arbitration {
        pg = pg.without_arbitration();
    }
    if options.rolled {
        pg = pg.with_rolled_word_loops();
    }
    if let Some((watchdog, retries)) = options.protocol_timeout {
        pg = pg.with_timeout(watchdog);
        if let Some(r) = retries {
            pg = pg.with_retry_limit(r);
        }
    }
    if options.integrity {
        pg = pg.with_integrity();
    }
    pg
}

/// `--check`: exhaustively explores every process interleaving of the
/// refined system — and every in-budget strike pattern of the
/// `--check-fault` environment — then verifies the robustness property
/// catalog: grant mutual exclusion in every state, completion-or-flag in
/// every quiescent state, and (fault-free only) eventual grant of every
/// pending bus request. Returns an error, and thus a nonzero exit, on
/// any violation, printing the counterexample trace.
fn check_refined(
    refined: &interface_synthesis::core::RefinedSystem,
    options: &Options,
) -> Result<(), Box<dyn Error>> {
    use interface_synthesis::sim::{CheckConfig, Checker, Verdict};

    let mut config = CheckConfig::new();
    for spec in &options.check_faults {
        config = config.with_fault(parse_check_fault(spec)?);
    }
    if options.check_threads > 1 {
        config = config.with_check_threads(options.check_threads);
    }
    if let Some(limit) = options.check_limit {
        config = config.with_state_limit(limit);
    }
    if let Some(bits) = options.check_bitstate {
        config = config.with_bitstate(bits);
        println!("bitstate dedup on ({bits} fingerprint bits): a clean run is not a proof");
    }
    if options.check_no_por {
        config = config.without_por();
    }
    let fault_free = options.check_faults.is_empty();
    if !fault_free {
        println!(
            "checking under an adversarial environment of {} fault(s)",
            options.check_faults.len()
        );
    }
    let checker = Checker::with_config(&refined.system, config)?;
    let space = checker.explore()?;
    println!(
        "\nexplored {} states, {} transitions, {} terminal(s), {} runtime error path(s)",
        space.state_count(),
        space.transition_count(),
        space.terminal_count(),
        space.error_count()
    );
    let stats = space.stats();
    println!(
        "  {} thread(s), peak frontier {}, {} dedup hit(s), \
         {} ample / {} fully expanded state(s)",
        stats.threads, stats.peak_frontier, stats.dedup_hits, stats.ample_states, stats.full_states
    );
    if let Some(b) = space.bounded() {
        println!(
            "  state limit {} reached: {} frontier state(s) left unexplored; \
             verdicts below are bounded",
            b.limit, b.frontier
        );
    }
    match space.worst_cost_to_quiescence() {
        Some(w) => println!("worst-case completion over every schedule: {w} cycles"),
        None if space.bounded().is_some() => {
            println!("worst-case completion: unknown (exploration was bounded)")
        }
        None if options.check_bitstate.is_some() => {
            println!("worst-case completion: unknown (bitstate dedup is lossy)")
        }
        None => println!("worst-case completion: unbounded (a reachable cycle exists)"),
    }

    let mut reports = Vec::new();
    if let Some(arb) = &refined.bus.arbiter {
        let gnt_names: Vec<String> = arb
            .gnt
            .iter()
            .map(|&g| refined.system.signal(g).name.clone())
            .collect();
        reports.push(space.check_invariant("gnt_mutex", |v| {
            gnt_names.iter().filter(|n| v.signal_high(n)).count() <= 1
        }));
    }
    let flag_names: Vec<String> = refined
        .bus
        .status_flags
        .iter()
        .map(|&(_, sig)| refined.system.signal(sig).name.clone())
        .collect();
    reports.push(space.check_terminal("completes_or_flags", |v| {
        v.all_done() || flag_names.iter().any(|n| v.signal_high(n))
    }));
    if fault_free {
        if let Some(arb) = &refined.bus.arbiter {
            for (&rq, &gn) in arb.req.iter().zip(&arb.gnt) {
                let rq_name = refined.system.signal(rq).name.clone();
                let gn_name = refined.system.signal(gn).name.clone();
                reports.push(space.check_leads_to(
                    &format!("eventual_grant[{rq_name}]"),
                    |v| v.signal_high(&rq_name) && !v.signal_high(&gn_name),
                    |v| v.signal_high(&gn_name),
                ));
            }
        }
    }

    let mut failures = 0usize;
    let mut inconclusive = 0usize;
    for rep in &reports {
        println!("{rep}");
        match rep.verdict {
            Verdict::Fail => failures += 1,
            Verdict::Inconclusive => inconclusive += 1,
            Verdict::Pass | Verdict::Bounded => {}
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} propert{} violated",
            reports.len(),
            if reports.len() == 1 { "y" } else { "ies" }
        )
        .into());
    }
    if inconclusive > 0 {
        return Err(format!(
            "{inconclusive} of {} propert{} inconclusive under bitstate \
             dedup — rerun without --check-bitstate to confirm",
            reports.len(),
            if reports.len() == 1 { "y" } else { "ies" }
        )
        .into());
    }
    if space.bounded().is_some() {
        println!(
            "all {} propert{} hold on every explored schedule (bounded run)",
            reports.len(),
            if reports.len() == 1 { "y" } else { "ies" }
        );
    } else {
        println!(
            "all {} propert{} hold on every schedule",
            reports.len(),
            if reports.len() == 1 { "y" } else { "ies" }
        );
    }
    Ok(())
}

/// Parses a `--check-fault` SPEC: `stuck0:SIG` or `flip:SIG:BIT[:BUDGET]`.
/// The checker's environment faults carry budgets, not schedule times —
/// exploration tries every legal strike point — so the grammar is
/// narrower than `--fault`'s.
fn parse_check_fault(spec: &str) -> Result<interface_synthesis::sim::EnvFault, Box<dyn Error>> {
    use interface_synthesis::sim::EnvFault;
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("check fault `{spec}` needs a kind prefix, e.g. stuck0:SIG"))?;
    match kind {
        "stuck0" => Ok(EnvFault::StuckLow {
            signal: rest.to_string(),
        }),
        "flip" => {
            let (sig, bit_budget) = rest
                .split_once(':')
                .ok_or("flip check fault expects flip:SIG:BIT[:BUDGET]")?;
            let (bit, budget) = match bit_budget.split_once(':') {
                Some((b, n)) => (b.parse()?, n.parse()?),
                None => (bit_budget.parse()?, 1),
            };
            Ok(EnvFault::FlipBit {
                signal: sig.to_string(),
                bit,
                budget,
            })
        }
        other => Err(format!("unknown check fault kind `{other}`; expected stuck0 | flip").into()),
    }
}

/// `--sweep-sim LO-HI`: refine the system at every bus width in the
/// range and simulate the whole batch in parallel with shared compiled
/// code, printing one finish-time row per width.
fn sweep_sim(
    system: &System,
    channels: &[ChannelId],
    protocol: ProtocolKind,
    options: &Options,
    lo: u32,
    hi: u32,
) -> Result<(), Box<dyn Error>> {
    use interface_synthesis::bench::batch::BatchRunner;

    let pg = build_protocol_generator(options);
    let mut systems = Vec::new();
    for width in lo..=hi {
        let design = BusDesign::with_width(channels.to_vec(), width, protocol);
        systems.push(pg.refine(system, &design)?.system);
    }
    let runner = BatchRunner::new()
        .with_jobs(options.jobs)
        .with_sim_threads(options.sim_threads.max(1))
        .with_lockstep(options.lockstep);
    println!(
        "\nbatch-simulating widths {lo}..={hi} over {} worker(s) x {} sim-thread(s){}",
        runner.jobs().min(systems.len().max(1)),
        runner.sim_threads(),
        if options.lockstep { " in lockstep" } else { "" }
    );
    let reports = if options.lockstep {
        let (reports, stats) = runner.run_lockstep(&systems);
        println!(
            "lockstep: {} convoy(s), widest {} lane(s); {} lockstep / {} peeled / {} scalar",
            stats.convoys,
            stats.max_lanes,
            stats.lockstep_lanes,
            stats.peeled_lanes,
            stats.scalar_lanes
        );
        reports
    } else {
        runner.run(&systems)
    };
    println!("\nwidth  quiescent at  instrs executed");
    for (width, report) in (lo..=hi).zip(&reports) {
        match report {
            Ok(r) => println!("{:>5}  {:>12}  {:>15}", width, r.time(), r.total_instrs()),
            Err(e) => println!("{width:>5}  failed: {e}"),
        }
    }
    println!(
        "\n{} distinct code block(s) compiled for {} run(s)",
        runner.cached_blocks(),
        systems.len()
    );
    Ok(())
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Options, Box<dyn Error>> {
    let mut o = Options::default();
    while let Some(arg) = args.next() {
        let mut value_of = |name: &str| -> Result<String, Box<dyn Error>> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value").into())
        };
        match arg.as_str() {
            "--channels" => {
                o.channels = Some(
                    value_of("--channels")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--width" => o.width = Some(value_of("--width")?.parse()?),
            "--protocol" => {
                let v = value_of("--protocol")?;
                o.protocol = match v.as_str() {
                    "full" => ProtocolArg::Full,
                    "half" => ProtocolArg::Half,
                    other => match other.strip_prefix("fixed:") {
                        Some(n) => ProtocolArg::Fixed(n.parse()?),
                        None => return Err(format!("unknown protocol `{other}`").into()),
                    },
                };
            }
            "--min-width" => {
                let (n, w) = split_weight(&value_of("--min-width")?)?;
                o.constraints.push(ConstraintArg::MinWidth(n.parse()?, w));
            }
            "--max-width" => {
                let (n, w) = split_weight(&value_of("--max-width")?)?;
                o.constraints.push(ConstraintArg::MaxWidth(n.parse()?, w));
            }
            "--min-peak" => {
                let v = value_of("--min-peak")?;
                let (chan_rate, weight) = split_weight(&v)?;
                let (chan, rate) = chan_rate
                    .split_once('=')
                    .ok_or("--min-peak expects CH=RATE[:WEIGHT]")?;
                o.constraints.push(ConstraintArg::MinPeak(
                    chan.to_string(),
                    rate.parse()?,
                    weight,
                ));
            }
            "--derive-channels" => o.derive_channels = true,
            "--no-arbitration" => o.no_arbitration = true,
            "--rolled" => o.rolled = true,
            "--protocol-timeout" => {
                let v = value_of("--protocol-timeout")?;
                o.protocol_timeout = Some(match v.split_once(':') {
                    Some((w, r)) => (w.parse()?, Some(r.parse()?)),
                    None => (v.parse()?, None),
                });
            }
            "--integrity" => o.integrity = true,
            "--fault" => o.faults.push(value_of("--fault")?),
            "--check" => o.check = true,
            "--check-fault" => o.check_faults.push(value_of("--check-fault")?),
            "--check-threads" => o.check_threads = value_of("--check-threads")?.parse()?,
            "--check-limit" => o.check_limit = Some(value_of("--check-limit")?.parse()?),
            "--check-bitstate" => o.check_bitstate = Some(value_of("--check-bitstate")?.parse()?),
            "--check-no-por" => o.check_no_por = true,
            "--print-vhdl" => o.print_vhdl = true,
            "--vcd" => o.vcd = Some(value_of("--vcd")?),
            "--bus-meta" => o.bus_meta = Some(value_of("--bus-meta")?),
            "--dot" => o.dot = Some(value_of("--dot")?),
            "--from-vcd" => o.from_vcd = Some(value_of("--from-vcd")?),
            "--meta" => o.meta = Some(value_of("--meta")?),
            "--json" => o.json = true,
            "analyze" if !o.analyze && o.spec_path.is_none() => o.analyze = true,
            "--explore" => o.explore = true,
            "--explore-csv" => o.explore_csv = Some(value_of("--explore-csv")?),
            "--lint" => o.lint = true,
            "--sweep-sim" => {
                let v = value_of("--sweep-sim")?;
                let (lo, hi) = v.split_once('-').ok_or("--sweep-sim expects LO-HI")?;
                let (lo, hi) = (lo.parse()?, hi.parse()?);
                if lo == 0 || hi < lo {
                    return Err(format!("--sweep-sim range `{v}` is empty").into());
                }
                o.sweep_sim = Some((lo, hi));
            }
            "--jobs" => o.jobs = value_of("--jobs")?.parse()?,
            "--sim-threads" => o.sim_threads = value_of("--sim-threads")?.parse()?,
            "--lockstep" => o.lockstep = true,
            other if !other.starts_with('-') && o.spec_path.is_none() => {
                o.spec_path = Some(other.to_string())
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }
    Ok(o)
}

/// Splits `VALUE[:WEIGHT]`, defaulting the weight to 1.0.
fn split_weight(s: &str) -> Result<(String, f64), Box<dyn Error>> {
    match s.rsplit_once(':') {
        Some((v, w)) => Ok((v.to_string(), w.parse()?)),
        None => Ok((s.to_string(), 1.0)),
    }
}

/// Parses a `--fault` SPEC (see the module docs) into the plan.
fn add_fault(plan: FaultPlan, spec: &str) -> Result<FaultPlan, Box<dyn Error>> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("fault spec `{spec}` needs a kind prefix, e.g. stuck0:SIG"))?;
    match kind {
        "stuck0" | "stuck1" => {
            let (sig, window) = split_window(rest);
            let (from, until) = parse_window(window)?;
            Ok(if kind == "stuck0" {
                plan.stuck_at_0(sig, from, until)
            } else {
                plan.stuck_at_1(sig, from, until)
            })
        }
        "flip" => {
            let (sig, bit_at) = rest
                .split_once(':')
                .ok_or("flip fault expects flip:SIG:BIT@T")?;
            let (bit, at) = bit_at
                .split_once('@')
                .ok_or("flip fault expects flip:SIG:BIT@T")?;
            Ok(plan.flip_bit(sig, bit.parse()?, at.parse()?))
        }
        "drop" => {
            let (sig, window) = split_window(rest);
            let (from, until) = parse_window(window)?;
            Ok(plan.drop_writes(sig, from, until))
        }
        "delay" => {
            let (sig, cycles_window) = rest
                .split_once(':')
                .ok_or("delay fault expects delay:SIG:CYCLES@FROM[-UNTIL]")?;
            let (cycles, window) = split_window(cycles_window);
            let (from, until) = parse_window(window)?;
            Ok(plan.delay_writes(sig, cycles.parse()?, from, until))
        }
        other => Err(format!(
            "unknown fault kind `{other}`; expected stuck0 | stuck1 | flip | drop | delay"
        )
        .into()),
    }
}

/// Splits `HEAD[@WINDOW]` into the head and the optional window text.
fn split_window(s: &str) -> (&str, Option<&str>) {
    match s.split_once('@') {
        Some((head, w)) => (head, Some(w)),
        None => (s, None),
    }
}

/// Parses `FROM[-UNTIL]`; a missing window means `[0, ∞)`.
fn parse_window(w: Option<&str>) -> Result<(u64, Option<u64>), Box<dyn Error>> {
    match w {
        None => Ok((0, None)),
        Some(s) => match s.split_once('-') {
            Some((f, u)) => Ok((f.parse()?, Some(u.parse()?))),
            None => Ok((s.parse()?, None)),
        },
    }
}

fn select_channels(system: &System, options: &Options) -> Result<Vec<ChannelId>, Box<dyn Error>> {
    match &options.channels {
        None => Ok(system.channel_ids().collect()),
        Some(names) => names
            .iter()
            .map(|n| {
                system
                    .channel_by_name(n)
                    .ok_or_else(|| format!("unknown channel `{n}`").into())
            })
            .collect(),
    }
}

fn resolve_constraint(system: &System, arg: &ConstraintArg) -> Result<Constraint, Box<dyn Error>> {
    Ok(match arg {
        ConstraintArg::MinWidth(n, w) => Constraint::min_bus_width(*n, *w),
        ConstraintArg::MaxWidth(n, w) => Constraint::max_bus_width(*n, *w),
        ConstraintArg::MinPeak(name, rate, w) => {
            let ch = system
                .channel_by_name(name)
                .ok_or_else(|| format!("unknown channel `{name}` in --min-peak"))?;
            Constraint::min_peak_rate(ch, *rate, *w)
        }
    })
}

// A tiny self-check so `cargo test` covers the argument parser without
// spawning processes.
#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        parse_args(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_typical_invocation() {
        let o = parse(&[
            "flc.ifs",
            "--channels",
            "ch1,ch2",
            "--width",
            "16",
            "--protocol",
            "fixed:3",
            "--vcd",
            "out.vcd",
            "--print-vhdl",
        ]);
        assert_eq!(o.spec_path.as_deref(), Some("flc.ifs"));
        assert_eq!(
            o.channels.as_deref(),
            Some(&["ch1".to_string(), "ch2".to_string()][..])
        );
        assert_eq!(o.width, Some(16));
        assert!(matches!(o.protocol, ProtocolArg::Fixed(3)));
        assert!(o.print_vhdl);
        assert_eq!(o.vcd.as_deref(), Some("out.vcd"));
    }

    #[test]
    fn parses_constraints_with_weights() {
        let o = parse(&["s.ifs", "--min-width", "14:5", "--min-peak", "ch2=10:2.5"]);
        assert_eq!(o.constraints.len(), 2);
        assert!(matches!(o.constraints[0], ConstraintArg::MinWidth(14, w) if w == 5.0));
        assert!(matches!(&o.constraints[1], ConstraintArg::MinPeak(c, r, w)
                if c == "ch2" && *r == 10.0 && *w == 2.5));
    }

    #[test]
    fn parses_sweep_sim_and_jobs() {
        let o = parse(&["s.ifs", "--sweep-sim", "1-30", "--jobs", "4", "--lockstep"]);
        assert_eq!(o.sweep_sim, Some((1, 30)));
        assert_eq!(o.jobs, 4);
        assert!(o.lockstep);
        // Unset jobs means automatic; lockstep defaults off.
        assert_eq!(parse(&["s.ifs"]).jobs, 0);
        assert!(!parse(&["s.ifs"]).lockstep);
    }

    #[test]
    fn parses_sim_threads() {
        let o = parse(&["s.ifs", "--sim-threads", "4"]);
        assert_eq!(o.sim_threads, 4);
        // Unset means the scalar kernel; composes with --jobs.
        assert_eq!(parse(&["s.ifs"]).sim_threads, 0);
        let o = parse(&[
            "s.ifs",
            "--sweep-sim",
            "1-8",
            "--jobs",
            "2",
            "--sim-threads",
            "3",
        ]);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.sim_threads, 3);
        for bad in ["30", "0-4", "9-3"] {
            assert!(
                parse_args(["s.ifs", "--sweep-sim", bad].map(String::from).into_iter()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn parses_analyze_subcommand() {
        let o = parse(&["analyze", "flc.ifs", "--width", "8", "--json"]);
        assert!(o.analyze);
        assert_eq!(o.spec_path.as_deref(), Some("flc.ifs"));
        assert_eq!(o.width, Some(8));
        assert!(o.json);
        // Offline mode: VCD plus sidecar, no spec.
        let o = parse(&["analyze", "--from-vcd", "w.vcd", "--meta", "w.meta.json"]);
        assert!(o.analyze);
        assert!(o.spec_path.is_none());
        assert_eq!(o.from_vcd.as_deref(), Some("w.vcd"));
        assert_eq!(o.meta.as_deref(), Some("w.meta.json"));
        // `analyze` is only a subcommand before the spec path; after one
        // it is neither a flag nor a second path.
        assert!(parse_args(["spec.ifs", "analyze"].map(String::from).into_iter()).is_err());
    }

    #[test]
    fn parses_bus_meta_sidecar_flag() {
        let o = parse(&["s.ifs", "--vcd", "w.vcd", "--bus-meta", "w.meta.json"]);
        assert_eq!(o.bus_meta.as_deref(), Some("w.meta.json"));
        assert!(!parse(&["s.ifs"]).json);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_args(["--frob".to_string()].into_iter()).is_err());
    }

    #[test]
    fn parses_check_mode_and_check_faults() {
        let o = parse(&[
            "s.ifs",
            "--integrity",
            "--check",
            "--check-fault",
            "stuck0:B_DONE",
            "--check-fault",
            "flip:B_DATA:2",
        ]);
        assert!(o.integrity);
        assert!(o.check);
        assert_eq!(o.check_faults, ["stuck0:B_DONE", "flip:B_DATA:2"]);
        // Off by default, so the fault-free simulation path is untouched.
        let o = parse(&["s.ifs"]);
        assert!(!o.check && !o.integrity && o.check_faults.is_empty());
    }

    #[test]
    fn parses_check_scaling_flags() {
        let o = parse(&[
            "s.ifs",
            "--check",
            "--check-threads",
            "4",
            "--check-limit",
            "500000",
            "--check-bitstate",
            "28",
            "--check-no-por",
        ]);
        assert_eq!(o.check_threads, 4);
        assert_eq!(o.check_limit, Some(500_000));
        assert_eq!(o.check_bitstate, Some(28));
        assert!(o.check_no_por);
        // Defaults: scalar exact POR exploration, unbounded.
        let o = parse(&["s.ifs", "--check"]);
        assert_eq!(o.check_threads, 0);
        assert_eq!(o.check_limit, None);
        assert_eq!(o.check_bitstate, None);
        assert!(!o.check_no_por);
    }

    #[test]
    fn parses_check_fault_specs() {
        use interface_synthesis::sim::EnvFault;
        assert_eq!(
            parse_check_fault("stuck0:B_DONE").unwrap(),
            EnvFault::StuckLow {
                signal: "B_DONE".into()
            }
        );
        assert_eq!(
            parse_check_fault("flip:B_DATA:2").unwrap(),
            EnvFault::FlipBit {
                signal: "B_DATA".into(),
                bit: 2,
                budget: 1
            }
        );
        assert_eq!(
            parse_check_fault("flip:B_DATA:0:3").unwrap(),
            EnvFault::FlipBit {
                signal: "B_DATA".into(),
                bit: 0,
                budget: 3
            }
        );
        for bad in ["B_DONE", "stuck1:B_DONE", "flip:B_DATA"] {
            assert!(parse_check_fault(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_protocol_timeout_with_and_without_retries() {
        let o = parse(&["s.ifs", "--protocol-timeout", "20"]);
        assert_eq!(o.protocol_timeout, Some((20, None)));
        let o = parse(&["s.ifs", "--protocol-timeout", "20:5"]);
        assert_eq!(o.protocol_timeout, Some((20, Some(5))));
    }

    #[test]
    fn collects_repeated_fault_flags() {
        let o = parse(&[
            "s.ifs",
            "--fault",
            "stuck0:B_DONE",
            "--fault",
            "flip:B_DATA:3@17",
        ]);
        assert_eq!(o.faults.len(), 2);
    }

    #[test]
    fn fault_specs_parse_into_a_plan() {
        let mut plan = FaultPlan::new();
        for spec in [
            "stuck0:B_DONE",
            "stuck1:B_START@5",
            "stuck0:B_DONE@5-20",
            "flip:B_DATA:3@17",
            "drop:B_DONE@4-40",
            "delay:B_START:2@0-60",
            "delay:B_START:2",
        ] {
            plan = add_fault(plan, spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
        assert_eq!(plan.faults.len(), 7);
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        for spec in ["B_DONE", "wedge:B_DONE", "flip:B_DATA", "stuck0:S@x"] {
            assert!(add_fault(FaultPlan::new(), spec).is_err(), "{spec}");
        }
    }
}

//! # interface-synthesis
//!
//! A reproduction of Narayan & Gajski, *Protocol Generation for
//! Communication Channels* (DAC 1994): bus generation and protocol
//! generation for abstract communication channels, together with every
//! substrate the paper depends on — a specification IR, a discrete-event
//! simulator, a performance estimator, a system partitioner, a
//! VHDL-flavoured printer and the paper's example systems.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; depend on it for the full pipeline, or on the individual crates
//! (`ifsyn-core`, `ifsyn-sim`, ...) for a subset.
//!
//! ## Quickstart
//!
//! Reproduce the paper's Fig. 3–5 flow: take a partitioned system with
//! four channels, pick a bus, generate the protocol, and simulate the
//! refined specification.
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use interface_synthesis::prelude::*;
//!
//! let sys = interface_synthesis::systems::fig3_system();
//! let channels: Vec<_> = sys.channel_ids().collect();
//!
//! // The paper fixes the Fig. 3 bus at 8 bits; alternatively run
//! // BusGenerator::generate to let the algorithm pick a width.
//! let design = BusDesign::with_width(channels, 8, ProtocolKind::FullHandshake);
//!
//! // Protocol generation: refine into a simulatable specification.
//! let refined = ProtocolGenerator::new().refine(&sys, &design)?;
//!
//! // The refined system simulates to completion.
//! let report = Simulator::new(&refined.system)?.run_to_quiescence()?;
//! assert!(report.finished_behaviors().count() > 0);
//! # Ok(())
//! # }
//! ```

pub use ifsyn_analyze as analyze;
pub use ifsyn_bench as bench;
pub use ifsyn_core as core;
pub use ifsyn_estimate as estimate;
pub use ifsyn_lang as lang;
pub use ifsyn_partition as partition;
pub use ifsyn_sim as sim;
pub use ifsyn_spec as spec;
pub use ifsyn_systems as systems;
pub use ifsyn_vhdl as vhdl;

/// One-stop imports for the common pipeline.
pub mod prelude {
    pub use ifsyn_analyze::{analyze_report, BusAnalysis, BusMeta};
    pub use ifsyn_core::{
        BusDesign, BusGenerator, Constraint, ProtocolGenerator, ProtocolKind, RefinedSystem,
    };
    pub use ifsyn_estimate::{ChannelRates, CostModel, PerformanceEstimator};
    pub use ifsyn_lang::parse_system;
    pub use ifsyn_partition::Partitioner;
    pub use ifsyn_sim::{SimConfig, SimReport, Simulator};
    pub use ifsyn_spec::{Channel, ChannelDirection, System, Ty, Value};
    pub use ifsyn_vhdl::VhdlPrinter;
}

//! End-to-end pipeline test on the paper's Fig. 3–5 worked example:
//! partitioned system -> protocol generation -> simulation, checked
//! against the abstract (ideal-channel) golden model.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::fig3;

/// Simulates the abstract (pre-refinement) system and returns final
/// values of X, MEM, Xtemp.
fn golden() -> (Value, Value, Value) {
    let f = fig3::fig3();
    let report = Simulator::new(&f.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    (
        report.final_variable(f.x).clone(),
        report.final_variable(f.mem).clone(),
        report.final_variable(f.xtemp).clone(),
    )
}

#[test]
fn abstract_fig3_behaves_as_specified() {
    let (x, mem, xtemp) = golden();
    assert_eq!(x.as_u64().unwrap(), 32);
    assert_eq!(xtemp.as_u64().unwrap(), 32);
    match &mem {
        Value::Array(items) => {
            assert_eq!(items[17].as_u64().unwrap(), 39); // X + 7 at AD=17
            assert_eq!(items[60].as_u64().unwrap(), 1234);
        }
        other => panic!("expected array, got {other}"),
    }
}

#[test]
fn refined_fig3_matches_abstract_final_state_at_width_8() {
    refined_matches_golden(8);
}

#[test]
fn refined_fig3_matches_abstract_final_state_across_widths() {
    for width in [1, 2, 3, 5, 7, 11, 16, 22, 32] {
        refined_matches_golden(width);
    }
}

fn refined_matches_golden(width: u32) {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), width, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(&f.system, &design)
        .unwrap_or_else(|e| panic!("refine at width {width}: {e}"));
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap_or_else(|e| panic!("simulate at width {width}: {e}"));

    let (gx, gmem, gxtemp) = golden();
    assert_eq!(
        report.final_variable(f.x),
        &gx,
        "X mismatch at width {width}"
    );
    assert_eq!(
        report.final_variable(f.mem),
        &gmem,
        "MEM mismatch at width {width}"
    );
    assert_eq!(
        report.final_variable(f.xtemp),
        &gxtemp,
        "Xtemp mismatch at width {width}"
    );

    // Both client processes must have run to completion.
    let sys = &refined.system;
    let p = sys.behavior_by_name("P").unwrap();
    let q = sys.behavior_by_name("Q").unwrap();
    assert!(
        report.finish_time(p).is_some(),
        "P blocked at width {width}"
    );
    assert!(
        report.finish_time(q).is_some(),
        "Q blocked at width {width}"
    );
}

#[test]
fn variable_processes_idle_after_serving() {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let sys = &refined.system;
    for name in ["Xproc", "MEMproc"] {
        let b = sys.behavior_by_name(name).unwrap();
        let outcome = report.outcome(b);
        assert!(outcome.blocked, "{name} should idle on the bus");
    }
    // The arbiter idles too.
    let arb = sys.behavior_by_name("B_arbiter").unwrap();
    assert!(report.outcome(arb).blocked);
}

#[test]
fn wider_buses_never_slow_the_clients_down() {
    let f = fig3::fig3();
    let mut last_p = u64::MAX;
    for width in [2, 4, 8, 16, 22] {
        let design = BusDesign::with_width(f.channels(), width, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let p = refined.system.behavior_by_name("P").unwrap();
        let t = report.finish_time(p).unwrap();
        assert!(
            t <= last_p,
            "P slowed down from {last_p} to {t} when widening to {width}"
        );
        last_p = t;
    }
}

#[test]
fn fixed_delay_protocol_also_preserves_behavior() {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FixedDelay { cycles: 3 });
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let (gx, gmem, _) = golden();
    assert_eq!(report.final_variable(f.x), &gx);
    assert_eq!(report.final_variable(f.mem), &gmem);
}

#[test]
fn half_handshake_works_for_write_only_group() {
    let f = fig3::fig3();
    // CH0, CH2, CH3 are writes; CH1 (the read) stays abstract.
    let writes = vec![f.ch0, f.ch2, f.ch3];
    let design = BusDesign::with_width(writes, 8, ProtocolKind::HalfHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let (gx, gmem, _) = golden();
    assert_eq!(report.final_variable(f.x), &gx);
    assert_eq!(report.final_variable(f.mem), &gmem);
}

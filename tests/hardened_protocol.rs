//! Timeout-hardened protocol generation: property and regression tests.
//!
//! * Property: under seeded transient flips on the DONE control line the
//!   hardened handshake never hangs — every run ends (complete or
//!   abort-flagged) within the watchdog-derived bound.
//! * Regression: a stuck-at-0 DONE deadlocks the *plain* full handshake,
//!   and the structured diagnosis names the waiting process and its wait
//!   condition.
//! * Round-trip: `wait until ... for N` survives the spec language
//!   printer/parser and shows up in the VHDL output.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::{FaultPlan, SimConfig, SimError, Simulator};
use interface_synthesis::spec::rng::SplitMix64;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::{fig3, flc};
use interface_synthesis::vhdl::VhdlPrinter;

const WATCHDOG: u64 = 10;
const RETRIES: u32 = 2;

/// Worst-case cycles hardening can add: every handshake word may burn
/// its whole retry budget, one attempt costing at most `2W + 2` cycles.
fn retry_overhead(words: u64) -> u64 {
    words * u64::from(RETRIES + 1) * (2 * WATCHDOG + 2)
}

#[test]
fn hardened_fig3_never_hangs_under_transient_done_flips() {
    // Fig. 3 at width 8 moves 10 handshake words (2 + 2 + 3 + 3).
    let fault_free = {
        let f = fig3::fig3();
        let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap()
            .time()
    };
    let bound = fault_free + retry_overhead(10);

    let mut rng = SplitMix64::new(0xC0FFEE);
    let mut completed_ok = 0usize;
    let mut aborted = 0usize;
    let mut corrupt = 0usize;
    for round in 0..25 {
        let seed = rng.next_u64();
        let f = fig3::fig3();
        let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new()
            .with_timeout(WATCHDOG)
            .with_retry_limit(RETRIES)
            .refine(&f.system, &design)
            .unwrap();
        let plan = FaultPlan::new().seeded_flips("B_DONE", 1, 2, 1, fault_free, seed);
        let config = SimConfig::new()
            .with_max_time(bound)
            .with_faults(plan)
            .with_deadlock_detection();
        // The hard property: the run ENDS — no deadlock, no horizon hit.
        let report = Simulator::with_config(&refined.system, config)
            .unwrap()
            .run_to_quiescence()
            .unwrap_or_else(|e| panic!("round {round} (seed {seed:#x}) hung: {e}"));
        assert!(
            report.time() <= bound,
            "round {round}: t = {} exceeds bound {bound}",
            report.time()
        );
        let flag_raised = refined.bus.status_flags.iter().any(|&(_, sig)| {
            let name = &refined.system.signal(sig).name;
            report.final_signal_by_name(name) == Some(&Value::Bit(true))
        });
        let data_ok = report.final_variable(f.x).as_i64().ok() == Some(32);
        if flag_raised {
            aborted += 1;
        } else if data_ok {
            completed_ok += 1;
        } else {
            // A spurious DONE pulse can complete a word early with stale
            // data: bounded and observable, but silently wrong. Track it;
            // the liveness bound above is the property under test.
            corrupt += 1;
        }
    }
    assert_eq!(completed_ok + aborted + corrupt, 25);
    // The campaign must exercise the recovery machinery, not no-op runs.
    assert!(completed_ok > 0, "no run completed cleanly");
}

#[test]
fn plain_flc_with_stuck_done_deadlocks_naming_the_waiter() {
    // EVAL_R3 alone on the bus: a single client, so no arbiter stands
    // between the process and the stuck handshake line.
    let f = flc::flc();
    let design = BusDesign::with_width(vec![f.ch1], 16, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let config = SimConfig::new()
        .with_faults(FaultPlan::new().stuck_at_0("B_DONE", 0, None))
        .with_deadlock_detection();
    let err = Simulator::with_config(&refined.system, config)
        .unwrap()
        .run_to_quiescence()
        .expect_err("stuck DONE must deadlock the plain protocol");
    let SimError::Deadlock { diagnosis } = err else {
        panic!("expected a deadlock diagnosis, got {err}");
    };
    let blocked = diagnosis
        .blocked_behavior("EVAL_R3")
        .expect("EVAL_R3 is the blocked client");
    assert!(
        blocked.wait.contains("B_DONE"),
        "wait must name the stuck line: {}",
        blocked.wait
    );
    assert!(
        blocked
            .observed
            .iter()
            .any(|(n, v)| n == "B_DONE" && v.contains('0')),
        "observed values must show DONE low: {:?}",
        blocked.observed
    );
    // The error's Display carries the full diagnosis for CLI users.
    let rendered = SimError::Deadlock { diagnosis }.to_string();
    assert!(rendered.contains("EVAL_R3"), "{rendered}");
    assert!(rendered.contains("wait until"), "{rendered}");
}

#[test]
fn hardened_flc_with_stuck_done_aborts_within_bound() {
    let f = flc::flc();
    let design = BusDesign::with_width(vec![f.ch1], 16, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_timeout(WATCHDOG)
        .with_retry_limit(RETRIES)
        .refine(&f.system, &design)
        .unwrap();
    let fault_free = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap()
        .time();
    // 128 messages x 2 words; an aborted message gives up after word 1.
    let bound = fault_free + retry_overhead(2 * flc::FLC_ACCESSES);
    let config = SimConfig::new()
        .with_max_time(bound)
        .with_faults(FaultPlan::new().stuck_at_0("B_DONE", 0, None))
        .with_deadlock_detection();
    let report = Simulator::with_config(&refined.system, config)
        .unwrap()
        .run_to_quiescence()
        .expect("hardened protocol must not hang");
    assert!(
        report.time() <= bound,
        "t = {} > bound {bound}",
        report.time()
    );
    let (_, stat) = refined.bus.status_flags[0];
    let name = &refined.system.signal(stat).name;
    assert_eq!(
        report.final_signal_by_name(name),
        Some(&Value::Bit(true)),
        "abort must raise {name}"
    );
    // The client ran to completion (aborting each transfer), not hung.
    assert!(report.finish_time(f.eval_r3).is_some());
}

#[test]
fn wait_until_for_round_trips_through_the_spec_language() {
    use interface_synthesis::spec::dsl::*;
    use interface_synthesis::spec::{System, Ty};
    let mut sys = System::new("bounded_wait");
    let m = sys.add_module("chip");
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(b).body = vec![
        drive(s, bit_const(true)),
        wait_until_for(eq(signal(s), bit_const(false)), 16),
    ];
    let printed = interface_synthesis::lang::print_system(&sys).unwrap();
    assert!(
        printed.contains("for 16;"),
        "printed spec must carry the watchdog bound:\n{printed}"
    );
    let reparsed = interface_synthesis::lang::parse_system(&printed).unwrap();
    let reprinted = interface_synthesis::lang::print_system(&reparsed).unwrap();
    assert_eq!(
        printed, reprinted,
        "print -> parse -> print is a fixed point"
    );
}

#[test]
fn vhdl_printer_emits_bounded_waits_and_status_flags() {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
    let hardened = ProtocolGenerator::new()
        .with_timeout(16)
        .with_retry_limit(3)
        .refine(&f.system, &design)
        .unwrap();
    let vhdl = VhdlPrinter::new().print_refined(&hardened);
    assert!(vhdl.contains("for 16 cycles"), "bounded waits must print");
    assert!(vhdl.contains("B_STAT_CH0"), "status flag signal must print");

    // Without hardening the output carries neither construct — the
    // hardened path costs nothing unless asked for.
    let plain = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let vhdl = VhdlPrinter::new().print_refined(&plain);
    assert!(!vhdl.contains("cycles ;"));
    assert!(!vhdl.contains("B_STAT"));
}

#[test]
fn hardened_and_plain_agree_cycle_for_cycle_without_faults() {
    for width in [4u32, 8, 16] {
        let f = flc::flc();
        let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
        let plain = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let hard = ProtocolGenerator::new()
            .with_timeout(16)
            .refine(&f.system, &design)
            .unwrap();
        let t_plain = Simulator::new(&plain.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let t_hard = Simulator::new(&hard.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        assert_eq!(
            t_plain.finish_time(f.eval_r3),
            t_hard.finish_time(f.eval_r3),
            "width {width}: hardening must be free when fault-free"
        );
        assert_eq!(
            t_plain.finish_time(f.conv_r2),
            t_hard.finish_time(f.conv_r2),
            "width {width}"
        );
        assert_eq!(
            t_hard.final_variable(f.conv_acc).as_i64().unwrap(),
            flc::expected_conv_checksum(),
            "width {width}: hardened data path must stay correct"
        );
    }
}

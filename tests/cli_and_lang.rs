//! The textual frontend round-trips against the programmatic models,
//! and the `ifsyn` binary drives the whole pipeline from a spec file.

use std::process::Command;

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::flc;

/// The FLC bus-B workload expressed in the specification language —
/// equivalent to `ifsyn_systems::flc()`'s ch1/ch2 slice.
const FLC_SRC: &str = r#"
system flc;
module chip1;
module chip2;

store chip2_store on chip2 {
    var trru0 : int<16>[128];
    var trru2 : int<16>[128];
}

behavior INIT2 on chip1 {
    -- Seed trru2 with the ramp 2*i + 5 before the readback phase.
    for k in 0 to 127 {
        send chinit(k, k * 2 + 5);
    }
}

behavior EVAL_R3 on chip1 {
    var eval_t : int<16>;
    compute 300 "wait for seeding";
    for i in 0 to 127 {
        compute 6 "evaluate rule 3";
        eval_t := i * 3 + 1;
        send ch1(i, eval_t);
    }
}

behavior CONV_R2 on chip1 {
    var conv_t : int<16>;
    var conv_acc : int<32>;
    compute 300 "wait for seeding";
    for j in 0 to 127 {
        receive ch2(j, conv_t);
        compute 4 "convolve rule 2";
        conv_acc := conv_acc + conv_t;
    }
}

channel chinit : INIT2 writes trru2;
channel ch1 : EVAL_R3 writes trru0;
channel ch2 : CONV_R2 reads trru2;
"#;

#[test]
fn parsed_flc_matches_programmatic_flc_results() {
    let sys = interface_synthesis::lang::parse_system(FLC_SRC).expect("parse");
    let ch1 = sys.channel_by_name("ch1").unwrap();
    let ch2 = sys.channel_by_name("ch2").unwrap();
    // Same message shape as the programmatic model.
    assert_eq!(sys.channel(ch1).message_bits(), 23);
    assert_eq!(sys.channel(ch2).message_bits(), 23);
    assert_eq!(sys.channel(ch1).accesses, 128);

    let design = BusDesign::with_width(vec![ch1, ch2], 16, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(&sys, &design)
        .expect("refine");
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();

    // Same checksum as the programmatic model's trru2 ramp.
    let acc = sys.variable_by_name("conv_acc").unwrap();
    assert_eq!(
        report.final_variable(acc).as_i64().unwrap(),
        flc::expected_conv_checksum()
    );
    let trru0 = sys.variable_by_name("trru0").unwrap();
    match report.final_variable(trru0) {
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                assert_eq!(item.as_i64().unwrap(), 3 * i as i64 + 1);
            }
        }
        other => panic!("expected array, got {other}"),
    }
}

fn ifsyn_binary() -> &'static str {
    env!("CARGO_BIN_EXE_ifsyn")
}

fn spec_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ifsyn-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flc.ifs");
    std::fs::write(&path, FLC_SRC).unwrap();
    path
}

#[test]
fn cli_runs_the_pipeline_from_a_spec_file() {
    let out = Command::new(ifsyn_binary())
        .arg(spec_file())
        .args(["--channels", "ch1,ch2", "--width", "16"])
        .output()
        .expect("spawn ifsyn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 channels selected"), "{stdout}");
    assert!(
        stdout.contains("bus: 16 data + 2 control + 1 ID lines"),
        "{stdout}"
    );
    assert!(stdout.contains("EVAL_R3"), "{stdout}");
}

#[test]
fn cli_explore_prints_the_width_table() {
    let out = Command::new(ifsyn_binary())
        .arg(spec_file())
        .args(["--channels", "ch1,ch2", "--explore"])
        .output()
        .expect("spawn ifsyn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("feasible"), "{stdout}");
    assert!(stdout.lines().count() > 20, "one row per width: {stdout}");
}

#[test]
fn cli_writes_vcd_waveforms() {
    let vcd_path = std::env::temp_dir().join("ifsyn-cli-test").join("out.vcd");
    let _ = std::fs::remove_file(&vcd_path);
    let out = Command::new(ifsyn_binary())
        .arg(spec_file())
        .args(["--channels", "ch1", "--width", "8"])
        .args(["--vcd", vcd_path.to_str().unwrap()])
        .output()
        .expect("spawn ifsyn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let vcd = std::fs::read_to_string(&vcd_path).expect("vcd written");
    assert!(vcd.contains("$enddefinitions"));
    assert!(vcd.contains("B_START"));
}

#[test]
fn cli_reports_parse_errors_with_positions() {
    let dir = std::env::temp_dir().join("ifsyn-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ifs");
    std::fs::write(&bad, "system x;\nmodule ;\n").unwrap();
    let out = Command::new(ifsyn_binary())
        .arg(&bad)
        .output()
        .expect("spawn ifsyn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2:"), "position in error: {stderr}");
}

/// The shipped text specs must reproduce the programmatic models'
/// synthesis results exactly (cross-validation of the frontend).
#[test]
fn shipped_specs_match_programmatic_models() {
    use interface_synthesis::core::BusGenerator;
    use interface_synthesis::partition::Partitioner;

    // Answering machine: same selected width and slowest-client time.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/answering_machine.ifs"
    ))
    .unwrap();
    let parsed = interface_synthesis::lang::parse_system(&src).unwrap();
    let derived = Partitioner::new().partition(&parsed).unwrap();
    let text_design = BusGenerator::new()
        .generate(&derived.system, &derived.channels)
        .unwrap();

    let am = interface_synthesis::systems::answering_machine();
    let rust_design = BusGenerator::new()
        .generate(&am.system, &am.groups[0])
        .unwrap();
    assert_eq!(text_design.width, rust_design.width);
    assert_eq!(
        text_design.dedicated_wires(&derived.system),
        rust_design.dedicated_wires(&am.system)
    );

    // And the refined simulations agree on the slowest client.
    let slowest = |sys: &interface_synthesis::spec::System,
                   design: &interface_synthesis::core::BusDesign,
                   names: &[&str]| {
        let refined = ProtocolGenerator::new().refine(sys, design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        names
            .iter()
            .map(|n| {
                let b = refined.system.behavior_by_name(n).unwrap();
                report.finish_time(b).unwrap()
            })
            .max()
            .unwrap()
    };
    let clients = ["PLAY_GREETING", "RECORD_MSG"];
    assert_eq!(
        slowest(&derived.system, &text_design, &clients),
        slowest(&am.system, &rust_design, &clients),
    );
}

#[test]
fn cli_rejects_half_handshake_with_read_channels() {
    let out = Command::new(ifsyn_binary())
        .arg(spec_file())
        .args(["--channels", "ch2", "--width", "8", "--protocol", "half"])
        .output()
        .expect("spawn ifsyn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("half-handshake") || stderr.contains("read"),
        "{stderr}"
    );
}

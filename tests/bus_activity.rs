//! Signal-level accounting: the generated proticol's wire activity must
//! match the word-layout arithmetic — START toggles twice per bus word,
//! DONE mirrors it, and the ID lines change at most once per message.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::estimate::BusTiming;
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::{Channel, ChannelDirection, System, Ty};

/// One writer moving `messages` messages of `data+addr` bits.
fn writer_system(messages: i64, data: u32, addr: u32) -> (System, ifsyn_spec::ChannelId) {
    let mut sys = System::new("acct");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let ty = if addr > 0 {
        Ty::array(Ty::Bits(data), 1 << addr)
    } else {
        Ty::Bits(data)
    };
    let v = sys.add_variable("V", ty, store);
    let b = sys.add_behavior("P", m1);
    let i = sys.add_variable("i", Ty::Int(16), b);
    let ch = sys.add_channel(Channel {
        name: "ch".into(),
        accessor: b,
        variable: v,
        direction: ChannelDirection::Write,
        data_bits: data,
        addr_bits: addr,
        accesses: messages as u64,
    });
    let access = if addr > 0 {
        send_at(ch, load(var(i)), load(var(i)))
    } else {
        send(ch, load(var(i)))
    };
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(messages - 1, 16),
        vec![access],
    )];
    (sys, ch)
}

#[test]
fn start_toggles_twice_per_word() {
    for width in [3u32, 8, 16, 23] {
        let (sys, ch) = writer_system(16, 16, 7);
        let design = BusDesign::with_width(vec![ch], width, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let words = BusTiming::new(width, 2).words(23) as u64 * 16;
        let start = refined.bus.start.unwrap();
        let done = refined.bus.done.unwrap();
        assert_eq!(
            report.signal_event_count(start),
            2 * words,
            "START events at width {width}"
        );
        assert_eq!(
            report.signal_event_count(done),
            2 * words,
            "DONE events at width {width}"
        );
    }
}

#[test]
fn data_lines_change_at_most_once_per_word() {
    let (sys, ch) = writer_system(8, 16, 7);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let words = BusTiming::new(8, 2).words(23) as u64 * 8;
    let data = refined.bus.data.unwrap();
    assert!(
        report.signal_event_count(data) <= words,
        "DATA changed more often than once per word"
    );
}

#[test]
fn half_handshake_toggles_once_per_word() {
    let (sys, ch) = writer_system(16, 16, 7);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::HalfHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let words = BusTiming::new(8, 1).words(23) as u64 * 16;
    let start = refined.bus.start.unwrap();
    assert_eq!(report.signal_event_count(start), words);
    assert!(
        refined.bus.done.is_none(),
        "half handshake has no DONE wire"
    );
}

#[test]
fn single_channel_bus_never_drives_id_lines() {
    let (sys, ch) = writer_system(4, 16, 7);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    assert!(refined.bus.id.is_none());
}

#[test]
fn trace_shows_word_sequence_on_the_data_lines() {
    use interface_synthesis::sim::SimConfig;
    let (sys, ch) = writer_system(2, 8, 0);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::with_config(&refined.system, SimConfig::new().with_trace())
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let data = refined.bus.data.unwrap();
    let data_values: Vec<u64> = report
        .trace()
        .iter()
        .filter(|e| e.signal == data)
        .map(|e| e.value.as_u64().unwrap())
        .collect();
    // Two messages, values 0 then 1: DATA shows 1 after starting at 0
    // (the first word's value 0 equals the initial state, so only the
    // change to 1 is an event).
    assert_eq!(data_values, vec![1]);
}

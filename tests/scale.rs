//! Scale stress: the pipeline stays well-behaved at channel counts far
//! beyond the paper's examples (wide ID fields, many server processes,
//! many concurrent clients on one arbitrated bus).

use interface_synthesis::core::{BusDesign, BusGenerator, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::{Channel, ChannelDirection, ChannelId, System, Ty, Value};

/// `n` writers, each sending `msgs` messages into its own register,
/// padded so the group is feasible.
fn wide_system(n: usize, msgs: i64, pad: u64) -> (System, Vec<ChannelId>) {
    let mut sys = System::new("wide");
    let m1 = sys.add_module("clients");
    let m2 = sys.add_module("store");
    let store = sys.add_behavior("store", m2);
    let mut chans = Vec::new();
    for k in 0..n {
        let v = sys.add_variable(format!("R{k}"), Ty::Bits(16), store);
        let b = sys.add_behavior(format!("C{k}"), m1);
        let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: format!("w{k}"),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 0,
            accesses: msgs as u64,
        });
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(msgs - 1, 16),
            vec![
                ifsyn_spec::Stmt::compute(pad, "pad"),
                send(ch, add(load(var(i)), int_const(k as i64 * 100, 16))),
            ],
        )];
        chans.push(ch);
    }
    (sys, chans)
}

#[test]
fn sixty_four_channels_refine_and_simulate() {
    let (sys, chans) = wide_system(64, 4, 200);
    let design = BusDesign::with_width(chans.clone(), 16, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    // 64 channels -> 6 ID bits; 64 server processes + 1 arbiter.
    assert_eq!(design.id_bits(), 6);
    assert_eq!(refined.bus.var_processes.len(), 64);
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    for k in 0..64usize {
        let v = refined.system.variable_by_name(&format!("R{k}")).unwrap();
        assert_eq!(
            report.final_variable(v),
            &Value::Bits(ifsyn_spec::BitVec::from_u64(
                (k as u64 * 100 + 3) & 0xffff,
                16
            )),
            "R{k}"
        );
    }
}

#[test]
fn exploration_over_many_channels_is_complete() {
    let (sys, chans) = wide_system(32, 4, 100);
    let exploration = BusGenerator::new().explore(&sys, &chans).unwrap();
    // Width range 1..=16 (max message is 16 bits).
    assert_eq!(exploration.rows.len(), 16);
    for row in &exploration.rows {
        assert_eq!(row.metrics.ave_rates.len(), 32);
    }
}

#[test]
fn deep_nesting_in_one_behavior() {
    // 8 nested loops; the interpreter's frame-local loop stack and the
    // estimator's recursion both handle it.
    let mut sys = System::new("deep");
    let m = sys.add_module("chip");
    let b = sys.add_behavior("P", m);
    let acc = sys.add_variable("acc", Ty::Int(32), b);
    let mut body = vec![assign(var(acc), add(load(var(acc)), int_const(1, 32)))];
    for level in 0..8 {
        let i = sys.add_variable(format!("i{level}"), Ty::Int(16), b);
        body = vec![for_loop(var(i), int_const(0, 16), int_const(1, 16), body)];
    }
    sys.behavior_mut(b).body = body;
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(acc).as_i64().unwrap(), 256);
    let est = interface_synthesis::estimate::PerformanceEstimator::new()
        .estimate(
            &sys,
            b,
            &interface_synthesis::estimate::ChannelTimings::new(),
        )
        .unwrap();
    assert_eq!(est.cycles, 256);
}

#[test]
fn large_memory_traffic_is_exact() {
    // One writer filling a 1920-entry memory (the FLC's InitMemberFunct
    // size) through the bus, then verified element by element.
    let mut sys = System::new("bigmem");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mem = sys.add_variable("BIG", Ty::array(Ty::Int(16), 1920), store);
    let b = sys.add_behavior("INIT", m1);
    let i = sys.add_variable("i", Ty::Int(16), b);
    let ch = sys.add_channel(Channel {
        name: "init".into(),
        accessor: b,
        variable: mem,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 11,
        accesses: 1920,
    });
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(1919, 16),
        vec![send_at(
            ch,
            load(var(i)),
            mul(load(var(i)), int_const(7, 16)),
        )],
    )];
    let design = BusDesign::with_width(vec![ch], 27, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    // 1920 messages of 1 word x 2 clk = 3840 clocks.
    let init = refined.system.behavior_by_name("INIT").unwrap();
    assert_eq!(report.finish_time(init), Some(3840));
    match report.final_variable(mem) {
        Value::Array(items) => {
            for (idx, item) in items.iter().enumerate() {
                let expected = ((idx as i64 * 7) << 48 >> 48) & 0xffff;
                assert_eq!(item.as_i64().unwrap() & 0xffff, expected, "BIG[{idx}]");
            }
        }
        other => panic!("expected array, got {other}"),
    }
}

//! FLC (paper Fig. 6–7) end-to-end: refine the ch1/ch2 bus, simulate,
//! and check both functional correctness and measured timing against
//! the analytic model the paper's Fig. 7 is built from.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::estimate::BusTiming;
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::flc::{
    self, CONV_COMPUTE_CYCLES, EVAL_COMPUTE_CYCLES, FLC_ACCESSES,
};

/// Analytic per-process execution time: accesses x (compute + transfer).
fn analytic_cycles(width: u32, compute: u64) -> u64 {
    let timing = BusTiming::new(width, 2);
    FLC_ACCESSES * (compute + timing.cycles_per_access(23))
}

#[test]
fn eval_r3_alone_matches_analytic_time_exactly() {
    for width in [1u32, 2, 4, 8, 12, 16, 23, 30] {
        let f = flc::flc();
        let design = BusDesign::with_width(vec![f.ch1], width, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let measured = report.finish_time(f.eval_r3).unwrap();
        let expected = analytic_cycles(width, EVAL_COMPUTE_CYCLES);
        assert_eq!(
            measured, expected,
            "EVAL_R3 at width {width}: measured {measured}, analytic {expected}"
        );
    }
}

#[test]
fn conv_r2_alone_matches_analytic_time_exactly() {
    // The read path (address out, data back, mixed boundary word) must
    // cost the same 2 clocks/word as the write path.
    for width in [1u32, 2, 4, 7, 8, 12, 16, 23, 30] {
        let f = flc::flc();
        let design = BusDesign::with_width(vec![f.ch2], width, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let measured = report.finish_time(f.conv_r2).unwrap();
        let expected = analytic_cycles(width, CONV_COMPUTE_CYCLES);
        assert_eq!(
            measured, expected,
            "CONV_R2 at width {width}: measured {measured}, analytic {expected}"
        );
    }
}

#[test]
fn refined_flc_transfers_correct_data() {
    for width in [4u32, 8, 16, 23] {
        let f = flc::flc();
        let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        // trru0 must hold EVAL_R3's truth values 3i + 1.
        match report.final_variable(f.trru0) {
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    assert_eq!(
                        item.as_i64().unwrap(),
                        3 * i as i64 + 1,
                        "trru0[{i}] at width {width}"
                    );
                }
            }
            other => panic!("expected array, got {other}"),
        }
        // CONV_R2 must have accumulated the trru2 ramp checksum.
        assert_eq!(
            report.final_variable(f.conv_acc).as_i64().unwrap(),
            flc::expected_conv_checksum(),
            "conv checksum at width {width}"
        );
    }
}

#[test]
fn shared_bus_serialises_but_stays_correct() {
    // With both channels on one arbitrated bus, each process can only be
    // slower than it was alone, and never slower than the sum of both
    // transfer demands plus its own compute.
    let width = 8;
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let t_eval = report.finish_time(f.eval_r3).unwrap();
    let t_conv = report.finish_time(f.conv_r2).unwrap();
    let alone_eval = analytic_cycles(width, EVAL_COMPUTE_CYCLES);
    let alone_conv = analytic_cycles(width, CONV_COMPUTE_CYCLES);
    assert!(t_eval >= alone_eval, "{t_eval} < {alone_eval}");
    assert!(t_conv >= alone_conv, "{t_conv} < {alone_conv}");
    // Upper bound: all transfers serialised end to end.
    let total_transfer = 2 * FLC_ACCESSES * BusTiming::new(width, 2).cycles_per_access(23);
    assert!(t_eval <= total_transfer + FLC_ACCESSES * EVAL_COMPUTE_CYCLES);
    assert!(t_conv <= total_transfer + FLC_ACCESSES * CONV_COMPUTE_CYCLES);
}

#[test]
fn performance_flattens_beyond_23_pins() {
    // Paper: "bus widths greater than 23 pins do not yield any further
    // improvements in the performance".
    let f = flc::flc();
    let mut at_23 = 0;
    for width in [23u32, 24, 30, 46] {
        let design = BusDesign::with_width(vec![f.ch1], width, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let t = report.finish_time(f.eval_r3).unwrap();
        if width == 23 {
            at_23 = t;
        } else {
            assert_eq!(t, at_23, "width {width} should not improve on 23");
        }
    }
}

#[test]
fn estimator_reproduces_measured_times_via_channel_timings() {
    // The analytic estimator, fed the same BusTiming, must agree with
    // simulation for the isolated processes (the consistency DESIGN.md
    // promises).
    use interface_synthesis::estimate::{ChannelTimings, PerformanceEstimator};
    let f = flc::flc();
    for width in [4u32, 8, 16] {
        let timings = ChannelTimings::uniform(&[f.ch1], BusTiming::new(width, 2));
        let est = PerformanceEstimator::new()
            .estimate(&f.system, f.eval_r3, &timings)
            .unwrap();
        assert_eq!(est.cycles, analytic_cycles(width, EVAL_COMPUTE_CYCLES));
    }
}

#[test]
fn half_handshake_matches_one_clock_per_word() {
    // Half handshake: 1 clock per word (only a strobe edge), write-only.
    for width in [2u32, 8, 16, 23] {
        let f = flc::flc();
        let design = BusDesign::with_width(vec![f.ch1], width, ProtocolKind::HalfHandshake);
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let timing = BusTiming::new(width, 1);
        let expected = FLC_ACCESSES * (EVAL_COMPUTE_CYCLES + timing.cycles_per_access(23));
        assert_eq!(
            report.finish_time(f.eval_r3).unwrap(),
            expected,
            "half handshake at width {width}"
        );
        // And the data still lands intact.
        match report.final_variable(f.trru0) {
            Value::Array(items) => {
                assert_eq!(items[100].as_i64().unwrap(), 301);
            }
            other => panic!("expected array, got {other}"),
        }
    }
}

#[test]
fn fixed_delay_matches_its_configured_period() {
    for (width, cycles) in [(8u32, 2u32), (8, 3), (8, 5), (16, 4)] {
        let f = flc::flc();
        let design = BusDesign::with_width(vec![f.ch1], width, ProtocolKind::FixedDelay { cycles });
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let timing = BusTiming::new(width, cycles);
        let expected = FLC_ACCESSES * (EVAL_COMPUTE_CYCLES + timing.cycles_per_access(23));
        assert_eq!(
            report.finish_time(f.eval_r3).unwrap(),
            expected,
            "fixed-delay({cycles}) at width {width}"
        );
    }
}

#[test]
fn fixed_delay_read_path_matches_too() {
    for cycles in [2u32, 3] {
        let f = flc::flc();
        let design = BusDesign::with_width(vec![f.ch2], 8, ProtocolKind::FixedDelay { cycles });
        let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let timing = BusTiming::new(8, cycles);
        let expected = FLC_ACCESSES * (CONV_COMPUTE_CYCLES + timing.cycles_per_access(23));
        assert_eq!(
            report.finish_time(f.conv_r2).unwrap(),
            expected,
            "fixed-delay({cycles}) read"
        );
        assert_eq!(
            report.final_variable(f.conv_acc).as_i64().unwrap(),
            flc::expected_conv_checksum()
        );
    }
}

//! Arbitration semantics under contention: round-robin interleaves,
//! fixed priority can hold off a lower-priority client until the
//! higher-priority stream drains.

use interface_synthesis::core::{Arbitration, BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::{Channel, ChannelDirection, System, Ty};

/// P0 streams `burst` messages back-to-back; P1 wants exactly one.
/// Both writers target their own variables over one shared bus.
fn build(burst: i64) -> (System, ifsyn_spec::ChannelId, ifsyn_spec::ChannelId) {
    let mut sys = System::new("contention");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let v0 = sys.add_variable("V0", Ty::array(Ty::Int(16), 64), store);
    let v1 = sys.add_variable("V1", Ty::Bits(16), store);

    let p0 = sys.add_behavior("P0", m1);
    let p1 = sys.add_behavior("P1", m1);
    let i = sys.add_variable("i", Ty::Int(16), p0);

    let ch0 = sys.add_channel(Channel {
        name: "stream".into(),
        accessor: p0,
        variable: v0,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 6,
        accesses: burst as u64,
    });
    let ch1 = sys.add_channel(Channel {
        name: "oneshot".into(),
        accessor: p1,
        variable: v1,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 0,
        accesses: 1,
    });
    sys.behavior_mut(p0).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(burst - 1, 16),
        vec![send_at(ch0, load(var(i)), load(var(i)))],
    )];
    sys.behavior_mut(p1).body = vec![send(ch1, int_const(7, 16))];
    (sys, ch0, ch1)
}

fn finish_of_p1(config: Arbitration, burst: i64) -> u64 {
    let (sys, ch0, ch1) = build(burst);
    let design = BusDesign::with_width(vec![ch0, ch1], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_arbitration(config)
        .refine(&sys, &design)
        .unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let p1 = refined.system.behavior_by_name("P1").unwrap();
    report.finish_time(p1).expect("P1 finished")
}

#[test]
fn round_robin_serves_the_oneshot_quickly() {
    // With rotation, P1's single message slips in after at most one of
    // P0's transactions.
    let t = finish_of_p1(Arbitration::round_robin(), 32);
    // P0 transaction = 3 words x 2 clk = 6 clk; P1's = 2 words x 2 = 4.
    assert!(t <= 16, "round-robin served P1 at {t}");
}

#[test]
fn fixed_priority_can_make_the_oneshot_wait() {
    // P0 has priority 0; because it re-requests before the grant cycles
    // back, P1 waits for a large part of the burst.
    let rr = finish_of_p1(Arbitration::round_robin(), 32);
    let fp = finish_of_p1(Arbitration::fixed_priority(), 32);
    assert!(
        fp > rr,
        "fixed priority ({fp}) should delay P1 vs round-robin ({rr})"
    );
}

#[test]
fn data_is_correct_under_both_policies() {
    for config in [Arbitration::round_robin(), Arbitration::fixed_priority()] {
        let (sys, ch0, ch1) = build(16);
        let design = BusDesign::with_width(vec![ch0, ch1], 8, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new()
            .with_arbitration(config)
            .refine(&sys, &design)
            .unwrap();
        let report = Simulator::new(&refined.system)
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let v0 = refined.system.variable_by_name("V0").unwrap();
        let v1 = refined.system.variable_by_name("V1").unwrap();
        if let ifsyn_spec::Value::Array(items) = report.final_variable(v0) {
            for (i, item) in items.iter().take(16).enumerate() {
                assert_eq!(item.as_i64().unwrap(), i as i64);
            }
        }
        assert_eq!(report.final_variable(v1).as_u64().unwrap(), 7);
    }
}

#[test]
fn round_robin_rotation_covers_every_client() {
    // Regression test: the rotation after `last == n-1` must wrap to
    // client 0; a chain that skips client 0 starves it under full
    // contention and its stream finishes far behind the others.
    let mut sys = System::new("fairness");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mut chans = Vec::new();
    let mut clients = Vec::new();
    for k in 0..4 {
        let v = sys.add_variable(format!("W{k}"), Ty::array(Ty::Int(16), 64), store);
        let b = sys.add_behavior(format!("C{k}"), m1);
        let i = sys.add_variable(format!("ix{k}"), Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: format!("wch{k}"),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 6,
            accesses: 32,
        });
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(31, 16),
            vec![send_at(ch, load(var(i)), load(var(i)))],
        )];
        chans.push(ch);
        clients.push(b);
    }
    let design = BusDesign::with_width(chans, 22, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_arbitration(Arbitration::round_robin())
        .refine(&sys, &design)
        .unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let times: Vec<u64> = clients
        .iter()
        .map(|&b| report.finish_time(b).unwrap())
        .collect();
    let min = *times.iter().min().unwrap();
    let max = *times.iter().max().unwrap();
    // Fully saturated fair service: everyone finishes within one
    // transaction's worth of each other.
    assert!(
        max - min <= 8,
        "unfair round-robin service: finish times {times:?}"
    );
}

#[test]
fn grant_delay_is_charged_per_transaction() {
    let t0 = finish_of_p1(Arbitration::round_robin(), 4);
    let t3 = finish_of_p1(Arbitration::round_robin().with_grant_cycles(3), 4);
    assert!(t3 > t0, "grant cycles must cost time ({t3} vs {t0})");
}

//! Property: partitioning preserves functional behavior.
//!
//! For randomly generated single-module systems with shared-variable
//! traffic, moving the shared variables to a second module (rewriting
//! accesses into channel operations) must not change any final state.

use interface_synthesis::partition::Partitioner;
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::rng::SplitMix64;
use interface_synthesis::spec::{Stmt, System, Ty, Value, VarId};

/// One randomly drawn access performed by a worker behavior.
#[derive(Debug, Clone, Copy)]
enum Access {
    /// `SHARED[addr % len] := value`
    WriteElem { addr: u8, value: i16 },
    /// `local := SHARED[addr % len] + value`
    ReadElem { addr: u8, value: i16 },
    /// `STATUS := value`
    WriteScalar { value: i16 },
    /// `local := STATUS`
    ReadScalar,
    /// `compute value cycles`
    Compute { cycles: u8 },
}

fn access(rng: &mut SplitMix64) -> Access {
    match rng.below(5) {
        0 => Access::WriteElem {
            addr: rng.next_u64() as u8,
            value: rng.next_u64() as i16,
        },
        1 => Access::ReadElem {
            addr: rng.next_u64() as u8,
            value: rng.next_u64() as i16,
        },
        2 => Access::WriteScalar {
            value: rng.next_u64() as i16,
        },
        3 => Access::ReadScalar,
        _ => Access::Compute {
            cycles: rng.below(10) as u8,
        },
    }
}

const SHARED_LEN: u32 = 16;

/// Builds the unpartitioned system: N workers hammering SHARED/STATUS.
fn build(workers: &[Vec<Access>]) -> (System, Vec<VarId>) {
    let mut sys = System::new("prop");
    let all = sys.add_module("system");
    let host = sys.add_behavior("host", all);
    let shared = sys.add_variable_init(
        "SHARED",
        Ty::array(Ty::Int(16), SHARED_LEN),
        host,
        Value::Array((0..SHARED_LEN).map(|i| Value::int(i as i64, 16)).collect()),
    );
    let status = sys.add_variable("STATUS", Ty::Int(16), host);
    let mut interesting = vec![shared, status];
    for (w, accesses) in workers.iter().enumerate() {
        let b = sys.add_behavior(format!("W{w}"), all);
        let local = sys.add_variable(format!("local{w}"), Ty::Int(16), b);
        interesting.push(local);
        // Stagger workers so concurrent writers don't race on order:
        // each worker runs in its own time window, which makes the final
        // state deterministic in both the unpartitioned and partitioned
        // forms (per-element write order is what matters).
        let mut body = vec![Stmt::compute(1 + 200 * w as u64, "stagger")];
        for a in accesses {
            match a {
                Access::WriteElem { addr, value } => body.push(assign(
                    index(var(shared), int_const(i64::from(*addr) % 16, 16)),
                    int_const(i64::from(*value), 16),
                )),
                Access::ReadElem { addr, value } => body.push(assign(
                    var(local),
                    add(
                        load(index(var(shared), int_const(i64::from(*addr) % 16, 16))),
                        int_const(i64::from(*value), 16),
                    ),
                )),
                Access::WriteScalar { value } => {
                    body.push(assign(var(status), int_const(i64::from(*value), 16)))
                }
                Access::ReadScalar => body.push(assign(var(local), load(var(status)))),
                Access::Compute { cycles } => body.push(Stmt::compute(u64::from(*cycles), "pad")),
            }
        }
        sys.behavior_mut(b).body = body;
    }
    (sys, interesting)
}

fn finals(sys: &System, vars: &[VarId]) -> Vec<Value> {
    let report = Simulator::new(sys)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("simulation");
    vars.iter()
        .map(|&v| report.final_variable(v).clone())
        .collect()
}

#[test]
fn partitioning_preserves_final_state() {
    let mut rng = SplitMix64::new(0x9a57);
    for _ in 0..40 {
        let workers: Vec<Vec<Access>> = (0..rng.range_u64(1, 3))
            .map(|_| (0..rng.range_u64(1, 7)).map(|_| access(&mut rng)).collect())
            .collect();
        let (sys, vars) = build(&workers);
        let golden = finals(&sys, &vars);

        let mut partitioner = Partitioner::new()
            .place_variable("SHARED", "mem_chip")
            .place_variable("STATUS", "mem_chip");
        for w in 0..workers.len() {
            partitioner = partitioner.place_behavior(format!("W{w}"), "cpu_chip");
        }
        partitioner = partitioner.place_behavior("host", "cpu_chip");
        let result = partitioner.partition(&sys).expect("partition");
        // The rewritten (abstract-channel) system computes the same
        // final state. Variable ids of the original system remain valid:
        // the partitioner only appends temporaries.
        let partitioned = finals(&result.system, &vars);
        assert_eq!(&golden, &partitioned, "workers: {workers:?}");

        // And once more through protocol generation, if feasible widths
        // exist for the derived group.
        if !result.channels.is_empty() {
            let design = interface_synthesis::core::BusDesign::with_width(
                result.channels.clone(),
                8,
                interface_synthesis::core::ProtocolKind::FullHandshake,
            );
            let refined = interface_synthesis::core::ProtocolGenerator::new()
                .refine(&result.system, &design)
                .expect("refinement");
            let refined_finals = finals(&refined.system, &vars);
            assert_eq!(&golden, &refined_finals, "workers: {workers:?}");
        }
    }
}

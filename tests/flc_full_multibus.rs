//! The full FLC (all four rule pipelines, eight channels): feasibility
//! islands, multi-bus refinement and functional verification.

use interface_synthesis::core::{BusGenerator, ProtocolGenerator};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::flc::{expected_full_checksum, flc_full};

#[test]
fn feasibility_is_an_island_for_the_eight_channel_group() {
    // A reproduction insight the paper's step-3 "try the next buswidth"
    // loop silently handles: with several channels, average rates are
    // step functions of the per-message word count while the bus rate
    // grows linearly — so the feasible set need not be an up-closed
    // interval. Here widths 20-22 are feasible but 23 is not (at 23 the
    // EVAL messages fit one word and their rates jump).
    let f = flc_full();
    let expl = BusGenerator::new()
        .explore(&f.system, &f.all_channels())
        .unwrap();
    let feasible: Vec<u32> = expl.feasible().map(|r| r.width).collect();
    assert_eq!(feasible, vec![20, 21, 22]);
    // And the generator picks from the island.
    let design = BusGenerator::new()
        .generate(&f.system, &f.all_channels())
        .unwrap();
    assert_eq!(design.width, 20);
}

#[test]
fn two_buses_refine_and_verify() {
    // Put the four EVAL streams on one bus and the four CONV readbacks
    // on another, then check every memory and every checksum.
    let f = flc_full();
    let eval_bus = BusGenerator::new()
        .generate(&f.system, &f.eval_channels)
        .expect("eval bus feasible");
    let conv_bus = BusGenerator::new()
        .generate(&f.system, &f.conv_channels)
        .expect("conv bus feasible");

    let refined = ProtocolGenerator::new()
        .refine_all(&f.system, &[eval_bus, conv_bus])
        .expect("multi-bus refinement");
    assert_eq!(refined.buses.len(), 2);
    let report = Simulator::new(&refined.system)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("simulation");

    for k in 0..4usize {
        match report.final_variable(f.trrus[k]) {
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    assert_eq!(
                        item.as_i64().unwrap(),
                        (k as i64 + 1) * i as i64 + k as i64,
                        "trru{k}[{i}]"
                    );
                }
            }
            other => panic!("expected array, got {other}"),
        }
        assert_eq!(
            report.final_variable(f.accs[k]).as_i64().unwrap(),
            expected_full_checksum(k as i64),
            "CONV_R{k} checksum"
        );
    }
    for &b in f.evals.iter().chain(&f.convs) {
        assert!(report.finish_time(b).is_some());
    }
}

#[test]
fn dedicated_eval_bus_beats_the_shared_island_bus() {
    let f = flc_full();

    // Everything on the width-20 island bus.
    let single = BusGenerator::new()
        .generate(&f.system, &f.all_channels())
        .unwrap();
    let refined_single = ProtocolGenerator::new().refine(&f.system, &single).unwrap();
    let report_single = Simulator::new(&refined_single.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();

    // EVAL streams on their own bus.
    let eval_bus = BusGenerator::new()
        .generate(&f.system, &f.eval_channels)
        .unwrap();
    let conv_bus = BusGenerator::new()
        .generate(&f.system, &f.conv_channels)
        .unwrap();
    let refined_multi = ProtocolGenerator::new()
        .refine_all(&f.system, &[eval_bus, conv_bus])
        .unwrap();
    let report_multi = Simulator::new(&refined_multi.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();

    let slowest = |report: &interface_synthesis::sim::SimReport| {
        f.evals
            .iter()
            .map(|&b| report.finish_time(b).unwrap())
            .max()
            .unwrap()
    };
    // Both configurations leave the four EVAL streams alone on a ~20-pin
    // bus (the CONV readbacks start only after a long compute phase), so
    // the times agree up to arbitration interleaving noise.
    let (multi, single) = (slowest(&report_multi), slowest(&report_single));
    assert!(
        multi as f64 <= single as f64 * 1.05 + 16.0,
        "splitting the CONV traffic off should not materially slow the \
         EVAL streams ({multi} vs {single})"
    );
}

//! The printed refinement must carry the structural elements of the
//! paper's Figs. 4–5: the bus record, the ID assignment, send/receive
//! procedures with word loops, rewritten behaviors and variable
//! processes.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::systems::fig3;
use interface_synthesis::vhdl::VhdlPrinter;

fn refined_text() -> String {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .without_arbitration()
        .refine(&f.system, &design)
        .unwrap();
    VhdlPrinter::new().print_refined(&refined)
}

#[test]
fn prints_the_handshake_bus_record() {
    let text = refined_text();
    assert!(text.contains("type HandShakeBus is record"), "{text}");
    assert!(text.contains("START : bit ;"));
    assert!(text.contains("DONE : bit ;"));
    assert!(text.contains("ID : bit_vector(1 downto 0) ;"));
    assert!(text.contains("DATA : bit_vector(7 downto 0) ;"));
    assert!(text.contains("signal B : HandShakeBus ;"));
}

#[test]
fn prints_the_id_assignment() {
    let text = refined_text();
    // Four channels, two ID bits (paper step 2: CH0 = "00", ...).
    assert!(text.contains("CH0 = \"00\""), "{text}");
    assert!(text.contains("CH1 = \"01\""));
    assert!(text.contains("CH2 = \"10\""));
    assert!(text.contains("CH3 = \"11\""));
}

#[test]
fn prints_send_and_receive_procedures() {
    let text = refined_text();
    assert!(text.contains("procedure Send_CH0(txdata : in bit_vector(15 downto 0))"));
    assert!(
        text.contains("procedure Receive_CH1("),
        "read channel gets a receive procedure: {text}"
    );
    // The 16-bit message crosses the 8-bit bus in two words: two START
    // rises inside Send_CH0 (the paper's `for J in 1 to 2` unrolled).
    let send_ch0 = text
        .split("procedure Send_CH0")
        .nth(1)
        .and_then(|t| t.split("end Send_CH0").next())
        .expect("Send_CH0 body printed");
    assert_eq!(send_ch0.matches("B_START <= '1'").count(), 2, "{send_ch0}");
    assert!(send_ch0.contains("wait until (B_DONE = '1')"));
}

#[test]
fn prints_rewritten_behaviors_with_calls() {
    let text = refined_text();
    // P's body is now procedure calls, not direct accesses (Fig. 5 top).
    let p = text
        .split("process P\n")
        .nth(1)
        .and_then(|t| t.split("end process").next())
        .expect("process P printed");
    assert!(p.contains("Send_CH0(32)"), "{p}");
    assert!(p.contains("Receive_CH1(Xtemp)"));
    assert!(p.contains("Send_CH2(AD, (Xtemp + 7))"));
}

#[test]
fn prints_variable_processes() {
    let text = refined_text();
    // Fig. 5 bottom: Xproc and MEMproc dispatch on the ID lines.
    assert!(text.contains("process Xproc"), "{text}");
    assert!(text.contains("process MEMproc"));
    let xproc = text
        .split("process Xproc")
        .nth(1)
        .and_then(|t| t.split("end process").next())
        .expect("Xproc body");
    assert!(xproc.contains("if (B_ID = \"00\") then"), "{xproc}");
    assert!(xproc.contains("Serve_CH0()"));
}

#[test]
fn unrefined_system_prints_abstract_channel_calls() {
    let f = fig3::fig3();
    let text = VhdlPrinter::new().print_system(&f.system);
    assert!(text.contains("send_CH0(32)"), "{text}");
    assert!(text.contains("receive_CH1(Xtemp)"));
    assert!(text.contains("-- abstract"));
}

//! Property: protocol generation preserves functional behavior.
//!
//! For randomly generated channel configurations (directions, message
//! sizes, access patterns, bus width), the refined system's final
//! variable state must equal the abstract (ideal-channel) system's.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::rng::SplitMix64;
use interface_synthesis::spec::{
    BitVec, Channel, ChannelDirection, ChannelId, System, Ty, Value, VarId,
};

/// One randomly drawn channel scenario.
#[derive(Debug, Clone)]
struct ChannelSpec {
    data_bits: u32,
    addr_bits: u32,
    is_read: bool,
    /// (address, value) per access; addresses are masked to range.
    accesses: Vec<(u64, u64)>,
}

fn channel_spec(rng: &mut SplitMix64) -> ChannelSpec {
    ChannelSpec {
        data_bits: rng.range_u32(1, 23),
        addr_bits: rng.range_u32(0, 5),
        is_read: rng.bool(),
        accesses: (0..rng.range_u64(1, 4))
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect(),
    }
}

/// Builds a system with one variable + one accessor behavior per
/// channel spec. Returns (system, channels, interesting variables).
fn build(specs: &[ChannelSpec]) -> (System, Vec<ChannelId>, Vec<VarId>) {
    let mut sys = System::new("prop");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mut channels = Vec::new();
    let mut vars = Vec::new();
    for (k, spec) in specs.iter().enumerate() {
        let len = 1u32 << spec.addr_bits;
        let elem = Ty::Bits(spec.data_bits);
        let ty = if spec.addr_bits > 0 {
            Ty::array(elem.clone(), len)
        } else {
            elem.clone()
        };
        // Seed remote variables with a deterministic pattern so reads
        // observe nontrivial data.
        let init = if spec.addr_bits > 0 {
            Value::Array(
                (0..len)
                    .map(|i| {
                        Value::Bits(BitVec::from_u64(
                            (u64::from(i)).wrapping_mul(0x9e37) ^ k as u64,
                            spec.data_bits,
                        ))
                    })
                    .collect(),
            )
        } else {
            Value::Bits(BitVec::from_u64(0x5a5a ^ k as u64, spec.data_bits))
        };
        let v = sys.add_variable_init(format!("V{k}"), ty, store, init);
        let b = sys.add_behavior(format!("P{k}"), m1);
        let ch = sys.add_channel(Channel {
            name: format!("ch{k}"),
            accessor: b,
            variable: v,
            direction: if spec.is_read {
                ChannelDirection::Read
            } else {
                ChannelDirection::Write
            },
            data_bits: spec.data_bits,
            addr_bits: spec.addr_bits,
            accesses: spec.accesses.len() as u64,
        });
        let mut body = Vec::new();
        for (j, &(addr, value)) in spec.accesses.iter().enumerate() {
            let addr = addr % u64::from(len);
            let addr_expr = (spec.addr_bits > 0).then(|| bits_const(addr, spec.addr_bits));
            if spec.is_read {
                let tmp = sys.add_variable(format!("rx{k}_{j}"), Ty::Bits(spec.data_bits), b);
                vars.push(tmp);
                body.push(match addr_expr {
                    Some(a) => receive_at(ch, a, var(tmp)),
                    None => receive(ch, var(tmp)),
                });
            } else {
                body.push(match addr_expr {
                    Some(a) => send_at(ch, a, bits_const(value, spec.data_bits)),
                    None => send(ch, bits_const(value, spec.data_bits)),
                });
            }
        }
        sys.behavior_mut(b).body = body;
        channels.push(ch);
        vars.push(v);
    }
    (sys, channels, vars)
}

fn final_state(sys: &System, vars: &[VarId]) -> Vec<Value> {
    let report = Simulator::new(sys)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("simulation");
    vars.iter()
        .map(|&v| report.final_variable(v).clone())
        .collect()
}

#[test]
fn refinement_preserves_final_state() {
    let mut rng = SplitMix64::new(0x4a1f_0001);
    for _ in 0..48 {
        let specs: Vec<ChannelSpec> = (0..rng.range_u64(1, 3))
            .map(|_| channel_spec(&mut rng))
            .collect();
        let width = rng.range_u32(1, 39);
        let rolled = rng.bool();
        let (sys, channels, vars) = build(&specs);
        let golden = final_state(&sys, &vars);

        let design = BusDesign::with_width(channels, width, ProtocolKind::FullHandshake);
        let mut pg = ProtocolGenerator::new();
        if rolled {
            pg = pg.with_rolled_word_loops();
        }
        let refined = pg.refine(&sys, &design).expect("refinement");
        let measured = final_state(&refined.system, &vars);
        assert_eq!(golden, measured, "width {width} rolled {rolled}: {specs:?}");
    }
}

#[test]
fn write_only_groups_survive_half_handshake() {
    let mut rng = SplitMix64::new(0x4a1f_0002);
    for _ in 0..24 {
        let specs: Vec<ChannelSpec> = (0..rng.range_u64(1, 3))
            .map(|_| {
                let mut s = channel_spec(&mut rng);
                s.is_read = false;
                s
            })
            .collect();
        let width = rng.range_u32(1, 31);
        let (sys, channels, vars) = build(&specs);
        let golden = final_state(&sys, &vars);
        let design = BusDesign::with_width(channels, width, ProtocolKind::HalfHandshake);
        let refined = ProtocolGenerator::new()
            .refine(&sys, &design)
            .expect("refinement");
        let measured = final_state(&refined.system, &vars);
        assert_eq!(golden, measured, "width {width}: {specs:?}");
    }
}

#[test]
fn fixed_delay_preserves_final_state() {
    let mut rng = SplitMix64::new(0x4a1f_0003);
    for _ in 0..24 {
        let specs: Vec<ChannelSpec> = (0..rng.range_u64(1, 2))
            .map(|_| channel_spec(&mut rng))
            .collect();
        let width = rng.range_u32(1, 31);
        let delay = rng.range_u32(2, 5);
        let (sys, channels, vars) = build(&specs);
        let golden = final_state(&sys, &vars);
        let design =
            BusDesign::with_width(channels, width, ProtocolKind::FixedDelay { cycles: delay });
        let refined = ProtocolGenerator::new()
            .refine(&sys, &design)
            .expect("refinement");
        let measured = final_state(&refined.system, &vars);
        assert_eq!(golden, measured, "width {width} delay {delay}: {specs:?}");
    }
}

//! Rolled word loops (the paper's Fig. 4 form): equivalent behavior and
//! timing to the unrolled default, and loop-shaped printed output.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::Value;
use interface_synthesis::systems::fig3;
use interface_synthesis::systems::flc;
use interface_synthesis::vhdl::VhdlPrinter;

#[test]
fn rolled_send_prints_as_a_loop_like_fig4() {
    // CH0: 16-bit scalar write over an 8-bit bus — exactly the paper's
    // SendCH0 with its `for J in 1 to 2` loop.
    let f = fig3::fig3();
    let design = BusDesign::with_width(vec![f.ch0], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_rolled_word_loops()
        .refine(&f.system, &design)
        .unwrap();
    let text = VhdlPrinter::new().print_refined(&refined);
    let send = text
        .split("procedure Send_CH0")
        .nth(1)
        .and_then(|t| t.split("end Send_CH0").next())
        .expect("Send_CH0 printed");
    assert!(send.contains("for j in 0 to 1 loop"), "{send}");
    // The dynamic slice renders in the paper's `downto` style.
    assert!(send.contains("downto"), "{send}");
    // And only ONE START rise statement (inside the loop), not two.
    assert_eq!(send.matches("B_START <= '1'").count(), 1, "{send}");
}

#[test]
fn rolled_and_unrolled_agree_on_state_and_timing() {
    for width in [2u32, 4, 8] {
        // 16-bit messages: width divides the message for all three.
        let run = |rolled: bool| {
            let f = fig3::fig3();
            let design = BusDesign::with_width(vec![f.ch0], width, ProtocolKind::FullHandshake);
            let mut pg = ProtocolGenerator::new();
            if rolled {
                pg = pg.with_rolled_word_loops();
            }
            let refined = pg.refine(&f.system, &design).unwrap();
            let report = Simulator::new(&refined.system)
                .unwrap()
                .run_to_quiescence()
                .unwrap();
            let x = report.final_variable(f.x).clone();
            let p = refined.system.behavior_by_name("P").unwrap();
            (x, report.finish_time(p))
        };
        let (x_unrolled, t_unrolled) = run(false);
        let (x_rolled, t_rolled) = run(true);
        assert_eq!(x_unrolled, x_rolled, "state at width {width}");
        assert_eq!(t_unrolled, t_rolled, "timing at width {width}");
        assert_eq!(x_rolled.as_u64().unwrap(), 32);
    }
}

#[test]
fn heterogeneous_plans_fall_back_to_unrolled() {
    // CH2 carries 22 bits (16 data + 6 addr): 8 does not divide 22, so
    // the generator must keep the unrolled form — and still work.
    let f = fig3::fig3();
    let design = BusDesign::with_width(vec![f.ch2], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_rolled_word_loops()
        .refine(&f.system, &design)
        .unwrap();
    let text = VhdlPrinter::new().print_refined(&refined);
    let send = text
        .split("procedure Send_CH2")
        .nth(1)
        .and_then(|t| t.split("end Send_CH2").next())
        .expect("Send_CH2 printed");
    assert!(!send.contains("loop"), "expected unrolled words: {send}");
    assert_eq!(send.matches("B_START <= '1'").count(), 3); // ceil(22/8)
}

#[test]
fn rolled_flc_write_stream_is_cycle_exact() {
    // trru0 stream: 23 bits never divides evenly... use width 23? No:
    // 23 % 23 == 0 with a single word (not rolled). Use a 16-bit data
    // only channel shape via fig3's MEM? Instead check the FLC at width
    // 1 (divides everything): rolled, 46 words per message.
    let f = flc::flc();
    let design = BusDesign::with_width(vec![f.ch1], 1, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_rolled_word_loops()
        .refine(&f.system, &design)
        .unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    // 128 x (6 compute + 23 words x 2 clk) = 6656, the Fig. 7 value.
    assert_eq!(report.finish_time(f.eval_r3), Some(6656));
    match report.final_variable(f.trru0) {
        Value::Array(items) => {
            assert_eq!(items[127].as_i64().unwrap(), 3 * 127 + 1);
        }
        other => panic!("expected array, got {other}"),
    }
}

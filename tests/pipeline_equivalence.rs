//! Full-pipeline equivalence on the §5 case studies: the unpartitioned
//! specification, the partitioned (abstract-channel) system and the
//! refined (bus-protocol) system must all leave the memories in the
//! same final state.

use interface_synthesis::core::{BusGenerator, ProtocolGenerator};
use interface_synthesis::partition::Partitioner;
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::{System, Value};
use interface_synthesis::systems::answering_machine::answering_machine_unpartitioned;
use interface_synthesis::systems::ethernet::ethernet_unpartitioned;

fn final_of(sys: &System, names: &[&str]) -> Vec<Value> {
    let report = Simulator::new(sys)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("simulation");
    names
        .iter()
        .map(|n| {
            let v = sys.variable_by_name(n).unwrap_or_else(|| panic!("var {n}"));
            report.final_variable(v).clone()
        })
        .collect()
}

fn check_pipeline(
    unpartitioned: System,
    placements: &[(&str, &str)],
    variable_placements: &[(&str, &str)],
    memories: &[&str],
) {
    // Stage 0: the original single-module specification.
    let golden = final_of(&unpartitioned, memories);

    // Stage 1: partitioned, abstract channels.
    let mut partitioner = Partitioner::new();
    for (b, m) in placements {
        partitioner = partitioner.place_behavior(*b, *m);
    }
    for (v, m) in variable_placements {
        partitioner = partitioner.place_variable(*v, *m);
    }
    let partitioned = partitioner.partition(&unpartitioned).expect("partition");
    let abstract_state = final_of(&partitioned.system, memories);
    assert_eq!(golden, abstract_state, "partitioning changed behavior");

    // Stage 2: refined onto a generated bus.
    let groups = partitioned.channel_groups();
    assert_eq!(groups.len(), 1, "one chip-to-chip bus expected");
    let design = BusGenerator::new()
        .generate(&partitioned.system, &groups[0])
        .expect("bus generation");
    let refined = ProtocolGenerator::new()
        .refine(&partitioned.system, &design)
        .expect("protocol generation");
    let refined_state = final_of(&refined.system, memories);
    assert_eq!(golden, refined_state, "refinement changed behavior");
}

#[test]
fn answering_machine_pipeline_preserves_memories() {
    check_pipeline(
        answering_machine_unpartitioned(),
        &[
            ("CONTROLLER", "ctrl_chip"),
            ("PLAY_GREETING", "ctrl_chip"),
            ("RECORD_MSG", "ctrl_chip"),
        ],
        &[("GREETING", "mem_chip"), ("MESSAGES", "mem_chip")],
        &["GREETING", "MESSAGES", "MACHINE_STATUS"],
    );
}

#[test]
fn ethernet_pipeline_preserves_buffers() {
    check_pipeline(
        ethernet_unpartitioned(),
        &[
            ("RCV_UNIT", "mac_chip"),
            ("XMIT_UNIT", "mac_chip"),
            ("DMA_RCV", "mac_chip"),
            ("DMA_XMIT", "mac_chip"),
            ("EXEC_UNIT", "mac_chip"),
        ],
        &[("RCV_BUFFER", "buf_chip"), ("XMIT_BUFFER", "buf_chip")],
        &["RCV_BUFFER", "XMIT_BUFFER", "CSR"],
    );
}

#[test]
fn fig1_pipeline_preserves_memory_and_status() {
    use interface_synthesis::systems::fig1;
    check_pipeline(
        fig1::fig1_unpartitioned(),
        &[("A", "module1")],
        &[("MEM", "module2"), ("STATUS", "module2")],
        &["MEM", "STATUS", "IR", "ACCUM", "PC"],
    );
}

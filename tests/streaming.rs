//! Free-running producers over a generated bus: a repeating behavior
//! streams messages forever; the variable process serves indefinitely;
//! `run_until` samples the steady state.

use interface_synthesis::core::{BusDesign, ProtocolGenerator, ProtocolKind};
use interface_synthesis::sim::{SimConfig, Simulator};
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::{Channel, ChannelDirection, Stmt, System, Ty};

/// A repeating producer streaming one message per iteration, padded to
/// a fixed period.
fn streaming_system(period_pad: u64) -> (System, ifsyn_spec::ChannelId) {
    let mut sys = System::new("stream");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let reg = sys.add_variable("REG", Ty::Bits(16), store);
    let producer = sys.add_behavior("producer", m1);
    sys.behavior_mut(producer).repeats = true;
    let seq = sys.add_variable("seq", Ty::Int(16), producer);
    let ch = sys.add_channel(Channel {
        name: "stream".into(),
        accessor: producer,
        variable: reg,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 0,
        accesses: 1, // per iteration
    });
    sys.behavior_mut(producer).body = vec![
        assign_cost(var(seq), add(load(var(seq)), int_const(1, 16)), 0),
        send(ch, load(var(seq))),
        Stmt::compute(period_pad, "inter-message gap"),
    ];
    (sys, ch)
}

#[test]
fn repeating_producer_streams_through_the_refined_bus() {
    let (sys, ch) = streaming_system(6);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_until(1000)
        .unwrap();
    let producer = refined.system.behavior_by_name("producer").unwrap();
    // Period per iteration: 2 words x 2 clk + 6 pad = 10 clocks.
    let iterations = report.iterations(producer);
    assert!(
        (95..=100).contains(&iterations),
        "expected ~100 iterations in 1000 cycles, got {iterations}"
    );
    // The register holds the last delivered sequence number (close to
    // the iteration count; at most one message is in flight).
    let reg = refined.system.variable_by_name("REG").unwrap();
    let last = report.final_variable(reg).as_u64().unwrap();
    assert!(
        last as i64 >= iterations as i64 - 1,
        "REG={last}, iterations={iterations}"
    );
}

#[test]
fn streaming_utilization_matches_duty_cycle() {
    // 4 transfer clocks out of every 10-cycle period: ~40% utilization.
    let (sys, ch) = streaming_system(6);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::with_config(&refined.system, SimConfig::new().with_trace())
        .unwrap()
        .run_until(2000)
        .unwrap();
    let u = interface_synthesis::sim::analysis::handshake_bus_utilization(
        &report,
        &refined.system,
        refined.bus.start.unwrap(),
        2,
    );
    assert!((0.35..=0.45).contains(&u), "duty cycle ~0.4, got {u}");
}

#[test]
fn saturating_producer_reaches_full_utilization() {
    let (sys, ch) = streaming_system(0);
    let design = BusDesign::with_width(vec![ch], 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
    let report = Simulator::with_config(&refined.system, SimConfig::new().with_trace())
        .unwrap()
        .run_until(2000)
        .unwrap();
    let u = interface_synthesis::sim::analysis::handshake_bus_utilization(
        &report,
        &refined.system,
        refined.bus.start.unwrap(),
        2,
    );
    assert!(u > 0.95, "back-to-back streaming should saturate, got {u}");
}

//! Multi-bus refinement: an overloaded channel group split across
//! several buses transfers concurrently and stays functionally correct.

use interface_synthesis::core::{BusGenerator, ProtocolGenerator};
use interface_synthesis::sim::Simulator;
use interface_synthesis::spec::dsl::*;
use interface_synthesis::spec::{Channel, ChannelDirection, ChannelId, System, Ty, Value, VarId};

/// `n` saturating writers, each filling its own 16-entry array.
fn hot_system(n: usize) -> (System, Vec<ChannelId>, Vec<VarId>) {
    let mut sys = System::new("hot");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mut chans = Vec::new();
    let mut vars = Vec::new();
    for k in 0..n {
        let b = sys.add_behavior(format!("P{k}"), m1);
        let v = sys.add_variable(format!("V{k}"), Ty::array(Ty::Int(16), 16), store);
        let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: format!("hot{k}"),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 4,
            accesses: 16,
        });
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(15, 16),
            vec![send_at(
                ch,
                load(var(i)),
                add(
                    mul(load(var(i)), int_const(10, 16)),
                    int_const(k as i64, 16),
                ),
            )],
        )];
        chans.push(ch);
        vars.push(v);
    }
    (sys, chans, vars)
}

#[test]
fn split_group_refines_to_multiple_working_buses() {
    let (sys, chans, vars) = hot_system(3);
    let outcome = BusGenerator::new()
        .generate_with_split(&sys, &chans)
        .expect("splitting succeeds");
    assert!(outcome.bus_count() >= 2);

    let refined = ProtocolGenerator::new()
        .refine_all(&sys, &outcome.buses)
        .expect("multi-bus refinement");
    assert_eq!(refined.buses.len(), outcome.bus_count());
    assert!(refined.system.check().is_ok());

    // Distinct wire sets per bus.
    let names: Vec<&str> = refined
        .system
        .signals
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(names.contains(&"B0_START"));
    assert!(names.contains(&"B1_START"));

    let report = Simulator::new(&refined.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    for (k, &v) in vars.iter().enumerate() {
        match report.final_variable(v) {
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    assert_eq!(
                        item.as_i64().unwrap(),
                        10 * i as i64 + k as i64,
                        "V{k}[{i}]"
                    );
                }
            }
            other => panic!("expected array, got {other}"),
        }
    }
}

#[test]
fn separate_buses_transfer_concurrently() {
    // Two writers on two dedicated buses finish in (roughly) the time of
    // one writer; on one shared bus they serialise.
    let (sys, chans, _) = hot_system(2);
    let single = interface_synthesis::core::BusDesign::with_width(
        chans.clone(),
        16,
        interface_synthesis::core::ProtocolKind::FullHandshake,
    );
    let shared = ProtocolGenerator::new().refine(&sys, &single).unwrap();
    let shared_report = Simulator::new(&shared.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();

    let per_bus = vec![
        interface_synthesis::core::BusDesign::with_width(
            vec![chans[0]],
            16,
            interface_synthesis::core::ProtocolKind::FullHandshake,
        ),
        interface_synthesis::core::BusDesign::with_width(
            vec![chans[1]],
            16,
            interface_synthesis::core::ProtocolKind::FullHandshake,
        ),
    ];
    let multi = ProtocolGenerator::new().refine_all(&sys, &per_bus).unwrap();
    let multi_report = Simulator::new(&multi.system)
        .unwrap()
        .run_to_quiescence()
        .unwrap();

    let p0 = sys.behavior_by_name("P0").unwrap();
    let shared_t = shared_report.finish_time(p0).unwrap();
    let multi_t = multi_report.finish_time(p0).unwrap();
    assert!(
        multi_t < shared_t,
        "dedicated bus ({multi_t}) should beat shared bus ({shared_t})"
    );
}

#[test]
fn refine_all_rejects_empty_design_list() {
    let (sys, _, _) = hot_system(1);
    let err = ProtocolGenerator::new().refine_all(&sys, &[]).unwrap_err();
    assert!(matches!(
        err,
        interface_synthesis::core::CoreError::EmptyChannelGroup
    ));
}

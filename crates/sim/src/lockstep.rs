//! Lockstep convoy execution: many variant simulations through one
//! instruction dispatch stream.
//!
//! A sweep simulates N systems whose behaviors compiled to the *same*
//! bytecode (replicated clients, repeated measurements, data-variant
//! campaigns over one refined protocol). The scalar kernel re-fetches,
//! re-decodes and re-schedules that identical stream once per run.
//! [`LockstepSim`] instead forms **convoys**: groups of input systems
//! whose compiled [`Program`]s are block-for-block identical (shared
//! through a content-hash [`CodeCache`]) and whose declared shapes —
//! signal/variable types, behavior repeat flags, procedure signatures,
//! channel targets — match. A convoy executes with struct-of-arrays
//! state: *control* (program counters, frame stacks, scheduler heaps,
//! waiter lists, all counters) lives once per convoy, while *data*
//! (signal stores, variable stores, frame locals, register files) lives
//! once per lane. Fetch, decode, dispatch and every scheduler decision
//! then happen once per micro-op for all lanes, and only expression
//! evaluation and storage writes loop over lanes.
//!
//! Control flow is kept uniform by construction: at every decision point
//! (branch, wait satisfaction, signal-change detection, loop exit,
//! assertion) the verdict of the first live lane leads, and any lane
//! that disagrees — or raises a per-lane evaluation error — **peels**
//! out of the convoy and re-runs from time zero on the scalar
//! [`Simulator`]. Peeling is always sound (the peeled lane discards all
//! convoy state), so surviving lanes provably execute the exact
//! instruction/delta/timestep sequence their own scalar run would have,
//! and their [`SimReport`]s are identical field-for-field. Shared
//! terminal failures (timeout, delta overflow, zero-delay loop,
//! deadlock) abort the whole convoy to the scalar engine, which renders
//! the per-lane diagnosis.
//!
//! Lanes under a fault plan or with tracing enabled never convoy: fault
//! filtering and trace capture are per-lane observations of skipped
//! intermediate state.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use ifsyn_spec::{System, Ty, Value};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::eval::{coerce, EvalCtx};
use crate::exec::{self, CArg, CPath, CPathStep, CPlace, CRoot, ExprCode, RegFile};
use crate::kernel::{untyped_place_error, write_steps, Simulator};
use crate::process::{CodeRef, ResolvedPlace, Root, Status, Step, WaitKind};
use crate::program::{Code, CodeCache, Instr, Program, WaitSpec};
use crate::report::{BehaviorOutcome, SimReport};

/// How a [`LockstepSim`] run distributed its lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepStats {
    /// Multi-lane convoys formed.
    pub convoys: usize,
    /// Lanes of the largest convoy.
    pub max_lanes: usize,
    /// Lanes that ran to completion inside a convoy.
    pub lockstep_lanes: usize,
    /// Lanes that diverged from their convoy and re-ran scalar.
    pub peeled_lanes: usize,
    /// Lanes that never joined a convoy (singleton programs, fault
    /// plans, tracing) and ran scalar from the start.
    pub scalar_lanes: usize,
}

/// Batch front-end that groups systems into convoys and runs each
/// convoy in lockstep, falling back to the scalar [`Simulator`] for
/// singletons and divergent lanes.
///
/// Results come back in input order, one per system, and are identical
/// to what `Simulator::with_config(..).run_to_quiescence()` would
/// produce for each system individually.
#[derive(Debug, Default)]
pub struct LockstepSim;

impl LockstepSim {
    /// Runs every system to quiescence, convoying where possible.
    pub fn run(systems: &[System], config: &SimConfig) -> Vec<Result<SimReport, SimError>> {
        Self::run_with_stats(systems, config, None).0
    }

    /// [`LockstepSim::run`] sharing compiled blocks through `cache`.
    ///
    /// Convoy grouping relies on the cache to make identical blocks
    /// pointer-identical; passing one shared cache across calls also
    /// amortizes compilation the way [`crate::Simulator::with_config_cached`]
    /// does.
    pub fn run_cached(
        systems: &[System],
        config: &SimConfig,
        cache: &CodeCache,
    ) -> Vec<Result<SimReport, SimError>> {
        Self::run_with_stats(systems, config, Some(cache)).0
    }

    /// Runs every system, also reporting how lanes were distributed
    /// over convoys and scalar fallbacks.
    pub fn run_with_stats(
        systems: &[System],
        config: &SimConfig,
        cache: Option<&CodeCache>,
    ) -> (Vec<Result<SimReport, SimError>>, LockstepStats) {
        let local_cache = CodeCache::new();
        let cache = cache.unwrap_or(&local_cache);
        let mut stats = LockstepStats::default();
        let mut out: Vec<Option<Result<SimReport, SimError>>> =
            systems.iter().map(|_| None).collect();
        let mut scalar: Vec<usize> = Vec::new();
        // Fault injection and tracing observe per-lane intermediate
        // state the convoy scheduler skips over; those configs run
        // scalar wholesale.
        let eligible = config.fault_plan.is_empty() && !config.trace;
        struct Group {
            rep: usize,
            program: Program,
            lanes: Vec<usize>,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (i, sys) in systems.iter().enumerate() {
            if let Err(e) = sys.check() {
                out[i] = Some(Err(SimError::InvalidSystem {
                    message: e.to_string(),
                }));
                continue;
            }
            if !eligible {
                scalar.push(i);
                continue;
            }
            let program = Program::compile_cached(sys, &config.cost_model, Some(cache));
            match groups
                .iter_mut()
                .find(|g| program_eq(&g.program, &program) && shape_eq(&systems[g.rep], sys))
            {
                Some(g) => g.lanes.push(i),
                None => groups.push(Group {
                    rep: i,
                    program,
                    lanes: vec![i],
                }),
            }
        }
        for g in &groups {
            if g.lanes.len() < 2 {
                scalar.extend_from_slice(&g.lanes);
                continue;
            }
            stats.convoys += 1;
            stats.max_lanes = stats.max_lanes.max(g.lanes.len());
            // Value-class collapse: lanes whose initial state is also
            // identical can never diverge (shared control, deterministic
            // data), so each class runs as one physical lane and every
            // member receives the same report. A width sweep that
            // re-simulates the same refined system N times does the
            // per-lane data work once; genuinely distinct variants keep
            // one physical lane per class and execute in lockstep.
            let mut classes: Vec<Vec<usize>> = Vec::new();
            for &lane in &g.lanes {
                match classes
                    .iter_mut()
                    .find(|c| state_eq(&systems[c[0]], &systems[lane]))
                {
                    Some(c) => c.push(lane),
                    None => classes.push(vec![lane]),
                }
            }
            let reps: Vec<usize> = classes.iter().map(|c| c[0]).collect();
            let convoy = Convoy::new(systems, &reps, &g.program, config);
            let (done, fallback) = convoy.run();
            let members = |rep: usize| -> &[usize] {
                classes
                    .iter()
                    .find(|c| c[0] == rep)
                    .expect("class rep")
                    .as_slice()
            };
            for (slot, report) in done {
                let class = members(slot);
                stats.lockstep_lanes += class.len();
                for &lane in class {
                    out[lane] = Some(Ok(report.clone()));
                }
            }
            for slot in fallback {
                let class = members(slot);
                stats.peeled_lanes += class.len();
                scalar.extend_from_slice(class);
            }
        }
        stats.scalar_lanes = scalar.len().saturating_sub(stats.peeled_lanes);
        for i in scalar {
            out[i] = Some(
                Simulator::with_config_cached(&systems[i], config.clone(), Some(cache))
                    .and_then(|s| s.run_to_quiescence()),
            );
        }
        (
            out.into_iter()
                .map(|r| r.expect("every lane resolved"))
                .collect(),
            stats,
        )
    }
}

/// Block-for-block program identity. The shared [`CodeCache`] makes
/// identical compilations pointer-equal, so this is a pointer scan with
/// a deep-equality fallback for blocks built outside the cache.
fn program_eq(a: &Program, b: &Program) -> bool {
    fn blocks_eq(a: &[Arc<Code>], b: &[Arc<Code>]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| Arc::ptr_eq(x, y) || x == y)
    }
    blocks_eq(&a.behaviors, &b.behaviors) && blocks_eq(&a.procedures, &b.procedures)
}

/// Declared-shape compatibility: everything the convoy engine reads
/// from the *representative* system on behalf of all lanes must be
/// identical across lanes. Names and initial values may differ (they
/// are per-lane data); types, repeat flags, signatures and channel
/// wiring may not.
fn shape_eq(a: &System, b: &System) -> bool {
    a.signals.len() == b.signals.len()
        && a.signals.iter().zip(&b.signals).all(|(x, y)| x.ty == y.ty)
        && a.variables.len() == b.variables.len()
        && a.variables
            .iter()
            .zip(&b.variables)
            .all(|(x, y)| x.ty == y.ty)
        && a.behaviors.len() == b.behaviors.len()
        && a.behaviors
            .iter()
            .zip(&b.behaviors)
            .all(|(x, y)| x.repeats == y.repeats)
        && a.procedures.len() == b.procedures.len()
        && a.procedures.iter().zip(&b.procedures).all(|(x, y)| {
            x.params.len() == y.params.len()
                && x.params
                    .iter()
                    .zip(&y.params)
                    .all(|(p, q)| p.mode == q.mode && p.ty == q.ty)
                && x.locals.len() == y.locals.len()
                && x.locals.iter().zip(&y.locals).all(|(p, q)| p.ty == q.ty)
        })
        && a.channels.len() == b.channels.len()
        && a.channels
            .iter()
            .zip(&b.channels)
            .all(|(x, y)| x.variable == y.variable)
}

/// Initial-state identity between two shape-equal systems: every signal
/// and variable starts from the same value. Two such lanes execute the
/// same deterministic program from the same state, so their entire
/// simulations — reports included — are identical; the convoy collapses
/// them onto one physical lane.
fn state_eq(a: &System, b: &System) -> bool {
    a.signals
        .iter()
        .zip(&b.signals)
        .all(|(x, y)| x.initial_value() == y.initial_value())
        && a.variables
            .iter()
            .zip(&b.variables)
            .all(|(x, y)| x.initial_value() == y.initial_value())
}

/// A signal value scheduled for all lanes of a convoy at once.
///
/// Generated handshake traffic drives pool constants, which are
/// identical across lanes — one shared value covers the whole convoy.
/// Computed writes carry one value per lane (indexed by lane slot;
/// peeled lanes keep a placeholder).
#[derive(Debug, Clone)]
enum LaneVals {
    Uniform(Value),
    PerLane(Box<[Value]>),
}

impl LaneVals {
    fn get(&self, lane: usize) -> &Value {
        match self {
            LaneVals::Uniform(v) => v,
            LaneVals::PerLane(vs) => &vs[lane],
        }
    }
}

/// A scheduled future write for the whole convoy; ordered like the
/// scalar kernel's `TimedWrite`, by `(time, seq)`.
#[derive(Debug)]
struct CTimedWrite {
    time: u64,
    seq: u64,
    signal: usize,
    value: LaneVals,
    forced: bool,
}

impl PartialEq for CTimedWrite {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for CTimedWrite {}

impl PartialOrd for CTimedWrite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CTimedWrite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Shared control state of one process: everything the scalar kernel's
/// `Process` holds except the value storage inside its frames.
#[derive(Debug)]
struct CtlProcess {
    behavior: usize,
    frames: Vec<CtlFrame>,
    status: Status,
    registered: Vec<usize>,
    wait_gen: u64,
    finish_time: Option<u64>,
    iterations: u64,
    active_cycles: u64,
    instrs_executed: u64,
}

/// Shared part of a call frame: which block, and where in it.
#[derive(Debug, Clone, Copy)]
struct CtlFrame {
    code: CodeRef,
    pc: usize,
}

/// Per-lane part of a call frame: parameter/local storage, loop bounds
/// (bounds evaluate per lane) and resolved copy-back destinations
/// (indices evaluate per lane).
#[derive(Debug, Default)]
struct LaneFrame {
    locals: Vec<Value>,
    loop_bounds: Vec<i64>,
    copyback: Vec<(usize, ResolvedPlace, Ty)>,
}

/// Per-lane data state: the struct-of-arrays side of the convoy.
#[derive(Debug)]
struct LaneState {
    signals: Vec<Value>,
    vars: Vec<Value>,
    /// Frame stacks per process, depth-aligned with the shared
    /// `CtlProcess::frames` stacks while the lane is live.
    frames: Vec<Vec<LaneFrame>>,
    regs: RegFile,
}

/// The whole convoy must fall back to per-lane scalar runs: either a
/// shared terminal condition was reached (timeout, overflow, deadlock,
/// failed leader assertion) or every lane peeled.
struct Abort;

/// Evaluates compiled code against one lane's storage, in the top frame
/// of process `pid` — the lockstep analogue of the kernel's
/// `eval_split`.
fn lane_eval<'s>(
    lane: &'s mut LaneState,
    pid: usize,
    code: &'s ExprCode,
) -> Result<&'s Value, SimError> {
    let LaneState {
        signals,
        vars,
        frames,
        regs,
    } = lane;
    let locals = match frames[pid].last() {
        Some(f) => &f.locals[..],
        None => &[],
    };
    let ctx = EvalCtx {
        vars,
        signals,
        locals,
    };
    exec::eval_code(&ctx, code, regs)
}

fn eval_err(e: ifsyn_spec::SpecError) -> SimError {
    SimError::eval(e.to_string())
}

/// One convoy: shared control, per-lane data, and the peel machinery.
struct Convoy<'a> {
    /// Representative system for every type/shape lookup (shape-checked
    /// equal across lanes).
    rep: &'a System,
    /// Per lane: its own system, for report names and initial values.
    lane_systems: Vec<&'a System>,
    /// Per lane: index into the caller's output vector.
    lane_out: Vec<usize>,
    config: &'a SimConfig,
    behavior_code: Vec<Option<Arc<Code>>>,
    procedure_code: Vec<Option<Arc<Code>>>,
    /// Lanes still executing in lockstep, in input order (the first
    /// entry is the leader at every decision).
    live: Vec<usize>,
    /// Lanes that diverged; re-run scalar from time zero by the caller.
    peeled: Vec<usize>,
    lanes: Vec<LaneState>,
    procs: Vec<CtlProcess>,
    time: u64,
    ready: VecDeque<usize>,
    pending: Vec<(usize, LaneVals, bool)>,
    timed_writes: BinaryHeap<Reverse<CTimedWrite>>,
    sleepers: BinaryHeap<Reverse<(u64, u64, usize)>>,
    wait_timeouts: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    event_seq: u64,
    waiters: Vec<Vec<usize>>,
    reg_epoch: u64,
    sig_mark: Vec<u64>,
    last_write: Vec<usize>,
    changed: Vec<usize>,
    /// Scratch: per-live-lane decision verdicts (`None` = lane error).
    verdicts: Vec<Option<bool>>,
    signal_events: Vec<u64>,
    total_deltas: u64,
    total_instrs: u64,
    assertions_checked: u64,
    heap_peak: usize,
    time_steps: u64,
}

impl<'a> Convoy<'a> {
    fn new(
        systems: &'a [System],
        lane_slots: &[usize],
        program: &Program,
        config: &'a SimConfig,
    ) -> Self {
        let rep = &systems[lane_slots[0]];
        let max_regs = program
            .behaviors
            .iter()
            .chain(&program.procedures)
            .map(|c| c.max_regs)
            .max()
            .unwrap_or(0);
        let lanes: Vec<LaneState> = lane_slots
            .iter()
            .map(|&slot| {
                let sys = &systems[slot];
                LaneState {
                    signals: sys.signals.iter().map(|s| s.initial_value()).collect(),
                    vars: sys.variables.iter().map(|v| v.initial_value()).collect(),
                    frames: (0..sys.behaviors.len())
                        .map(|_| vec![LaneFrame::default()])
                        .collect(),
                    regs: RegFile::with_capacity(max_regs as usize),
                }
            })
            .collect();
        let procs: Vec<CtlProcess> = (0..rep.behaviors.len())
            .map(|b| CtlProcess {
                behavior: b,
                frames: vec![CtlFrame {
                    code: CodeRef::Behavior(b),
                    pc: 0,
                }],
                status: Status::Ready,
                registered: Vec::new(),
                wait_gen: 0,
                finish_time: None,
                iterations: 0,
                active_cycles: 0,
                instrs_executed: 0,
            })
            .collect();
        let n_signals = rep.signals.len();
        Self {
            rep,
            lane_systems: lane_slots.iter().map(|&s| &systems[s]).collect(),
            lane_out: lane_slots.to_vec(),
            config,
            behavior_code: program.behaviors.iter().cloned().map(Some).collect(),
            procedure_code: program.procedures.iter().cloned().map(Some).collect(),
            live: (0..lane_slots.len()).collect(),
            peeled: Vec::new(),
            lanes,
            ready: (0..procs.len()).collect(),
            procs,
            time: 0,
            pending: Vec::new(),
            timed_writes: BinaryHeap::new(),
            sleepers: BinaryHeap::new(),
            wait_timeouts: BinaryHeap::new(),
            event_seq: 0,
            waiters: vec![Vec::new(); n_signals],
            reg_epoch: 0,
            sig_mark: vec![0; n_signals],
            last_write: vec![usize::MAX; n_signals],
            changed: Vec::new(),
            verdicts: Vec::new(),
            signal_events: vec![0; n_signals],
            total_deltas: 0,
            total_instrs: 0,
            assertions_checked: 0,
            heap_peak: 0,
            time_steps: 0,
        }
    }

    /// Runs the convoy to quiescence. Returns the reports of lanes that
    /// finished in lockstep, plus the output slots that must re-run on
    /// the scalar engine (peeled lanes, or every lane on abort).
    fn run(mut self) -> (Vec<(usize, SimReport)>, Vec<usize>) {
        match self.run_events() {
            Ok(()) => {
                if self.config.fail_on_deadlock {
                    let stuck = self.procs.iter().any(|p| {
                        matches!(p.status, Status::Waiting(_))
                            && !self.rep.behaviors[p.behavior].repeats
                    });
                    if stuck {
                        // The deadlock diagnosis reads per-lane observed
                        // values; let the scalar engine render it.
                        return (Vec::new(), self.lane_out);
                    }
                }
                let done: Vec<(usize, SimReport)> = self
                    .live
                    .iter()
                    .map(|&l| (self.lane_out[l], self.lane_report(l)))
                    .collect();
                let fallback = self.peeled.iter().map(|&l| self.lane_out[l]).collect();
                (done, fallback)
            }
            Err(Abort) => (Vec::new(), self.lane_out),
        }
    }

    /// Removes the live lane at position `pos`, queueing it for a
    /// scalar re-run. Always sound: the lane discards every piece of
    /// convoy state and restarts from time zero.
    fn peel_at(&mut self, pos: usize) {
        let l = self.live.remove(pos);
        self.peeled.push(l);
    }

    fn ensure_live(&self) -> Result<(), Abort> {
        if self.live.is_empty() {
            Err(Abort)
        } else {
            Ok(())
        }
    }

    /// Resolves one control decision from per-lane verdicts (parallel
    /// to `self.live`): the first lane with a successful verdict leads,
    /// lanes that disagree or errored peel.
    fn decide(&mut self, verdicts: &[Option<bool>]) -> Result<bool, Abort> {
        debug_assert_eq!(verdicts.len(), self.live.len());
        let Some(lead) = verdicts.iter().copied().flatten().next() else {
            return Err(Abort);
        };
        if verdicts.iter().any(|v| *v != Some(lead)) {
            let old = std::mem::take(&mut self.live);
            for (pos, l) in old.into_iter().enumerate() {
                if verdicts[pos] == Some(lead) {
                    self.live.push(l);
                } else {
                    self.peeled.push(l);
                }
            }
        }
        Ok(lead)
    }

    /// Evaluates a boolean decision per lane and resolves it with
    /// [`Convoy::decide`].
    fn verdict_bool(&mut self, pid: usize, code: &ExprCode) -> Result<bool, Abort> {
        let mut verdicts = std::mem::take(&mut self.verdicts);
        verdicts.clear();
        for &l in &self.live {
            let v = match lane_eval(&mut self.lanes[l], pid, code) {
                Ok(v) => v.as_bool().ok(),
                Err(_) => None,
            };
            verdicts.push(v);
        }
        let out = self.decide(&verdicts);
        self.verdicts = verdicts;
        out
    }

    /// The main event loop, mirroring the scalar kernel's `run_events`
    /// in quiescence mode (no deadline, no fault injections).
    fn run_events(&mut self) -> Result<(), Abort> {
        loop {
            self.settle_instant()?;
            let next_write = self.timed_writes.peek().map(|Reverse(w)| w.time);
            let next_sleep = self.sleepers.peek().map(|&Reverse((t, _, _))| t);
            let next_timeout = self.next_live_wait_timeout();
            let next = [next_write, next_sleep, next_timeout]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else { break };
            if next > self.config.max_time {
                // Timeout: the error carries a per-lane diagnosis.
                return Err(Abort);
            }
            self.time = next;
            self.time_steps += 1;
            while self
                .timed_writes
                .peek()
                .is_some_and(|Reverse(w)| w.time == next)
            {
                let Reverse(w) = self.timed_writes.pop().expect("peeked");
                self.pending.push((w.signal, w.value, w.forced));
            }
            while self
                .sleepers
                .peek()
                .is_some_and(|&Reverse((t, _, _))| t == next)
            {
                let Reverse((_, _, pid)) = self.sleepers.pop().expect("peeked");
                if matches!(self.procs[pid].status, Status::Sleeping) {
                    self.procs[pid].status = Status::Ready;
                    self.ready.push_back(pid);
                }
            }
            while self
                .wait_timeouts
                .peek()
                .is_some_and(|&Reverse((t, _, _, _))| t == next)
            {
                let Reverse((_, _, pid, gen)) = self.wait_timeouts.pop().expect("peeked");
                let p = &self.procs[pid];
                if matches!(p.status, Status::Waiting(_)) && p.wait_gen == gen {
                    self.make_ready(pid);
                }
            }
        }
        Ok(())
    }

    fn next_live_wait_timeout(&mut self) -> Option<u64> {
        while let Some(&Reverse((t, _, pid, gen))) = self.wait_timeouts.peek() {
            let p = &self.procs[pid];
            if matches!(p.status, Status::Waiting(_)) && p.wait_gen == gen {
                return Some(t);
            }
            self.wait_timeouts.pop();
        }
        None
    }

    fn settle_instant(&mut self) -> Result<(), Abort> {
        let mut deltas = 0u32;
        loop {
            if !self.pending.is_empty() {
                self.apply_pending()?;
                self.wake_on()?;
                deltas += 1;
                self.total_deltas += 1;
                if deltas > self.config.max_deltas_per_instant {
                    // Delta overflow is shared by construction.
                    return Err(Abort);
                }
            }
            if self.ready.is_empty() {
                if self.pending.is_empty() {
                    return Ok(());
                }
                continue;
            }
            while let Some(pid) = self.ready.pop_front() {
                if matches!(self.procs[pid].status, Status::Ready) {
                    self.run_process(pid)?;
                }
            }
        }
    }

    fn apply_pending(&mut self) -> Result<(), Abort> {
        self.changed.clear();
        if self.pending.len() == 1 {
            let (sig, value, forced) = self.pending.pop().expect("len checked");
            return self.apply_one(sig, value, forced);
        }
        let mut pending = std::mem::take(&mut self.pending);
        for (i, (sig, _, _)) in pending.iter().enumerate() {
            self.last_write[*sig] = i;
        }
        let mut result = Ok(());
        for (i, entry) in pending.iter_mut().enumerate() {
            let sig = entry.0;
            if self.last_write[sig] != i {
                continue;
            }
            self.last_write[sig] = usize::MAX;
            let value = std::mem::replace(&mut entry.1, LaneVals::Uniform(Value::Bit(false)));
            let forced = entry.2;
            if result.is_ok() {
                result = self.apply_one(sig, value, forced);
            }
        }
        pending.clear();
        self.pending = pending;
        result
    }

    /// Applies one winning write per lane. Whether the signal *changed*
    /// is a control decision: lanes disagreeing with the leader peel.
    fn apply_one(&mut self, sig: usize, value: LaneVals, _forced: bool) -> Result<(), Abort> {
        let mut verdicts = std::mem::take(&mut self.verdicts);
        verdicts.clear();
        for &l in &self.live {
            verdicts.push(Some(self.lanes[l].signals[sig] != *value.get(l)));
        }
        let changed = self.decide(&verdicts);
        self.verdicts = verdicts;
        if changed? {
            match value {
                LaneVals::Uniform(v) => {
                    for &l in &self.live {
                        self.lanes[l].signals[sig].clone_from(&v);
                    }
                }
                LaneVals::PerLane(mut vs) => {
                    for &l in &self.live {
                        self.lanes[l].signals[sig] =
                            std::mem::replace(&mut vs[l], Value::Bit(false));
                    }
                }
            }
            self.signal_events[sig] += 1;
            self.changed.push(sig);
        }
        Ok(())
    }

    fn wake_on(&mut self) -> Result<(), Abort> {
        for ci in 0..self.changed.len() {
            let sig = self.changed[ci];
            let mut i = 0;
            while i < self.waiters[sig].len() {
                let pid = self.waiters[sig][i];
                // Uniform wait kinds resolve without touching lanes;
                // `until` conditions evaluate per lane and decide.
                let mut verdicts = std::mem::take(&mut self.verdicts);
                verdicts.clear();
                let uniform: Option<bool> = match &self.procs[pid].status {
                    Status::Waiting(WaitKind::Signals) => Some(true),
                    Status::Waiting(WaitKind::Until(cond)) => {
                        let code = &cond.code;
                        for &l in &self.live {
                            let v = match lane_eval(&mut self.lanes[l], pid, code) {
                                Ok(v) => v.as_bool().ok(),
                                Err(_) => None,
                            };
                            verdicts.push(v);
                        }
                        None
                    }
                    Status::Waiting(WaitKind::SignalIs(idx, v)) => {
                        let idx = *idx;
                        // The compare constant comes from the shared
                        // pool; the observed signal is per lane.
                        for &l in &self.live {
                            verdicts.push(Some(self.lanes[l].signals[idx] == *v));
                        }
                        None
                    }
                    _ => Some(false),
                };
                let sat = match uniform {
                    Some(b) => {
                        self.verdicts = verdicts;
                        b
                    }
                    None => {
                        let out = self.decide(&verdicts);
                        self.verdicts = verdicts;
                        out?
                    }
                };
                if sat {
                    self.make_ready(pid);
                } else {
                    i += 1;
                }
            }
        }
        Ok(())
    }

    fn make_ready(&mut self, pid: usize) {
        let mut registered = std::mem::take(&mut self.procs[pid].registered);
        for &sig in &registered {
            if let Some(pos) = self.waiters[sig].iter().position(|&p| p == pid) {
                self.waiters[sig].swap_remove(pos);
            }
        }
        registered.clear();
        self.procs[pid].registered = registered;
        self.procs[pid].status = Status::Ready;
        self.ready.push_back(pid);
    }

    fn sleep_until(&mut self, pid: usize, until: u64) {
        self.procs[pid].status = Status::Sleeping;
        self.sleepers.push(Reverse((until, self.event_seq, pid)));
        self.event_seq += 1;
        self.note_heap_size();
    }

    fn schedule_write(&mut self, time: u64, signal: usize, value: LaneVals, forced: bool) {
        self.timed_writes.push(Reverse(CTimedWrite {
            time,
            seq: self.event_seq,
            signal,
            value,
            forced,
        }));
        self.event_seq += 1;
        self.note_heap_size();
    }

    fn note_heap_size(&mut self) {
        let size = self.timed_writes.len() + self.sleepers.len();
        if size > self.heap_peak {
            self.heap_peak = size;
        }
    }

    fn register_wait(&mut self, pid: usize, kind: WaitKind, sensitivity: &[ifsyn_spec::SignalId]) {
        self.procs[pid].wait_gen += 1;
        self.reg_epoch += 1;
        let epoch = self.reg_epoch;
        let mut registered = std::mem::take(&mut self.procs[pid].registered);
        registered.clear();
        for s in sensitivity {
            let idx = s.index();
            if self.sig_mark[idx] != epoch {
                self.sig_mark[idx] = epoch;
                self.waiters[idx].push(pid);
                registered.push(idx);
            }
        }
        self.procs[pid].registered = registered;
        self.procs[pid].status = Status::Waiting(kind);
    }

    fn register_wait_one(&mut self, pid: usize, kind: WaitKind, idx: usize) {
        self.procs[pid].wait_gen += 1;
        self.waiters[idx].push(pid);
        let registered = &mut self.procs[pid].registered;
        registered.clear();
        registered.push(idx);
        self.procs[pid].status = Status::Waiting(kind);
    }

    fn arm_watchdog(&mut self, pid: usize, deadline: u64) {
        let gen = self.procs[pid].wait_gen;
        self.wait_timeouts
            .push(Reverse((deadline, self.event_seq, pid, gen)));
        self.event_seq += 1;
    }

    /// Mirrors the scalar kernel's `try_fast_advance`: jump simulated
    /// time to `wake` when nothing can observe the skipped interval.
    fn try_fast_advance(&mut self, wake: u64) -> Result<bool, Abort> {
        if !self.ready.is_empty() {
            return Ok(false);
        }
        if wake > self.config.max_time {
            return Ok(false);
        }
        if !self.pending.is_empty() {
            self.apply_pending()?;
            self.wake_on()?;
            self.total_deltas += 1;
            if !self.ready.is_empty() {
                return Ok(false);
            }
        }
        let next_write = self.timed_writes.peek().map(|Reverse(w)| w.time);
        let next_sleep = self.sleepers.peek().map(|&Reverse((t, _, _))| t);
        let next_timeout = self.next_live_wait_timeout();
        if next_write.is_some_and(|t| t <= wake)
            || next_sleep.is_some_and(|t| t <= wake)
            || next_timeout.is_some_and(|t| t <= wake)
        {
            return Ok(false);
        }
        self.time = wake;
        self.time_steps += 1;
        Ok(true)
    }

    fn try_fast_advance_write(
        &mut self,
        wake: u64,
        signal: usize,
        value: LaneVals,
    ) -> Result<Option<LaneVals>, Abort> {
        if !self.try_fast_advance(wake)? {
            return Ok(Some(value));
        }
        self.pending.push((signal, value, false));
        self.apply_pending()?;
        self.wake_on()?;
        self.total_deltas += 1;
        Ok(None)
    }

    fn store_pc(&mut self, pid: usize, pc: usize) {
        self.procs[pid].frames.last_mut().expect("frame").pc = pc;
    }

    fn run_process(&mut self, pid: usize) -> Result<(), Abort> {
        let mut steps = 0u64;
        let result = self.run_steps(pid, &mut steps);
        self.total_instrs += steps;
        self.procs[pid].instrs_executed += steps;
        result
    }

    /// The interpreter loop — a structural port of the scalar kernel's
    /// `run_steps` with dispatch shared across lanes. Per-lane work is
    /// confined to expression evaluation and storage writes.
    fn run_steps(&mut self, pid: usize, steps: &mut u64) -> Result<(), Abort> {
        let (mut code_ref, mut pc) = {
            let frame = self.procs[pid].frames.last().expect("frame");
            (frame.code, frame.pc)
        };
        let mut block = self.take_block(code_ref);
        let mut instant_steps = 0u64;
        loop {
            *steps += 1;
            instant_steps += 1;
            if instant_steps > self.config.max_steps_per_activation {
                // Zero-delay loop: shared control, so every lane hits it.
                return Err(Abort);
            }
            let instr = &block.instrs[pc];
            match instr {
                Instr::Assign { place, value, cost } => {
                    match value.const_value() {
                        Some(c) => {
                            let mut i = 0;
                            while i < self.live.len() {
                                let l = self.live[i];
                                match self.lane_write_cplace(l, pid, place, c.clone()) {
                                    Ok(()) => i += 1,
                                    Err(_) => self.peel_at(i),
                                }
                            }
                        }
                        None => {
                            let mut i = 0;
                            while i < self.live.len() {
                                let l = self.live[i];
                                let v = match lane_eval(&mut self.lanes[l], pid, value) {
                                    Ok(v) => v.clone(),
                                    Err(_) => {
                                        self.peel_at(i);
                                        continue;
                                    }
                                };
                                match self.lane_write_cplace(l, pid, place, v) {
                                    Ok(()) => i += 1,
                                    Err(_) => self.peel_at(i),
                                }
                            }
                        }
                    }
                    self.ensure_live()?;
                    pc += 1;
                    if *cost > 0 {
                        self.procs[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost,
                } => {
                    let v = match value.const_value() {
                        // Pre-coerced pool constant: one shared value
                        // drives every lane.
                        Some(c) => LaneVals::Uniform(c.clone()),
                        None => {
                            let ty = &self.rep.signal(*signal).ty;
                            let mut vals =
                                vec![Value::Bit(false); self.lanes.len()].into_boxed_slice();
                            let mut i = 0;
                            while i < self.live.len() {
                                let l = self.live[i];
                                match lane_eval(&mut self.lanes[l], pid, value) {
                                    Ok(raw) => {
                                        vals[l] = coerce(raw.clone(), ty);
                                        i += 1;
                                    }
                                    Err(_) => self.peel_at(i),
                                }
                            }
                            self.ensure_live()?;
                            LaneVals::PerLane(vals)
                        }
                    };
                    pc += 1;
                    if *cost == 0 {
                        self.pending.push((signal.index(), v, false));
                    } else {
                        self.procs[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        match self.try_fast_advance_write(wake, signal.index(), v)? {
                            None => instant_steps = 0,
                            Some(v) => {
                                self.schedule_write(wake, signal.index(), v, false);
                                self.store_pc(pid, pc);
                                self.sleep_until(pid, wake);
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfNot { cond, target } => {
                    if self.verdict_bool(pid, cond)? {
                        pc += 1;
                    } else {
                        pc = *target;
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let mut i = 0;
                    while i < self.live.len() {
                        let l = self.live[i];
                        let bound = match lane_eval(&mut self.lanes[l], pid, to)
                            .and_then(|v| v.as_i64().map_err(eval_err))
                        {
                            Ok(b) => b,
                            Err(_) => {
                                self.peel_at(i);
                                continue;
                            }
                        };
                        let start = match lane_eval(&mut self.lanes[l], pid, from) {
                            Ok(v) => v.clone(),
                            Err(_) => {
                                self.peel_at(i);
                                continue;
                            }
                        };
                        if self.lane_write_cplace(l, pid, var, start).is_err() {
                            self.peel_at(i);
                            continue;
                        }
                        self.lanes[l].frames[pid]
                            .last_mut()
                            .expect("frame")
                            .loop_bounds
                            .push(bound);
                        i += 1;
                    }
                    self.ensure_live()?;
                    pc += 1;
                }
                Instr::LoopTest { var, exit } => {
                    let done = self.loop_verdict(pid, var, false)?;
                    if done {
                        for &l in &self.live {
                            self.lanes[l].frames[pid]
                                .last_mut()
                                .expect("frame")
                                .loop_bounds
                                .pop();
                        }
                        pc = *exit;
                    } else {
                        pc += 1;
                    }
                }
                Instr::LoopIncr { var, body, exit } => {
                    let done = self.loop_verdict(pid, var, true)?;
                    if done {
                        for &l in &self.live {
                            self.lanes[l].frames[pid]
                                .last_mut()
                                .expect("frame")
                                .loop_bounds
                                .pop();
                        }
                        pc = *exit;
                    } else {
                        pc = *body;
                    }
                }
                Instr::Wait(cond) => {
                    pc += 1;
                    match cond {
                        WaitSpec::ForCycles(n) => {
                            if *n > 0 {
                                let wake = self.time + n;
                                if self.try_fast_advance(wake)? {
                                    instant_steps = 0;
                                } else {
                                    self.store_pc(pid, pc);
                                    self.sleep_until(pid, wake);
                                    self.put_block(code_ref, block);
                                    return Ok(());
                                }
                            }
                        }
                        WaitSpec::OnSignals(signals) => {
                            self.store_pc(pid, pc);
                            self.register_wait(pid, WaitKind::Signals, signals);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                        WaitSpec::Until(cond) => {
                            let sat = self.verdict_bool(pid, &cond.code)?;
                            if !sat {
                                self.store_pc(pid, pc);
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(Arc::clone(cond)),
                                    &cond.sensitivity,
                                );
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIs { signal, value } => {
                            if !self.signal_is_verdict(signal.index(), value)? {
                                self.store_pc(pid, pc);
                                self.register_wait_one(
                                    pid,
                                    WaitKind::SignalIs(signal.index(), value.clone()),
                                    signal.index(),
                                );
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilTimeout { cond, cycles } => {
                            let sat = self.verdict_bool(pid, &cond.code)?;
                            if !sat {
                                let deadline = self.time + cycles;
                                self.store_pc(pid, pc);
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(Arc::clone(cond)),
                                    &cond.sensitivity,
                                );
                                self.arm_watchdog(pid, deadline);
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIsTimeout {
                            signal,
                            value,
                            cycles,
                        } => {
                            if !self.signal_is_verdict(signal.index(), value)? {
                                let deadline = self.time + cycles;
                                self.store_pc(pid, pc);
                                self.register_wait_one(
                                    pid,
                                    WaitKind::SignalIs(signal.index(), value.clone()),
                                    signal.index(),
                                );
                                self.arm_watchdog(pid, deadline);
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Call { procedure, args } => {
                    let procedure = *procedure;
                    self.store_pc(pid, pc + 1);
                    self.enter_procedure(pid, procedure, args)?;
                    self.put_block(code_ref, block);
                    code_ref = CodeRef::Procedure(procedure);
                    block = self.take_block(code_ref);
                    pc = 0;
                }
                Instr::Ret => {
                    if self.leave_frame(pid)? {
                        self.put_block(code_ref, block);
                        return Ok(());
                    }
                    let (new_code, new_pc) = {
                        let frame = self.procs[pid].frames.last().expect("frame");
                        (frame.code, frame.pc)
                    };
                    if new_code != code_ref {
                        self.put_block(code_ref, block);
                        block = self.take_block(new_code);
                        code_ref = new_code;
                    }
                    pc = new_pc;
                }
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost,
                } => {
                    let mut i = 0;
                    while i < self.live.len() {
                        let l = self.live[i];
                        let data_v = match lane_eval(&mut self.lanes[l], pid, data) {
                            Ok(v) => v.clone(),
                            Err(_) => {
                                self.peel_at(i);
                                continue;
                            }
                        };
                        let addr_v = match addr {
                            Some(a) => match lane_eval(&mut self.lanes[l], pid, a)
                                .and_then(|v| v.as_i64().map_err(eval_err))
                            {
                                Ok(v) => Some(v),
                                Err(_) => {
                                    self.peel_at(i);
                                    continue;
                                }
                            },
                            None => None,
                        };
                        match self.lane_channel_write(l, *channel, addr_v, data_v) {
                            Ok(()) => i += 1,
                            Err(_) => self.peel_at(i),
                        }
                    }
                    self.ensure_live()?;
                    pc += 1;
                    if *cost > 0 {
                        self.procs[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost,
                } => {
                    let mut i = 0;
                    while i < self.live.len() {
                        let l = self.live[i];
                        let addr_v = match addr {
                            Some(a) => match lane_eval(&mut self.lanes[l], pid, a)
                                .and_then(|v| v.as_i64().map_err(eval_err))
                            {
                                Ok(v) => Some(v),
                                Err(_) => {
                                    self.peel_at(i);
                                    continue;
                                }
                            },
                            None => None,
                        };
                        let v = match self.lane_channel_read(l, *channel, addr_v) {
                            Ok(v) => v,
                            Err(_) => {
                                self.peel_at(i);
                                continue;
                            }
                        };
                        match self.lane_write_cplace(l, pid, target, v) {
                            Ok(()) => i += 1,
                            Err(_) => self.peel_at(i),
                        }
                    }
                    self.ensure_live()?;
                    pc += 1;
                    if *cost > 0 {
                        self.procs[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
                Instr::Assert { cond, note: _ } => {
                    // Lanes whose assertion fails peel and reproduce
                    // the failure on the scalar engine; lanes where it
                    // holds continue in lockstep.
                    let mut verdicts = std::mem::take(&mut self.verdicts);
                    verdicts.clear();
                    for &l in &self.live {
                        let v = match lane_eval(&mut self.lanes[l], pid, cond) {
                            Ok(v) => v.as_bool().ok(),
                            Err(_) => None,
                        };
                        verdicts.push(v);
                    }
                    let any_fail = verdicts.iter().any(|v| *v != Some(true));
                    if any_fail {
                        let old = std::mem::take(&mut self.live);
                        for (pos, l) in old.into_iter().enumerate() {
                            if verdicts[pos] == Some(true) {
                                self.live.push(l);
                            } else {
                                self.peeled.push(l);
                            }
                        }
                    }
                    self.verdicts = verdicts;
                    self.ensure_live()?;
                    self.assertions_checked += 1;
                    pc += 1;
                }
                Instr::Consume { cycles } => {
                    pc += 1;
                    if *cycles > 0 {
                        self.procs[pid].active_cycles += *cycles;
                        let wake = self.time + *cycles;
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// The shared loop-exit decision for `LoopTest` / `LoopIncr`
    /// (`incr` additionally bumps the counter first, mirroring the
    /// scalar fused back-edge).
    fn loop_verdict(&mut self, pid: usize, var: &CPlace, incr: bool) -> Result<bool, Abort> {
        let mut verdicts = std::mem::take(&mut self.verdicts);
        verdicts.clear();
        for pos in 0..self.live.len() {
            let l = self.live[pos];
            verdicts.push(self.lane_loop_step(l, pid, var, incr));
        }
        let out = self.decide(&verdicts);
        self.verdicts = verdicts;
        out
    }

    /// One lane's loop-counter step: read (and with `incr`, increment)
    /// the counter, compare against the lane's innermost bound.
    fn lane_loop_step(&mut self, l: usize, pid: usize, var: &CPlace, incr: bool) -> Option<bool> {
        let fast = match var {
            CPlace::Var(v) => match self.lanes[l].vars.get_mut(*v as usize) {
                Some(Value::Int { value, width }) if !incr || *width > 0 => {
                    if incr {
                        *value += 1;
                    }
                    Some(*value)
                }
                _ => None,
            },
            CPlace::Local(slot) => {
                let frame = self.lanes[l].frames[pid].last_mut().expect("frame");
                match frame.locals.get_mut(*slot as usize) {
                    Some(Value::Int { value, width }) if !incr || *width > 0 => {
                        if incr {
                            *value += 1;
                        }
                        Some(*value)
                    }
                    _ => None,
                }
            }
            CPlace::Path(_) => None,
        };
        let v = match fast {
            Some(v) => v,
            None => {
                let cur = self.lane_read_cplace(l, pid, var).ok()?;
                let v = cur.as_i64().ok()?;
                if incr {
                    let width = match &cur {
                        Value::Int { width, .. } => *width,
                        other => other.ty().bit_width(),
                    };
                    self.lane_write_cplace(l, pid, var, Value::int(v + 1, width.max(1)))
                        .ok()?;
                    v + 1
                } else {
                    v
                }
            }
        };
        let bound = *self.lanes[l].frames[pid]
            .last()
            .expect("frame")
            .loop_bounds
            .last()?;
        Some(v > bound)
    }

    /// The shared verdict for `wait until sig = const`.
    fn signal_is_verdict(&mut self, sig: usize, value: &Value) -> Result<bool, Abort> {
        let mut verdicts = std::mem::take(&mut self.verdicts);
        verdicts.clear();
        for &l in &self.live {
            verdicts.push(Some(self.lanes[l].signals[sig] == *value));
        }
        let out = self.decide(&verdicts);
        self.verdicts = verdicts;
        out
    }

    fn take_block(&mut self, code: CodeRef) -> Arc<Code> {
        let slot = match code {
            CodeRef::Behavior(i) => &mut self.behavior_code[i],
            CodeRef::Procedure(i) => &mut self.procedure_code[i],
        };
        slot.take().expect("code block already taken")
    }

    fn put_block(&mut self, code: CodeRef, block: Arc<Code>) {
        let slot = match code {
            CodeRef::Behavior(i) => &mut self.behavior_code[i],
            CodeRef::Procedure(i) => &mut self.procedure_code[i],
        };
        *slot = Some(block);
    }

    fn enter_procedure(
        &mut self,
        pid: usize,
        procedure: usize,
        args: &[CArg],
    ) -> Result<(), Abort> {
        let caller_frame_abs = self.procs[pid].frames.len() - 1;
        let mut built: Vec<(usize, LaneFrame)> = Vec::with_capacity(self.live.len());
        let mut i = 0;
        while i < self.live.len() {
            let l = self.live[i];
            match self.build_lane_frame(l, pid, procedure, args, caller_frame_abs) {
                Ok(f) => {
                    built.push((l, f));
                    i += 1;
                }
                Err(_) => self.peel_at(i),
            }
        }
        self.ensure_live()?;
        self.procs[pid].frames.push(CtlFrame {
            code: CodeRef::Procedure(procedure),
            pc: 0,
        });
        for (l, f) in built {
            self.lanes[l].frames[pid].push(f);
        }
        Ok(())
    }

    /// One lane's callee frame: `in` arguments evaluate in the caller
    /// frame, `out`/`inout` destinations resolve their indices at call
    /// time — exactly the scalar `enter_procedure`.
    fn build_lane_frame(
        &mut self,
        l: usize,
        pid: usize,
        procedure: usize,
        args: &[CArg],
        caller_frame_abs: usize,
    ) -> Result<LaneFrame, SimError> {
        let proc = &self.rep.procedures[procedure];
        let mut locals = Vec::with_capacity(proc.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&proc.params).enumerate() {
            match (arg, param.mode) {
                (CArg::In(e), ifsyn_spec::ParamMode::In) => {
                    let v = lane_eval(&mut self.lanes[l], pid, e)?.clone();
                    locals.push(coerce(v, &param.ty));
                }
                (CArg::Out(place), ifsyn_spec::ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    let (rp, ty) = self.lane_resolve_cplace(l, pid, place, caller_frame_abs)?;
                    copyback.push((i, rp, ty));
                }
                (CArg::InOut(place), ifsyn_spec::ParamMode::InOut) => {
                    let v = self.lane_read_cplace(l, pid, place)?;
                    locals.push(coerce(v, &param.ty));
                    let (rp, ty) = self.lane_resolve_cplace(l, pid, place, caller_frame_abs)?;
                    copyback.push((i, rp, ty));
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        proc.name
                    )))
                }
            }
        }
        for local in &proc.locals {
            locals.push(Value::default_of(&local.ty));
        }
        Ok(LaneFrame {
            locals,
            loop_bounds: Vec::new(),
            copyback,
        })
    }

    /// Pops the current frame in control and every live lane, applying
    /// per-lane copy-backs. Returns `true` when the process finished.
    fn leave_frame(&mut self, pid: usize) -> Result<bool, Abort> {
        let mut i = 0;
        while i < self.live.len() {
            let l = self.live[i];
            let lframe = self.lanes[l].frames[pid].pop().expect("frame");
            let mut failed = false;
            for (slot, rp, ty) in &lframe.copyback {
                let v = coerce(lframe.locals[*slot].clone(), ty);
                if self.lane_write_resolved(l, pid, rp, v).is_err() {
                    failed = true;
                    break;
                }
            }
            if failed {
                self.peel_at(i);
            } else {
                i += 1;
            }
        }
        self.ensure_live()?;
        self.procs[pid].frames.pop().expect("frame");
        if self.procs[pid].frames.is_empty() {
            let bidx = self.procs[pid].behavior;
            if self.rep.behaviors[bidx].repeats {
                self.procs[pid].iterations += 1;
                self.procs[pid].frames.push(CtlFrame {
                    code: CodeRef::Behavior(bidx),
                    pc: 0,
                });
                for &l in &self.live {
                    self.lanes[l].frames[pid].push(LaneFrame::default());
                }
                Ok(false)
            } else {
                self.procs[pid].status = Status::Finished;
                self.procs[pid].finish_time = Some(self.time);
                Ok(true)
            }
        } else {
            Ok(false)
        }
    }

    fn local_ty(&self, pid: usize, frame_abs: usize, slot: usize) -> Result<Ty, SimError> {
        match self.procs[pid].frames[frame_abs].code {
            CodeRef::Procedure(p) => {
                let proc = &self.rep.procedures[p];
                if slot < proc.slot_count() {
                    Ok(proc.slot_ty(slot).clone())
                } else {
                    Err(SimError::eval(format!("missing local slot {slot}")))
                }
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        }
    }

    fn lane_resolve_cpath(
        &mut self,
        l: usize,
        pid: usize,
        path: &CPath,
        frame_abs: usize,
    ) -> Result<ResolvedPlace, SimError> {
        let root = match path.root {
            CRoot::Var(i) => Root::Var(i as usize),
            CRoot::Local(s) => Root::Local {
                frame: frame_abs,
                slot: s as usize,
            },
        };
        let mut steps = Vec::with_capacity(path.steps.len());
        for st in path.steps.iter() {
            match st {
                CPathStep::Elem(code) => {
                    let i = lane_eval(&mut self.lanes[l], pid, code)?
                        .as_i64()
                        .map_err(eval_err)?;
                    let i = usize::try_from(i)
                        .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                    steps.push(Step::Elem(i));
                }
                CPathStep::Slice(hi, lo) => steps.push(Step::Slice(*hi, *lo)),
                CPathStep::DynSlice(code, width) => {
                    let lo = lane_eval(&mut self.lanes[l], pid, code)?
                        .as_i64()
                        .map_err(eval_err)?;
                    let lo = u32::try_from(lo)
                        .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
                    steps.push(Step::Slice(lo + width - 1, lo));
                }
            }
        }
        Ok(ResolvedPlace { root, steps })
    }

    fn lane_resolve_cplace(
        &mut self,
        l: usize,
        pid: usize,
        place: &CPlace,
        frame_abs: usize,
    ) -> Result<(ResolvedPlace, Ty), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .rep
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                Ok((
                    ResolvedPlace {
                        root: Root::Var(*i as usize),
                        steps: Vec::new(),
                    },
                    decl.ty.clone(),
                ))
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let ty = self.local_ty(pid, frame_abs, slot)?;
                Ok((
                    ResolvedPlace {
                        root: Root::Local {
                            frame: frame_abs,
                            slot,
                        },
                        steps: Vec::new(),
                    },
                    ty,
                ))
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let rp = self.lane_resolve_cpath(l, pid, path, frame_abs)?;
                Ok((rp, ty))
            }
        }
    }

    fn lane_read_cplace(
        &mut self,
        l: usize,
        pid: usize,
        place: &CPlace,
    ) -> Result<Value, SimError> {
        match place {
            CPlace::Var(i) => self.lanes[l]
                .vars
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}"))),
            CPlace::Local(slot) => {
                let frame = self.lanes[l].frames[pid]
                    .last()
                    .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
                frame
                    .locals
                    .get(*slot as usize)
                    .cloned()
                    .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))
            }
            CPlace::Path(path) => {
                let frame_abs = self.procs[pid].frames.len() - 1;
                let rp = self.lane_resolve_cpath(l, pid, path, frame_abs)?;
                self.lane_read_resolved(l, pid, &rp)
            }
        }
    }

    fn lane_read_resolved(
        &self,
        l: usize,
        pid: usize,
        rp: &ResolvedPlace,
    ) -> Result<Value, SimError> {
        let mut cur: &Value = match rp.root {
            Root::Var(i) => self.lanes[l]
                .vars
                .get(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => self.lanes[l].frames[pid]
                .get(frame)
                .and_then(|f| f.locals.get(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        for (i, step) in rp.steps.iter().enumerate() {
            match step {
                Step::Elem(idx) => match cur {
                    Value::Array(items) => {
                        cur = items.get(*idx).ok_or_else(|| {
                            SimError::eval(format!("array index {idx} out of range"))
                        })?;
                    }
                    other => {
                        return Err(SimError::eval(format!("indexing non-array value {other}")))
                    }
                },
                Step::Slice(hi, lo) => {
                    if i + 1 != rp.steps.len() {
                        return Err(SimError::eval(
                            "slice must be the last projection of a write target".to_string(),
                        ));
                    }
                    let bits = cur.to_bits();
                    if *hi >= bits.width() {
                        return Err(SimError::eval(format!(
                            "slice {hi} downto {lo} out of range for width {}",
                            bits.width()
                        )));
                    }
                    return Ok(Value::Bits(bits.slice(*hi, *lo)));
                }
            }
        }
        Ok(cur.clone())
    }

    fn lane_write_resolved(
        &mut self,
        l: usize,
        pid: usize,
        rp: &ResolvedPlace,
        value: Value,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => self.lanes[l]
                .vars
                .get_mut(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => self.lanes[l].frames[pid]
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    fn lane_write_cplace(
        &mut self,
        l: usize,
        pid: usize,
        place: &CPlace,
        value: Value,
    ) -> Result<(), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .rep
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                self.lanes[l].vars[*i as usize] = coerce(value, &decl.ty);
                Ok(())
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let frame_abs = self.procs[pid].frames.len() - 1;
                let ty = self.local_ty(pid, frame_abs, slot)?;
                let v = coerce(value, &ty);
                self.lanes[l].frames[pid][frame_abs].locals[slot] = v;
                Ok(())
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let frame_abs = self.procs[pid].frames.len() - 1;
                let rp = self.lane_resolve_cpath(l, pid, path, frame_abs)?;
                self.lane_write_resolved(l, pid, &rp, coerce(value, &ty))
            }
        }
    }

    fn lane_channel_write(
        &mut self,
        l: usize,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
    ) -> Result<(), SimError> {
        let ch = self.rep.channel(channel);
        let var_idx = ch.variable.index();
        let ty = &self.rep.variables[var_idx].ty;
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match ty {
                    Ty::Array { elem, .. } => &**elem,
                    other => other,
                };
                match &mut self.lanes[l].vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => self.lanes[l].vars[var_idx] = coerce(data, ty),
        }
        Ok(())
    }

    fn lane_channel_read(
        &self,
        l: usize,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.rep.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &self.lanes[l].vars[var_idx] {
                    Value::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::eval(format!("channel address {i} out of range"))),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(self.lanes[l].vars[var_idx].clone()),
        }
    }

    /// One lane's [`SimReport`]: shared control counters, the lane's
    /// own storage and its own system's names.
    fn lane_report(&self, l: usize) -> SimReport {
        let sys = self.lane_systems[l];
        let lane = &self.lanes[l];
        let behaviors = self
            .procs
            .iter()
            .map(|p| BehaviorOutcome {
                name: sys.behaviors[p.behavior].name.clone(),
                finish_time: p.finish_time,
                iterations: p.iterations,
                blocked: matches!(p.status, Status::Waiting(_)),
                repeats: sys.behaviors[p.behavior].repeats,
                active_cycles: p.active_cycles,
                instrs_executed: p.instrs_executed,
            })
            .collect();
        let variables = sys
            .variables
            .iter()
            .zip(&lane.vars)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signals = sys
            .signals
            .iter()
            .zip(&lane.signals)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signal_events = sys
            .signals
            .iter()
            .zip(&self.signal_events)
            .map(|(d, &n)| (d.name.clone(), n))
            .collect();
        let blocked_at_exit = self
            .procs
            .iter()
            .filter(|p| !sys.behaviors[p.behavior].repeats && !matches!(p.status, Status::Finished))
            .count();
        SimReport {
            time: self.time,
            behaviors,
            variables,
            signals,
            signal_events,
            injected_faults: Vec::new(),
            blocked_at_exit,
            trace: Vec::new(),
            total_deltas: self.total_deltas,
            total_instrs: self.total_instrs,
            assertions_checked: self.assertions_checked,
            heap_peak: self.heap_peak,
            time_steps: self.time_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::{dsl::*, Stmt, Ty};

    /// A two-process handshake system; `payload` seeds the producer's
    /// driven data so lanes can differ in data without diverging. When
    /// `branchy`, the producer ends with a payload-dependent branch, so
    /// specific payloads force control divergence.
    fn handshake(payload: i64, branchy: bool) -> System {
        let mut sys = System::new("handshake");
        let m = sys.add_module("chip");
        let req = sys.add_signal("REQ", Ty::Bit);
        let ack = sys.add_signal("ACK", Ty::Bit);
        let data = sys.add_signal("DATA", Ty::Int(8));
        let a = sys.add_behavior("producer", m);
        let v = sys.add_variable_init("word", Ty::Int(8), a, Value::int(payload, 8));
        let mut body = vec![
            drive_cost(data, load(var(v)), 1),
            drive_cost(req, bit_const(true), 1),
            wait_until(eq(signal(ack), bit_const(true))),
            drive_cost(req, bit_const(false), 1),
        ];
        if branchy {
            body.push(if_else(
                eq(load(var(v)), int_const(7, 8)),
                vec![assign(var(v), int_const(99, 8)), Stmt::compute(5, "slow")],
                vec![assign(var(v), int_const(1, 8))],
            ));
        }
        sys.behavior_mut(a).body = body;
        let b = sys.add_behavior("consumer", m);
        let seen = sys.add_variable("seen", Ty::Int(8), b);
        sys.behavior_mut(b).body = vec![
            wait_until(eq(signal(req), bit_const(true))),
            assign(var(seen), signal(data)),
            drive_cost(ack, bit_const(true), 1),
        ];
        sys
    }

    fn scalar(sys: &System) -> SimReport {
        Simulator::new(sys).unwrap().run_to_quiescence().unwrap()
    }

    #[test]
    fn identical_lanes_match_scalar() {
        let systems: Vec<System> = (0..4).map(|_| handshake(0x25, false)).collect();
        let (results, stats) = LockstepSim::run_with_stats(&systems, &SimConfig::new(), None);
        assert_eq!(stats.convoys, 1);
        assert_eq!(stats.lockstep_lanes, 4);
        assert_eq!(stats.peeled_lanes, 0);
        let expect = scalar(&systems[0]);
        for r in results {
            assert_eq!(r.unwrap(), expect);
        }
    }

    #[test]
    fn data_variant_lanes_match_their_own_scalar_runs() {
        let systems: Vec<System> = [1i64, 90, 127, 0, 60]
            .iter()
            .map(|&p| handshake(p, false))
            .collect();
        let (results, stats) = LockstepSim::run_with_stats(&systems, &SimConfig::new(), None);
        assert_eq!(stats.convoys, 1);
        for (sys, r) in systems.iter().zip(results) {
            assert_eq!(r.unwrap(), scalar(sys));
        }
    }

    #[test]
    fn diverging_lane_peels_and_still_matches_scalar() {
        // Lane 2's payload flips the producer's trailing branch, which
        // takes a slower path — it must peel and re-run scalar.
        let systems: Vec<System> = [1i64, 1, 7].iter().map(|&p| handshake(p, true)).collect();
        let (results, stats) = LockstepSim::run_with_stats(&systems, &SimConfig::new(), None);
        assert_eq!(stats.convoys, 1);
        assert_eq!(stats.peeled_lanes, 1);
        for (sys, r) in systems.iter().zip(results) {
            assert_eq!(r.unwrap(), scalar(sys));
        }
    }

    #[test]
    fn different_programs_form_no_convoy() {
        let systems = vec![handshake(1, false), handshake(1, true)];
        let (results, stats) = LockstepSim::run_with_stats(&systems, &SimConfig::new(), None);
        assert_eq!(stats.convoys, 0);
        assert_eq!(stats.scalar_lanes, 2);
        for (sys, r) in systems.iter().zip(results) {
            assert_eq!(r.unwrap(), scalar(sys));
        }
    }

    #[test]
    fn traced_configs_run_scalar() {
        let systems: Vec<System> = (0..3).map(|_| handshake(9, false)).collect();
        let config = SimConfig::new().with_trace();
        let (results, stats) = LockstepSim::run_with_stats(&systems, &config, None);
        assert_eq!(stats.convoys, 0);
        assert_eq!(stats.scalar_lanes, 3);
        assert!(results.into_iter().all(|r| r.is_ok()));
    }
}

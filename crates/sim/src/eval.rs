//! Expression evaluation and value coercion.
//!
//! The evaluator is allocation-conscious: [`eval`] and [`read_place`]
//! return [`Evaluated`], a copy-on-write handle that borrows directly
//! from the constant pool, variable store, signal store or frame locals
//! whenever the expression is a plain load, and only materializes an
//! owned [`Value`] for computed results. Bit-vector operators run limb
//! at a time on the packed [`BitVec`] representation.

use std::borrow::Cow;
use std::ops::Deref;

use ifsyn_spec::{BinOp, BitVec, Expr, Place, System, Ty, UnaryOp, Value};

use crate::error::SimError;
use crate::process::CodeRef;

/// Read-only evaluation context: the world as seen by one process.
pub(crate) struct EvalCtx<'a> {
    pub vars: &'a [Value],
    pub signals: &'a [Value],
    /// Local slots of the evaluating process's top frame
    /// (for `Place::Local`).
    pub locals: &'a [Value],
}

/// A copy-on-write evaluation result.
///
/// Loads of constants, variables, locals, signals and array elements
/// borrow the stored value; computed results carry an owned one. Deref
/// to inspect, [`Evaluated::into_owned`] to keep.
#[derive(Debug)]
pub(crate) enum Evaluated<'a> {
    /// Borrowed straight from the evaluation context or constant pool.
    Ref(&'a Value),
    /// A computed (owned) result.
    Owned(Value),
}

impl Deref for Evaluated<'_> {
    type Target = Value;
    fn deref(&self) -> &Value {
        match self {
            Evaluated::Ref(v) => v,
            Evaluated::Owned(v) => v,
        }
    }
}

impl Evaluated<'_> {
    /// Extracts an owned value, cloning only if borrowed.
    pub(crate) fn into_owned(self) -> Value {
        match self {
            Evaluated::Ref(v) => v.clone(),
            Evaluated::Owned(v) => v,
        }
    }
}

/// Views a value's bit-level packing without cloning `Bits` payloads.
fn to_bits_cow(v: &Value) -> Cow<'_, BitVec> {
    match v {
        Value::Bits(b) => Cow::Borrowed(b),
        other => Cow::Owned(other.to_bits()),
    }
}

/// The "natural" width of a value, used to size operation results.
fn natural_width(v: &Value) -> u32 {
    match v {
        Value::Bit(_) => 1,
        Value::Bits(b) => b.width(),
        Value::Int { width, .. } => *width,
        Value::Array(_) => 0,
    }
}

/// Coerces `value` to type `ty` by bit-level reinterpretation.
///
/// Identity when the types already match; otherwise the value is packed
/// to bits, resized, and unpacked at the target type (hardware-style
/// truncation / zero-extension).
pub(crate) fn coerce(value: Value, ty: &Ty) -> Value {
    if value.ty() == *ty {
        return value;
    }
    Value::from_bits(ty, &value.to_bits().resized(ty.bit_width()))
}

/// Computes the type of a place in the given code scope.
pub(crate) fn place_ty(system: &System, code: CodeRef, place: &Place) -> Result<Ty, SimError> {
    match place {
        Place::Var(v) => {
            let decl = system
                .variables
                .get(v.index())
                .ok_or_else(|| SimError::eval(format!("missing variable {v}")))?;
            Ok(decl.ty.clone())
        }
        Place::Local(slot) => match code {
            CodeRef::Procedure(p) => {
                let proc = &system.procedures[p];
                if *slot >= proc.slot_count() {
                    return Err(SimError::eval(format!(
                        "slot {slot} out of range in `{}`",
                        proc.name
                    )));
                }
                Ok(proc.slot_ty(*slot).clone())
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        },
        Place::Index { base, .. } => match place_ty(system, code, base)? {
            Ty::Array { elem, .. } => Ok(*elem),
            other => Err(SimError::eval(format!("indexing non-array type {other}"))),
        },
        Place::Slice { hi, lo, .. } => Ok(Ty::Bits(hi - lo + 1)),
        Place::DynSlice { width, .. } => Ok(Ty::Bits(*width)),
    }
}

/// Reads the current value of a place, borrowing stored values where
/// the place is a plain variable, local or array element.
pub(crate) fn read_place<'a>(
    ctx: &EvalCtx<'a>,
    place: &'a Place,
) -> Result<Evaluated<'a>, SimError> {
    match place {
        Place::Var(v) => ctx
            .vars
            .get(v.index())
            .map(Evaluated::Ref)
            .ok_or_else(|| SimError::eval(format!("missing variable {v}"))),
        Place::Local(slot) => ctx
            .locals
            .get(*slot)
            .map(Evaluated::Ref)
            .ok_or_else(|| SimError::eval(format!("missing local slot {slot}"))),
        Place::Index { base, index } => {
            let container = read_place(ctx, base)?;
            let i = eval(ctx, index)?.as_i64().map_err(wrap)?;
            let i = usize::try_from(i)
                .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
            match container {
                Evaluated::Ref(Value::Array(items)) => items
                    .get(i)
                    .map(Evaluated::Ref)
                    .ok_or_else(|| SimError::eval(format!("array index {i} out of range"))),
                Evaluated::Owned(Value::Array(items)) => items
                    .get(i)
                    .cloned()
                    .map(Evaluated::Owned)
                    .ok_or_else(|| SimError::eval(format!("array index {i} out of range"))),
                other => Err(SimError::eval(format!(
                    "indexing non-array value {}",
                    &*other
                ))),
            }
        }
        Place::Slice { base, hi, lo } => {
            let base_v = read_place(ctx, base)?;
            let bits = to_bits_cow(&base_v);
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Evaluated::Owned(Value::Bits(bits.slice(*hi, *lo))))
        }
        Place::DynSlice {
            base,
            offset,
            width,
        } => {
            let lo = eval(ctx, offset)?.as_i64().map_err(wrap)?;
            let lo = u32::try_from(lo)
                .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
            let base_v = read_place(ctx, base)?;
            let bits = to_bits_cow(&base_v);
            let hi = lo + width - 1;
            if hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "dynamic slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Evaluated::Owned(Value::Bits(bits.slice(hi, lo))))
        }
    }
}

fn wrap(e: ifsyn_spec::SpecError) -> SimError {
    SimError::eval(e.to_string())
}

/// Evaluates an expression; plain loads come back as borrows, computed
/// results as owned values.
pub(crate) fn eval<'a>(ctx: &EvalCtx<'a>, expr: &'a Expr) -> Result<Evaluated<'a>, SimError> {
    match expr {
        Expr::Const(v) => Ok(Evaluated::Ref(v)),
        Expr::Load(place) => read_place(ctx, place),
        Expr::Signal(s) => ctx
            .signals
            .get(s.index())
            .map(Evaluated::Ref)
            .ok_or_else(|| SimError::eval(format!("missing signal {s}"))),
        Expr::Unary { op, arg } => {
            let v = eval(ctx, arg)?;
            eval_unary(*op, &v).map(Evaluated::Owned)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(ctx, lhs)?;
            let r = eval(ctx, rhs)?;
            eval_binary(*op, &l, &r).map(Evaluated::Owned)
        }
        Expr::SliceOf { base, hi, lo } => {
            let base_v = eval(ctx, base)?;
            let bits = to_bits_cow(&base_v);
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Evaluated::Owned(Value::Bits(bits.slice(*hi, *lo))))
        }
        Expr::Resize { base, width } => {
            let base_v = eval(ctx, base)?;
            let bits = to_bits_cow(&base_v);
            Ok(Evaluated::Owned(Value::Bits(bits.resized(*width))))
        }
        Expr::DynSliceOf {
            base,
            offset,
            width,
        } => {
            let lo = eval(ctx, offset)?.as_i64().map_err(wrap)?;
            let lo = u32::try_from(lo)
                .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
            let base_v = eval(ctx, base)?;
            let bits = to_bits_cow(&base_v);
            let hi = lo + width - 1;
            if hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "dynamic slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Evaluated::Owned(Value::Bits(bits.slice(hi, lo))))
        }
    }
}

pub(crate) fn eval_unary(op: UnaryOp, v: &Value) -> Result<Value, SimError> {
    match op {
        UnaryOp::Not => match v {
            Value::Bit(b) => Ok(Value::Bit(!b)),
            Value::Bits(bv) => Ok(Value::Bits(bv.complement())),
            other => Ok(Value::Bit(!other.as_bool().map_err(wrap)?)),
        },
        UnaryOp::Neg => {
            let width = natural_width(v).max(1);
            let value = -v.as_i64().map_err(wrap)?;
            Ok(Value::Int { value, width })
        }
    }
}

pub(crate) fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, SimError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            let a = l.as_i64().map_err(wrap)?;
            let b = r.as_i64().map_err(wrap)?;
            let value = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        0
                    } else {
                        a / b
                    }
                }
                Rem => {
                    if b == 0 {
                        0
                    } else {
                        a % b
                    }
                }
                Min => a.min(b),
                Max => a.max(b),
                _ => unreachable!(),
            };
            let width = natural_width(l).max(natural_width(r)).max(1);
            Ok(Value::Int { value, width })
        }
        Eq | Ne => {
            let equal = match (l, r) {
                (Value::Bit(a), Value::Bit(b)) => a == b,
                // Canonical limbs: same width ⇒ representational equality
                // is logical equality, no resize needed.
                (Value::Bits(a), Value::Bits(b)) if a.width() == b.width() => a == b,
                _ => {
                    let w = natural_width(l).max(natural_width(r));
                    let a = to_bits_cow(l);
                    let b = to_bits_cow(r);
                    // Zero-extension to the common width makes limb-wise
                    // unsigned comparison exactly the old resize-and-compare
                    // semantics, except that bits past `w` must be truncated
                    // away first.
                    a.resized(w).cmp_unsigned(&b.resized(w)).is_eq()
                }
            };
            Ok(Value::Bit(if matches!(op, Eq) { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => {
            let a = l.as_i64().map_err(wrap)?;
            let b = r.as_i64().map_err(wrap)?;
            let res = match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bit(res))
        }
        And | Or | Xor => match (l, r) {
            (Value::Bit(a), Value::Bit(b)) => {
                let res = match op {
                    And => *a && *b,
                    Or => *a || *b,
                    Xor => *a != *b,
                    _ => unreachable!(),
                };
                Ok(Value::Bit(res))
            }
            _ => {
                let w = natural_width(l).max(natural_width(r)).max(1);
                let a = to_bits_cow(l);
                let b = to_bits_cow(r);
                let mut bits = match op {
                    And => a.and(&b),
                    Or => a.or(&b),
                    Xor => a.xor(&b),
                    _ => unreachable!(),
                };
                if bits.width() != w {
                    bits = bits.resized(w);
                }
                Ok(Value::Bits(bits))
            }
        },
        Concat => Ok(Value::Bits(to_bits_cow(l).concat(&to_bits_cow(r)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{System, VarId};

    fn ctx_fixture() -> (System, Vec<Value>, Vec<Value>) {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        sys.add_variable("arr", Ty::array(Ty::Int(8), 4), b);
        sys.add_variable("x", Ty::Bits(8), b);
        let s = sys.add_signal("start", Ty::Bit);
        let _ = s;
        let vars = vec![
            Value::Array(vec![
                Value::int(10, 8),
                Value::int(20, 8),
                Value::int(30, 8),
                Value::int(40, 8),
            ]),
            Value::Bits(BitVec::from_u64(0b1010_0101, 8)),
        ];
        let signals = vec![Value::Bit(true)];
        (sys, vars, signals)
    }

    fn with_ctx<R>(f: impl FnOnce(&EvalCtx<'_>) -> R) -> R {
        let (_sys, vars, signals) = ctx_fixture();
        let locals = vec![Value::int(7, 8)];
        let ctx = EvalCtx {
            vars: &vars,
            signals: &signals,
            locals: &locals,
        };
        f(&ctx)
    }

    #[test]
    fn arithmetic_and_width() {
        with_ctx(|ctx| {
            let e = add(int_const(2, 8), int_const(3, 16));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::int(5, 16));
        });
    }

    #[test]
    fn division_by_zero_is_zero() {
        with_ctx(|ctx| {
            let e = Expr::Binary {
                op: BinOp::Div,
                lhs: Box::new(int_const(5, 8)),
                rhs: Box::new(int_const(0, 8)),
            };
            assert_eq!(eval(ctx, &e).unwrap().as_i64().unwrap(), 0);
        });
    }

    #[test]
    fn array_index_read() {
        with_ctx(|ctx| {
            let e = load(index(var(VarId::new(0)), int_const(2, 8)));
            let v = eval(ctx, &e).unwrap();
            // Array-element loads borrow in place.
            assert!(matches!(v, Evaluated::Ref(_)));
            assert_eq!(v.into_owned(), Value::int(30, 8));
        });
    }

    #[test]
    fn array_index_out_of_range_errors() {
        with_ctx(|ctx| {
            let e = load(index(var(VarId::new(0)), int_const(9, 8)));
            assert!(eval(ctx, &e).is_err());
        });
    }

    #[test]
    fn slice_read_matches_bits() {
        with_ctx(|ctx| {
            // x = 1010_0101; bits 7..4 = 1010.
            let e = load(slice(var(VarId::new(1)), 7, 4));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b1010, 4)));
        });
    }

    #[test]
    fn local_read() {
        with_ctx(|ctx| {
            let e = load(local(0));
            let v = eval(ctx, &e).unwrap();
            assert!(matches!(v, Evaluated::Ref(_)));
            assert_eq!(v.into_owned(), Value::int(7, 8));
        });
    }

    #[test]
    fn signal_read_and_logic() {
        with_ctx(|ctx| {
            let e = and(signal(ifsyn_spec::SignalId::new(0)), bit_const(true));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bit(true));
            let e = not(signal(ifsyn_spec::SignalId::new(0)));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bit(false));
        });
    }

    #[test]
    fn eq_compares_across_widths() {
        with_ctx(|ctx| {
            let e = eq(bits_const(5, 4), int_const(5, 8));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bit(true));
            let e = ne(bits_const(5, 4), int_const(6, 8));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bit(true));
        });
    }

    #[test]
    fn concat_keeps_lhs_low() {
        with_ctx(|ctx| {
            let e = concat(bits_const(0b01, 2), bits_const(0b11, 2));
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b1101, 4)));
        });
    }

    #[test]
    fn bitwise_ops_on_vectors() {
        with_ctx(|ctx| {
            let e = Expr::Binary {
                op: BinOp::Xor,
                lhs: Box::new(bits_const(0b1100, 4)),
                rhs: Box::new(bits_const(0b1010, 4)),
            };
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b0110, 4)));
        });
    }

    #[test]
    fn resize_truncates() {
        with_ctx(|ctx| {
            let e = resize(bits_const(0b1111, 4), 2);
            let v = eval(ctx, &e).unwrap().into_owned();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b11, 2)));
        });
    }

    #[test]
    fn const_loads_borrow_from_the_expression() {
        with_ctx(|ctx| {
            let e = int_const(42, 8);
            let v = eval(ctx, &e).unwrap();
            assert!(matches!(v, Evaluated::Ref(_)));
            assert_eq!(v.into_owned(), Value::int(42, 8));
        });
    }

    #[test]
    fn coerce_int_to_bits_and_back() {
        let v = coerce(Value::int(5, 16), &Ty::Bits(8));
        assert_eq!(v, Value::Bits(BitVec::from_u64(5, 8)));
        let v = coerce(v, &Ty::Int(16));
        assert_eq!(v, Value::int(5, 16));
    }

    #[test]
    fn coerce_identity_is_cheap_path() {
        let v = Value::int(5, 16);
        assert_eq!(coerce(v.clone(), &Ty::Int(16)), v);
    }

    #[test]
    fn place_ty_navigates() {
        let (sys, _, _) = ctx_fixture();
        let ty = place_ty(
            &sys,
            CodeRef::Behavior(0),
            &index(var(VarId::new(0)), int_const(0, 8)),
        )
        .unwrap();
        assert_eq!(ty, Ty::Int(8));
        let ty = place_ty(&sys, CodeRef::Behavior(0), &slice(var(VarId::new(1)), 3, 1)).unwrap();
        assert_eq!(ty, Ty::Bits(3));
        assert!(place_ty(&sys, CodeRef::Behavior(0), &local(0)).is_err());
    }
}

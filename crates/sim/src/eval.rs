//! Expression evaluation and value coercion.

use ifsyn_spec::{BinOp, BitVec, Expr, Place, System, Ty, UnaryOp, Value};

use crate::error::SimError;
use crate::process::{CodeRef, Frame};

/// Read-only evaluation context: the world as seen by one process.
pub(crate) struct EvalCtx<'a> {
    pub vars: &'a [Value],
    pub signals: &'a [Value],
    /// The evaluating process's top frame (for `Place::Local`).
    pub frame: &'a Frame,
}

/// The "natural" width of a value, used to size operation results.
fn natural_width(v: &Value) -> u32 {
    match v {
        Value::Bit(_) => 1,
        Value::Bits(b) => b.width(),
        Value::Int { width, .. } => *width,
        Value::Array(_) => 0,
    }
}

/// Coerces `value` to type `ty` by bit-level reinterpretation.
///
/// Identity when the types already match; otherwise the value is packed
/// to bits, resized, and unpacked at the target type (hardware-style
/// truncation / zero-extension).
pub(crate) fn coerce(value: Value, ty: &Ty) -> Value {
    if value.ty() == *ty {
        return value;
    }
    Value::from_bits(ty, &value.to_bits().resized(ty.bit_width()))
}

/// Computes the type of a place in the given code scope.
pub(crate) fn place_ty(
    system: &System,
    code: CodeRef,
    place: &Place,
) -> Result<Ty, SimError> {
    match place {
        Place::Var(v) => {
            let decl = system
                .variables
                .get(v.index())
                .ok_or_else(|| SimError::eval(format!("missing variable {v}")))?;
            Ok(decl.ty.clone())
        }
        Place::Local(slot) => match code {
            CodeRef::Procedure(p) => {
                let proc = &system.procedures[p];
                if *slot >= proc.slot_count() {
                    return Err(SimError::eval(format!(
                        "slot {slot} out of range in `{}`",
                        proc.name
                    )));
                }
                Ok(proc.slot_ty(*slot).clone())
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        },
        Place::Index { base, .. } => match place_ty(system, code, base)? {
            Ty::Array { elem, .. } => Ok(*elem),
            other => Err(SimError::eval(format!("indexing non-array type {other}"))),
        },
        Place::Slice { hi, lo, .. } => Ok(Ty::Bits(hi - lo + 1)),
        Place::DynSlice { width, .. } => Ok(Ty::Bits(*width)),
    }
}

/// Reads the current value of a place.
pub(crate) fn read_place(ctx: &EvalCtx<'_>, place: &Place) -> Result<Value, SimError> {
    match place {
        Place::Var(v) => ctx
            .vars
            .get(v.index())
            .cloned()
            .ok_or_else(|| SimError::eval(format!("missing variable {v}"))),
        Place::Local(slot) => ctx
            .frame
            .locals
            .get(*slot)
            .cloned()
            .ok_or_else(|| SimError::eval(format!("missing local slot {slot}"))),
        Place::Index { base, index } => {
            let container = read_place(ctx, base)?;
            let i = eval(ctx, index)?.as_i64().map_err(wrap)?;
            match container {
                Value::Array(items) => items
                    .get(usize::try_from(i).map_err(|_| {
                        SimError::eval(format!("negative array index {i}"))
                    })?)
                    .cloned()
                    .ok_or_else(|| {
                        SimError::eval(format!("array index {i} out of range"))
                    }),
                other => Err(SimError::eval(format!(
                    "indexing non-array value {other}"
                ))),
            }
        }
        Place::Slice { base, hi, lo } => {
            let bits = read_place(ctx, base)?.to_bits();
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Value::Bits(bits.slice(*hi, *lo)))
        }
        Place::DynSlice {
            base,
            offset,
            width,
        } => {
            let bits = read_place(ctx, base)?.to_bits();
            let lo = eval(ctx, offset)?.as_i64().map_err(wrap)?;
            let lo = u32::try_from(lo)
                .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
            let hi = lo + width - 1;
            if hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "dynamic slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Value::Bits(bits.slice(hi, lo)))
        }
    }
}

fn wrap(e: ifsyn_spec::SpecError) -> SimError {
    SimError::eval(e.to_string())
}

/// Evaluates an expression to a value.
pub(crate) fn eval(ctx: &EvalCtx<'_>, expr: &Expr) -> Result<Value, SimError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Load(place) => read_place(ctx, place),
        Expr::Signal(s) => ctx
            .signals
            .get(s.index())
            .cloned()
            .ok_or_else(|| SimError::eval(format!("missing signal {s}"))),
        Expr::Unary { op, arg } => {
            let v = eval(ctx, arg)?;
            eval_unary(*op, v)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(ctx, lhs)?;
            let r = eval(ctx, rhs)?;
            eval_binary(*op, l, r)
        }
        Expr::SliceOf { base, hi, lo } => {
            let bits = eval(ctx, base)?.to_bits();
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Value::Bits(bits.slice(*hi, *lo)))
        }
        Expr::Resize { base, width } => {
            Ok(Value::Bits(eval(ctx, base)?.to_bits().resized(*width)))
        }
        Expr::DynSliceOf {
            base,
            offset,
            width,
        } => {
            let bits = eval(ctx, base)?.to_bits();
            let lo = eval(ctx, offset)?.as_i64().map_err(wrap)?;
            let lo = u32::try_from(lo)
                .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
            let hi = lo + width - 1;
            if hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "dynamic slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok(Value::Bits(bits.slice(hi, lo)))
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value, SimError> {
    match op {
        UnaryOp::Not => match v {
            Value::Bit(b) => Ok(Value::Bit(!b)),
            Value::Bits(bv) => Ok(Value::Bits(BitVec::from_bits_lsb_first(
                bv.iter().map(|b| !b),
            ))),
            other => Ok(Value::Bit(!other.as_bool().map_err(wrap)?)),
        },
        UnaryOp::Neg => {
            let width = natural_width(&v).max(1);
            let value = -v.as_i64().map_err(wrap)?;
            Ok(Value::Int { value, width })
        }
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, SimError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            let a = l.as_i64().map_err(wrap)?;
            let b = r.as_i64().map_err(wrap)?;
            let value = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        0
                    } else {
                        a / b
                    }
                }
                Rem => {
                    if b == 0 {
                        0
                    } else {
                        a % b
                    }
                }
                Min => a.min(b),
                Max => a.max(b),
                _ => unreachable!(),
            };
            let width = natural_width(&l).max(natural_width(&r)).max(1);
            Ok(Value::Int { value, width })
        }
        Eq | Ne => {
            let w = natural_width(&l).max(natural_width(&r));
            let equal = l.to_bits().resized(w) == r.to_bits().resized(w);
            Ok(Value::Bit(if matches!(op, Eq) { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => {
            let a = l.as_i64().map_err(wrap)?;
            let b = r.as_i64().map_err(wrap)?;
            let res = match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bit(res))
        }
        And | Or | Xor => match (&l, &r) {
            (Value::Bit(a), Value::Bit(b)) => {
                let res = match op {
                    And => *a && *b,
                    Or => *a || *b,
                    Xor => *a != *b,
                    _ => unreachable!(),
                };
                Ok(Value::Bit(res))
            }
            _ => {
                let w = natural_width(&l).max(natural_width(&r)).max(1);
                let a = l.to_bits().resized(w);
                let b = r.to_bits().resized(w);
                let bits = a.iter().zip(b.iter()).map(|(x, y)| match op {
                    And => x && y,
                    Or => x || y,
                    Xor => x != y,
                    _ => unreachable!(),
                });
                Ok(Value::Bits(BitVec::from_bits_lsb_first(bits)))
            }
        },
        Concat => Ok(Value::Bits(l.to_bits().concat(&r.to_bits()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{System, VarId};

    fn ctx_fixture() -> (System, Vec<Value>, Vec<Value>) {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        sys.add_variable("arr", Ty::array(Ty::Int(8), 4), b);
        sys.add_variable("x", Ty::Bits(8), b);
        let s = sys.add_signal("start", Ty::Bit);
        let _ = s;
        let vars = vec![
            Value::Array(vec![
                Value::int(10, 8),
                Value::int(20, 8),
                Value::int(30, 8),
                Value::int(40, 8),
            ]),
            Value::Bits(BitVec::from_u64(0b1010_0101, 8)),
        ];
        let signals = vec![Value::Bit(true)];
        (sys, vars, signals)
    }

    fn with_ctx<R>(f: impl FnOnce(&EvalCtx<'_>) -> R) -> R {
        let (_sys, vars, signals) = ctx_fixture();
        let frame = Frame::new(CodeRef::Behavior(0), vec![Value::int(7, 8)]);
        let ctx = EvalCtx {
            vars: &vars,
            signals: &signals,
            frame: &frame,
        };
        f(&ctx)
    }

    #[test]
    fn arithmetic_and_width() {
        with_ctx(|ctx| {
            let v = eval(ctx, &add(int_const(2, 8), int_const(3, 16))).unwrap();
            assert_eq!(v, Value::int(5, 16));
        });
    }

    #[test]
    fn division_by_zero_is_zero() {
        with_ctx(|ctx| {
            let e = Expr::Binary {
                op: BinOp::Div,
                lhs: Box::new(int_const(5, 8)),
                rhs: Box::new(int_const(0, 8)),
            };
            assert_eq!(eval(ctx, &e).unwrap().as_i64().unwrap(), 0);
        });
    }

    #[test]
    fn array_index_read() {
        with_ctx(|ctx| {
            let v = eval(
                ctx,
                &load(index(var(VarId::new(0)), int_const(2, 8))),
            )
            .unwrap();
            assert_eq!(v, Value::int(30, 8));
        });
    }

    #[test]
    fn array_index_out_of_range_errors() {
        with_ctx(|ctx| {
            let r = eval(ctx, &load(index(var(VarId::new(0)), int_const(9, 8))));
            assert!(r.is_err());
        });
    }

    #[test]
    fn slice_read_matches_bits() {
        with_ctx(|ctx| {
            // x = 1010_0101; bits 7..4 = 1010.
            let v = eval(ctx, &load(slice(var(VarId::new(1)), 7, 4))).unwrap();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b1010, 4)));
        });
    }

    #[test]
    fn local_read() {
        with_ctx(|ctx| {
            let v = eval(ctx, &load(local(0))).unwrap();
            assert_eq!(v, Value::int(7, 8));
        });
    }

    #[test]
    fn signal_read_and_logic() {
        with_ctx(|ctx| {
            let v = eval(
                ctx,
                &and(signal(ifsyn_spec::SignalId::new(0)), bit_const(true)),
            )
            .unwrap();
            assert_eq!(v, Value::Bit(true));
            let v = eval(ctx, &not(signal(ifsyn_spec::SignalId::new(0)))).unwrap();
            assert_eq!(v, Value::Bit(false));
        });
    }

    #[test]
    fn eq_compares_across_widths() {
        with_ctx(|ctx| {
            let v = eval(ctx, &eq(bits_const(5, 4), int_const(5, 8))).unwrap();
            assert_eq!(v, Value::Bit(true));
            let v = eval(ctx, &ne(bits_const(5, 4), int_const(6, 8))).unwrap();
            assert_eq!(v, Value::Bit(true));
        });
    }

    #[test]
    fn concat_keeps_lhs_low() {
        with_ctx(|ctx| {
            let v = eval(ctx, &concat(bits_const(0b01, 2), bits_const(0b11, 2))).unwrap();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b1101, 4)));
        });
    }

    #[test]
    fn bitwise_ops_on_vectors() {
        with_ctx(|ctx| {
            let v = eval(
                ctx,
                &Expr::Binary {
                    op: BinOp::Xor,
                    lhs: Box::new(bits_const(0b1100, 4)),
                    rhs: Box::new(bits_const(0b1010, 4)),
                },
            )
            .unwrap();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b0110, 4)));
        });
    }

    #[test]
    fn resize_truncates() {
        with_ctx(|ctx| {
            let v = eval(ctx, &resize(bits_const(0b1111, 4), 2)).unwrap();
            assert_eq!(v, Value::Bits(BitVec::from_u64(0b11, 2)));
        });
    }

    #[test]
    fn coerce_int_to_bits_and_back() {
        let v = coerce(Value::int(5, 16), &Ty::Bits(8));
        assert_eq!(v, Value::Bits(BitVec::from_u64(5, 8)));
        let v = coerce(v, &Ty::Int(16));
        assert_eq!(v, Value::int(5, 16));
    }

    #[test]
    fn coerce_identity_is_cheap_path() {
        let v = Value::int(5, 16);
        assert_eq!(coerce(v.clone(), &Ty::Int(16)), v);
    }

    #[test]
    fn place_ty_navigates() {
        let (sys, _, _) = ctx_fixture();
        let ty = place_ty(
            &sys,
            CodeRef::Behavior(0),
            &index(var(VarId::new(0)), int_const(0, 8)),
        )
        .unwrap();
        assert_eq!(ty, Ty::Int(8));
        let ty = place_ty(&sys, CodeRef::Behavior(0), &slice(var(VarId::new(1)), 3, 1))
            .unwrap();
        assert_eq!(ty, Ty::Bits(3));
        assert!(place_ty(&sys, CodeRef::Behavior(0), &local(0)).is_err());
    }
}

//! Explicit-state model checking of specification IR.
//!
//! The simulator executes *one* schedule; the checker executes *all* of
//! them. It interprets the same compiled [`Program`] the kernel runs, but
//! under a nondeterministic scheduler and an optional adversarial fault
//! environment, enumerating every reachable system state by breadth-first
//! exploration. Over the explored graph it decides:
//!
//! * **invariants** — a predicate holds in every reachable state
//!   (e.g. bus grant mutual exclusion);
//! * **terminal properties** — a predicate holds in every quiescent state
//!   (e.g. no run ends with silently corrupted data). A path on which a
//!   process *crashes* — a runtime evaluation error such as a
//!   fault-corrupted address indexing past an array — is recorded as an
//!   error edge and fails every terminal property with the crashing trace
//!   as counterexample, rather than aborting the exploration;
//! * **leads-to properties** — from every reachable state satisfying a
//!   premise, some continuation reaches the goal (`AG(premise → EF
//!   goal)`). This is "eventually, under scheduler fairness": a violation
//!   is a reachable state from which the goal is *unreachable on every
//!   continuation* — precisely the unrecoverable-request shape, not a mere
//!   unfortunate schedule;
//! * **completion bounds** — the maximum total cycle cost over all
//!   maximal paths ([`StateSpace::worst_cost_to_quiescence`]), turning
//!   the hardened protocols' "completes or aborts within N cycles" claim
//!   into a checked theorem (`None` = a cycle exists and no bound does).
//!
//! ## Abstraction
//!
//! States are time-abstracted: a state is the storage (signals,
//! variables), the control point of every process (frames, pcs, locals,
//! loop bounds) and the remaining fault budgets — but no clock. A
//! transition runs one process *atomically* from its current control
//! point up to its next cycle-consuming instruction (or blocking wait),
//! with the elapsed cycles recorded as the transition's cost. Signal
//! writes become visible immediately instead of at the next delta; the
//! reorderings the delta queue can produce are covered by the scheduler's
//! interleaving nondeterminism, so the checker over-approximates the
//! kernel's schedules. One refinement keeps the over-approximation from
//! inventing impossible misses: the kernel's event loop wakes *every*
//! waiter on a signal the instant it changes, so no waiter can sleep
//! through a pulse — the checker mirrors this by **eagerly releasing**
//! waiters after every transition (any process parked at a
//! level-sensitive wait whose condition now holds is advanced past it
//! without waiting to be scheduled). Without this, plain interleaving
//! lets an unscheduled process miss a brief `START` low phase between
//! two back-to-back bus words — a spurious deadlock the synchronous
//! kernel can never exhibit. Two further deliberate choices:
//!
//! * **watchdogs fire only at global stalls** — a `wait ... for N` expires
//!   exactly when no process can otherwise move, modelling the watchdog's
//!   role (escape from permanent blocking) without a clock;
//! * **faults are environment transitions** — each configured
//!   [`EnvFault`] may strike between any two process steps, budgeted in
//!   the state so the exploration stays finite. Fault transitions do not
//!   count against quiescence: a state that is deadlocked unless *another*
//!   fault strikes is a real deadlock.
//!
//! ## Scaling
//!
//! The exploration core is built to reach state counts two orders of
//! magnitude beyond the seed explorer (see `docs/ROBUSTNESS.md` for the
//! soundness arguments and `docs/PERFORMANCE.md` for numbers):
//!
//! * **compact states** — reachable states are stored as four interned
//!   component ids (16 bytes) instead of full deep clones, with dedup by
//!   16-byte compare under a 64-bit fingerprint;
//! * **partial-order reduction** (on by default, [`CheckConfig::without_por`]
//!   to disable) — a process step that touches only its own unobserved
//!   state stands in for the full successor set, with a cycle proviso
//!   guaranteeing no transition is deferred forever. Reduction preserves
//!   every verdict this module can produce; failing checks are replayed
//!   through an unreduced exploration so failure reports stay
//!   byte-identical to the seed explorer's. Property predicates read
//!   state through [`StateView`] by name; declare what they read with
//!   [`CheckConfig::with_observed_signals`] /
//!   [`CheckConfig::with_observed_variables`] to unlock reduction over
//!   the rest (by default everything is treated as observed);
//! * **parallel frontier expansion** — [`CheckConfig::with_check_threads`]
//!   expands each BFS level across threads with a serial in-order commit,
//!   so state numbering, traces and verdicts are byte-identical at every
//!   thread count;
//! * **bounded exploration** — [`CheckConfig::with_state_limit`] stops at
//!   a state budget with a structured [`Verdict::Bounded`] instead of an
//!   error (or OOM), and [`CheckConfig::with_bitstate`] opts into lossy
//!   fingerprint-only dedup for sweeps beyond exact-memory reach.

mod explore;
mod fx;
mod por;
mod space;
mod state;
mod step;
#[cfg(test)]
mod tests;

use std::sync::Arc;

use ifsyn_estimate::CostModel;
use ifsyn_spec::System;

use crate::error::SimError;
use crate::program::{Code, Program};

use por::PorTables;
use state::Layout;

pub use explore::{BoundedInfo, CheckStats};
pub use space::{Counterexample, PropertyReport, StateSpace, StateView, Verdict};

/// A nondeterministic environment fault the checker may inject between
/// any two process steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvFault {
    /// Invert one bit of a signal's current value, at most `budget` times
    /// over any single execution.
    FlipBit {
        /// Signal name as declared in the system.
        signal: String,
        /// Bit position (0 = LSB; use 0 for `Ty::Bit`).
        bit: u32,
        /// Maximum strikes along any one path.
        budget: u32,
    },
    /// Force a signal to all-zeros and swallow every later write
    /// (stuck-at-0); strikes at most once.
    StuckLow {
        /// Signal name as declared in the system.
        signal: String,
    },
}

impl EnvFault {
    fn signal_name(&self) -> &str {
        match self {
            EnvFault::FlipBit { signal, .. } | EnvFault::StuckLow { signal } => signal,
        }
    }

    pub(super) fn budget(&self) -> u32 {
        match self {
            EnvFault::FlipBit { budget, .. } => *budget,
            EnvFault::StuckLow { .. } => 1,
        }
    }
}

/// Exploration limits, scaling knobs and the fault environment.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Abort exploration when the reachable set exceeds this many
    /// states. Not enforced when [`CheckConfig::state_limit`] is set —
    /// a budgeted run stops gracefully at the budget instead of
    /// erroring, wherever the budget sits relative to this cap.
    pub max_states: usize,
    /// Abort a single atomic run after this many instructions (guards
    /// zero-cost infinite loops, like the kernel's zero-delay guard).
    pub step_budget: u64,
    /// Environment faults the checker may inject nondeterministically.
    pub faults: Vec<EnvFault>,
    /// Statement costs, identical to the simulator's default model so
    /// checked bounds are comparable to simulated finish times.
    pub cost_model: CostModel,
    /// Worker threads for frontier expansion (1 = serial). Results are
    /// byte-identical at every thread count.
    pub threads: usize,
    /// Stop exploration gracefully after this many discovered states,
    /// reporting [`Verdict::Bounded`] — unlike
    /// [`CheckConfig::max_states`], which treats exhaustion as an error.
    pub state_limit: Option<usize>,
    /// Lossy bitstate dedup over this many fingerprint bits (8..=63).
    /// Invariant and terminal violations found are real (their witness
    /// states were concretely reached); absence of violations proves
    /// nothing. Leads-to failures are reported
    /// [`Verdict::Inconclusive`] (a collision can forge unreachability)
    /// and completion bounds are unavailable.
    pub bitstate_bits: Option<u32>,
    /// Partial-order reduction (on by default; verdict-preserving).
    pub por: bool,
    /// Signals property predicates may read, by name (`None` = all).
    /// Currently advisory: signal-writing steps are never reduced.
    pub observed_signals: Option<Vec<String>>,
    /// Variables property predicates may read, by name (`None` = all).
    /// Narrowing this is what unlocks reduction over private data paths.
    pub observed_variables: Option<Vec<String>>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_states: 1 << 18,
            step_budget: 1 << 20,
            faults: Vec::new(),
            cost_model: CostModel::new(),
            threads: 1,
            state_limit: None,
            bitstate_bits: None,
            por: true,
            observed_signals: None,
            observed_variables: None,
        }
    }
}

impl CheckConfig {
    /// The default configuration: no faults, 2^18 state cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the state cap.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Adds one environment fault.
    pub fn with_fault(mut self, fault: EnvFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the worker-thread count for frontier expansion.
    pub fn with_check_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Stops exploration after `limit` discovered states with a
    /// structured [`Verdict::Bounded`] instead of an error. The budget
    /// supersedes [`CheckConfig::max_states`]: a limit above the hard
    /// cap still ends in a `Bounded` verdict, not an exhaustion error.
    pub fn with_state_limit(mut self, limit: usize) -> Self {
        self.state_limit = Some(limit);
        self
    }

    /// Enables lossy bitstate dedup over `bits` fingerprint bits
    /// (clamped to 8..=63). One-sided for invariant and terminal
    /// checks only; leads-to failures become
    /// [`Verdict::Inconclusive`] and
    /// [`StateSpace::worst_cost_to_quiescence`] returns `None`.
    pub fn with_bitstate(mut self, bits: u32) -> Self {
        self.bitstate_bits = Some(bits);
        self
    }

    /// Disables partial-order reduction.
    pub fn without_por(mut self) -> Self {
        self.por = false;
        self
    }

    /// Declares the signals property predicates may read (all others are
    /// invisible to properties).
    pub fn with_observed_signals(mut self, names: Vec<String>) -> Self {
        self.observed_signals = Some(names);
        self
    }

    /// Declares the variables property predicates may read (all others
    /// are invisible to properties, unlocking reduction over them).
    pub fn with_observed_variables(mut self, names: Vec<String>) -> Self {
        self.observed_variables = Some(names);
        self
    }
}

/// An explicit-state model checker over one compiled system.
pub struct Checker<'a> {
    system: &'a System,
    behaviors: Vec<Arc<Code>>,
    procedures: Vec<Arc<Code>>,
    /// Configured faults with their signal names resolved to indices.
    faults: Vec<(usize, EnvFault)>,
    config: CheckConfig,
    max_regs: u16,
    /// Variable grouping for component interning.
    layout: Layout,
    /// Static purity tables when partial-order reduction is enabled.
    por: Option<PorTables>,
}

impl<'a> Checker<'a> {
    /// Builds a checker with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn new(system: &'a System) -> Result<Self, SimError> {
        Self::with_config(system, CheckConfig::new())
    }

    /// Builds a checker with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation,
    /// a configured fault names an unknown signal, or an observed-state
    /// declaration names an unknown signal or variable.
    pub fn with_config(system: &'a System, config: CheckConfig) -> Result<Self, SimError> {
        system.check().map_err(|e| SimError::InvalidSystem {
            message: e.to_string(),
        })?;
        let program = Program::compile(system, &config.cost_model);
        let max_regs = program
            .behaviors
            .iter()
            .chain(&program.procedures)
            .map(|c| c.max_regs)
            .max()
            .unwrap_or(0);
        let mut faults = Vec::with_capacity(config.faults.len());
        for f in &config.faults {
            let idx = system
                .signals
                .iter()
                .position(|s| s.name == f.signal_name())
                .ok_or_else(|| SimError::InvalidSystem {
                    message: format!("check fault names unknown signal `{}`", f.signal_name()),
                })?;
            faults.push((idx, f.clone()));
        }
        if let Some(names) = &config.observed_signals {
            for name in names {
                if !system.signals.iter().any(|s| &s.name == name) {
                    return Err(SimError::InvalidSystem {
                        message: format!("check observes unknown signal `{name}`"),
                    });
                }
            }
        }
        let mut observed_var = vec![config.observed_variables.is_none(); system.variables.len()];
        if let Some(names) = &config.observed_variables {
            for name in names {
                let idx = system
                    .variables
                    .iter()
                    .position(|v| &v.name == name)
                    .ok_or_else(|| SimError::InvalidSystem {
                        message: format!("check observes unknown variable `{name}`"),
                    })?;
                observed_var[idx] = true;
            }
        }
        let layout = Layout::new(system);
        let por = if config.por {
            let feet = ifsyn_partition::footprints(system);
            let fault_signals: Vec<usize> = faults.iter().map(|(i, _)| *i).collect();
            Some(PorTables::build(
                system,
                &feet,
                &program.behaviors,
                &program.procedures,
                &fault_signals,
                &observed_var,
            ))
        } else {
            None
        };
        Ok(Self {
            system,
            behaviors: program.behaviors,
            procedures: program.procedures,
            faults,
            config,
            max_regs,
            layout,
            por,
        })
    }

    /// Explores the reachable state space by breadth-first search.
    ///
    /// # Errors
    ///
    /// Returns an error when the reachable set exceeds the configured
    /// state cap (unless a state limit is set, which bounds exploration
    /// gracefully instead), an atomic run exceeds the step budget, or
    /// execution hits a runtime evaluation error or failed assertion.
    pub fn explore(&self) -> Result<StateSpace<'_>, SimError> {
        let g = self.explore_graph()?;
        Ok(StateSpace::new(self, g))
    }
}

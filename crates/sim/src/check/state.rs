//! State representations: the mutable scratch states the transition
//! executor runs on, and the compact interned form the explorer stores.
//!
//! The seed explorer kept every reachable state as a full [`CkState`]
//! clone inside a `HashMap<CkState, usize>` — two deep copies per stored
//! state and a SipHash over the whole structure per lookup. Here a stored
//! state is four `u32` component ids ([`CompactState`], 16 bytes):
//!
//! * `sig` — the interned signal valuation (`Box<[Value]>`);
//! * `var` — an interned vector of per-group variable-valuation ids,
//!   grouped by the variables' owning behavior so one process's step
//!   re-interns only its own group;
//! * `ctl` — an interned vector of per-process control ids (the PC
//!   vector), each entry an interned [`CkProc`];
//! * `env` — the interned fault environment (budgets + frozen mask).
//!
//! Interning is canonical (equal components share one id), so two states
//! are equal iff their `CompactState`s are equal — exact dedup compares
//! 16 bytes instead of whole states. A 64-bit fingerprint over the ids
//! shards the dedup table and drives the opt-in lossy bitstate mode.

use std::collections::HashMap;
use std::hash::Hash;

use ifsyn_spec::{System, Ty, Value};

use super::fx::{fx_hash, splitmix, BuildFx};
use crate::process::{CodeRef, ResolvedPlace};

/// One call frame of a checker process: the kernel's frame shape with
/// `Eq + Hash` so whole states can be interned.
#[derive(Debug, PartialEq, Eq, Hash)]
pub(super) struct CkFrame {
    pub code: CodeRef,
    pub pc: usize,
    pub locals: Vec<Value>,
    pub loop_bounds: Vec<i64>,
    pub copyback: Vec<(usize, ResolvedPlace, Ty)>,
}

impl CkFrame {
    pub fn new(code: CodeRef, locals: Vec<Value>) -> Self {
        Self {
            code,
            pc: 0,
            locals,
            loop_bounds: Vec::new(),
            copyback: Vec::new(),
        }
    }
}

impl Clone for CkFrame {
    fn clone(&self) -> Self {
        Self {
            code: self.code,
            pc: self.pc,
            locals: self.locals.clone(),
            loop_bounds: self.loop_bounds.clone(),
            copyback: self.copyback.clone(),
        }
    }

    /// Buffer-reusing copy: scratch states are rebuilt once per explored
    /// state, so keeping the `Vec` spines alive is the difference between
    /// an allocation-free hot loop and three allocations per transition.
    fn clone_from(&mut self, src: &Self) {
        self.code = src.code;
        self.pc = src.pc;
        self.locals.clone_from(&src.locals);
        self.loop_bounds.clone_from(&src.loop_bounds);
        self.copyback.clone_from(&src.copyback);
    }
}

/// Control state of one behavior instance.
#[derive(Debug, PartialEq, Eq, Hash)]
pub(super) struct CkProc {
    pub frames: Vec<CkFrame>,
    pub done: bool,
}

impl Clone for CkProc {
    fn clone(&self) -> Self {
        Self {
            frames: self.frames.clone(),
            done: self.done,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.frames.clone_from(&src.frames);
        self.done = src.done;
    }
}

/// One materialized system state: storage, every process's control
/// point, and the remaining environment-fault budgets. This is the
/// executable *scratch* form the transition executor mutates; the
/// explorer stores only [`CompactState`]s.
#[derive(Debug, PartialEq, Eq)]
pub(super) struct CkState {
    pub signals: Vec<Value>,
    pub vars: Vec<Value>,
    pub procs: Vec<CkProc>,
    /// Remaining strikes per configured fault, in config order.
    pub fault_budget: Vec<u32>,
    /// Signals forced by a stuck fault: later writes are swallowed.
    pub frozen: Vec<bool>,
}

impl Clone for CkState {
    fn clone(&self) -> Self {
        Self {
            signals: self.signals.clone(),
            vars: self.vars.clone(),
            procs: self.procs.clone(),
            fault_budget: self.fault_budget.clone(),
            frozen: self.frozen.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.signals.clone_from(&src.signals);
        self.vars.clone_from(&src.vars);
        self.procs.clone_from(&src.procs);
        self.fault_budget.clone_from(&src.fault_budget);
        self.frozen.clone_from(&src.frozen);
    }
}

/// Static storage layout: variables grouped by owning behavior so one
/// process's step dirties (and re-interns) only its own group.
#[derive(Debug)]
pub(super) struct Layout {
    /// Variable index → group index.
    pub group_of_var: Vec<u32>,
    /// Variable index → position within its group's valuation.
    pub offset_in_group: Vec<u32>,
    /// Group index → member variable indices, ascending.
    pub group_members: Vec<Vec<u32>>,
}

impl Layout {
    pub fn new(system: &System) -> Self {
        let nb = system.behaviors.len();
        // Group per owning behavior, densely renumbered over behaviors
        // that actually own variables (declaration order).
        let mut group_of_behavior = vec![u32::MAX; nb];
        let mut group_members: Vec<Vec<u32>> = Vec::new();
        let mut group_of_var = Vec::with_capacity(system.variables.len());
        let mut offset_in_group = Vec::with_capacity(system.variables.len());
        for (v, decl) in system.variables.iter().enumerate() {
            let b = decl.owner.index();
            if group_of_behavior[b] == u32::MAX {
                group_of_behavior[b] = group_members.len() as u32;
                group_members.push(Vec::new());
            }
            let g = group_of_behavior[b];
            group_of_var.push(g);
            offset_in_group.push(group_members[g as usize].len() as u32);
            group_members[g as usize].push(v as u32);
        }
        Self {
            group_of_var,
            offset_in_group,
            group_members,
        }
    }

    /// Number of variable groups.
    pub fn groups(&self) -> usize {
        self.group_members.len()
    }

    /// Copies one group's valuation out of a flat variable array.
    pub fn extract_group(&self, g: u32, vars: &[Value]) -> Box<[Value]> {
        self.group_members[g as usize]
            .iter()
            .map(|&v| vars[v as usize].clone())
            .collect()
    }
}

/// The interned fault environment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(super) struct EnvComp {
    pub fault_budget: Box<[u32]>,
    pub frozen: Box<[bool]>,
}

enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

/// A canonical component pool: equal values share one id, ids index the
/// insertion-ordered `items` vector. The map is keyed by FxHash with
/// explicit buckets, so a lookup is one hash of the component plus an
/// equality check per (rare) collision.
pub(super) struct Interner<T> {
    items: Vec<T>,
    map: HashMap<u64, Bucket, BuildFx>,
}

impl<T: Hash + Eq> Interner<T> {
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            map: HashMap::default(),
        }
    }

    #[inline]
    pub fn get(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// Interns an owned component, returning its canonical id (the
    /// value is dropped when an equal component is already pooled).
    pub fn intern(&mut self, value: T) -> u32 {
        let h = fx_hash(&value);
        match self.map.entry(h) {
            std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                Bucket::One(id) => {
                    let id = *id;
                    if self.items[id as usize] == value {
                        return id;
                    }
                    let new = Self::push(&mut self.items, value);
                    *e.get_mut() = Bucket::Many(vec![id, new]);
                    new
                }
                Bucket::Many(ids) => {
                    for &id in ids.iter() {
                        if self.items[id as usize] == value {
                            return id;
                        }
                    }
                    let new = Self::push(&mut self.items, value);
                    ids.push(new);
                    new
                }
            },
            std::collections::hash_map::Entry::Vacant(e) => {
                let new = Self::push(&mut self.items, value);
                e.insert(Bucket::One(new));
                new
            }
        }
    }

    fn push(items: &mut Vec<T>, value: T) -> u32 {
        let id = u32::try_from(items.len()).expect("component pool overflow");
        items.push(value);
        id
    }
}

/// All component pools of one exploration.
pub(super) struct Pools {
    /// Signal valuations.
    pub sigs: Interner<Box<[Value]>>,
    /// Per-group variable valuations.
    pub groups: Interner<Box<[Value]>>,
    /// Per-state vectors of group-valuation ids.
    pub varvecs: Interner<Box<[u32]>>,
    /// Per-process control states.
    pub procs: Interner<CkProc>,
    /// Per-state vectors of process-control ids (the PC vector).
    pub ctls: Interner<Box<[u32]>>,
    /// Fault environments.
    pub envs: Interner<EnvComp>,
}

impl Pools {
    pub fn new() -> Self {
        Self {
            sigs: Interner::new(),
            groups: Interner::new(),
            varvecs: Interner::new(),
            procs: Interner::new(),
            ctls: Interner::new(),
            envs: Interner::new(),
        }
    }
}

/// One stored state: four component-pool ids, 16 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(super) struct CompactState {
    pub sig: u32,
    pub var: u32,
    pub ctl: u32,
    pub env: u32,
}

impl CompactState {
    /// 64-bit fingerprint over the component ids: shards the dedup
    /// table, and is the whole identity in bitstate mode.
    #[inline]
    pub fn fingerprint(self) -> u64 {
        let a = splitmix(u64::from(self.sig) | (u64::from(self.var) << 32));
        splitmix(a ^ (u64::from(self.ctl) | (u64::from(self.env) << 32)))
    }
}

/// Dedup-table shard count (indexed by fingerprint high bits).
const DEDUP_SHARDS: usize = 16;

#[inline]
fn shard_of(fp: u64) -> usize {
    (fp >> 48) as usize & (DEDUP_SHARDS - 1)
}

/// The visited-state index, sharded by fingerprint.
///
/// `Exact` maps the full 16-byte [`CompactState`] (collision-free, since
/// interned ids are canonical). `Bitstate` keys only the masked 64-bit
/// fingerprint: distinct states whose masked fingerprints collide are
/// merged, so exploration becomes a lossy sweep — any violation found is
/// real, but absence of one proves nothing (see the ROBUSTNESS docs).
pub(super) enum Dedup {
    Exact(Vec<HashMap<CompactState, u32, BuildFx>>),
    Bitstate {
        mask: u64,
        shards: Vec<HashMap<u64, u32, BuildFx>>,
    },
}

impl Dedup {
    pub fn exact() -> Self {
        Dedup::Exact((0..DEDUP_SHARDS).map(|_| HashMap::default()).collect())
    }

    pub fn bitstate(bits: u32) -> Self {
        let bits = bits.clamp(8, 63);
        Dedup::Bitstate {
            mask: (1u64 << bits) - 1,
            shards: (0..DEDUP_SHARDS).map(|_| HashMap::default()).collect(),
        }
    }

    /// Looks up a state without inserting.
    #[inline]
    pub fn probe(&self, cs: CompactState, fp: u64) -> Option<u32> {
        match self {
            Dedup::Exact(shards) => shards[shard_of(fp)].get(&cs).copied(),
            Dedup::Bitstate { mask, shards } => shards[shard_of(fp)].get(&(fp & mask)).copied(),
        }
    }

    /// Records a newly discovered state's index.
    #[inline]
    pub fn insert(&mut self, cs: CompactState, fp: u64, id: u32) {
        match self {
            Dedup::Exact(shards) => {
                shards[shard_of(fp)].insert(cs, id);
            }
            Dedup::Bitstate { mask, shards } => {
                shards[shard_of(fp)].insert(fp & *mask, id);
            }
        }
    }
}

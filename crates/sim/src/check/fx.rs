//! A fast non-cryptographic hasher for the checker's hot dedup paths.
//!
//! The seed explorer keyed its state index with the standard library's
//! SipHash — robust against adversarial keys, but several times slower
//! than necessary for hashing interned component ids and small value
//! vectors millions of times per run. This is the Firefox `FxHasher`
//! recipe (rotate, xor, multiply by a 64-bit constant), processed in
//! 8-byte chunks; model-checker inputs are not attacker-controlled, so
//! DoS resistance buys nothing here.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: fast word-at-a-time mixing for trusted keys.
#[derive(Default)]
pub(super) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_ne_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub(super) type BuildFx = BuildHasherDefault<FxHasher>;

/// Hashes one value with [`FxHasher`].
#[inline]
pub(super) fn fx_hash<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// SplitMix64 finalizer: diffuses component ids into a 64-bit state
/// fingerprint for dedup sharding and bitstate hashing.
#[inline]
pub(super) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

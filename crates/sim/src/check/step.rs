//! The atomic-run transition executor.
//!
//! A verbatim port of the seed checker's semantics — `run_one` runs one
//! process from its control point to its next scheduling point,
//! `release_waiters` eagerly advances every process parked at a
//! now-satisfied level-sensitive wait — with two mechanical changes for
//! the scaled explorer:
//!
//! * **scratch discipline** — instead of cloning the source state on
//!   every call, `run_one` copies into a caller-owned scratch state with
//!   buffer-reusing [`Clone::clone_from`], and the register file is
//!   reused across all runs of a worker (the seed allocated one per
//!   call, including for every waiter-release sweep);
//! * **effect tracking** — every write is recorded in a [`RunFx`]: which
//!   variable groups went dirty, whether any signal was stored, which
//!   processes a release sweep advanced, and whether every executed
//!   instruction was statically pure. The explorer uses the effects to
//!   re-intern only dirty components and to validate ample candidates.

use ifsyn_spec::{ParamMode, Ty, Value};

use crate::error::SimError;
use crate::eval::{coerce, EvalCtx};
use crate::exec::{eval_code, CArg, CPath, CPathStep, CPlace, CRoot, ExprCode, RegFile};
use crate::kernel::{untyped_place_error, write_steps};
use crate::process::{CodeRef, ResolvedPlace, Root, Step};
use crate::program::{Code, Instr, WaitSpec};

use super::state::{CkFrame, CkProc, CkState, Layout};
use super::Checker;

/// Effects of one atomic run (plus its waiter-release sweep), recorded
/// by the write paths so the explorer can re-intern only what changed
/// and validate partial-order-reduction candidates without comparing
/// whole states.
#[derive(Debug, Default)]
pub(super) struct RunFx {
    /// A signal value was actually stored (frozen-swallowed writes do
    /// not count — they change nothing).
    pub wrote_sig: bool,
    /// Variable groups written, deduplicated, in first-write order.
    pub dirty_groups: Vec<u32>,
    /// Processes a release sweep advanced past a satisfied wait.
    pub released: Vec<u32>,
    /// Every executed instruction was statically pure (meaningful only
    /// when `track` is set).
    pub pure_run: bool,
    /// Whether to consult the purity tables at all.
    pub track: bool,
}

impl RunFx {
    pub fn reset(&mut self, track: bool) {
        self.wrote_sig = false;
        self.dirty_groups.clear();
        self.released.clear();
        self.pure_run = track;
        self.track = track;
    }

    #[inline]
    fn mark_var(&mut self, layout: &Layout, var: usize) {
        let g = layout.group_of_var[var];
        if !self.dirty_groups.contains(&g) {
            self.dirty_groups.push(g);
        }
    }
}

enum LeaveOutcome {
    /// Returned into the caller frame; keep running.
    Returned,
    /// Repeating root restarted at pc 0.
    Restarted,
    /// Non-repeating behavior finished.
    Finished,
}

impl<'a> Checker<'a> {
    pub(super) fn block(&self, code: CodeRef) -> &Code {
        match code {
            CodeRef::Behavior(i) => &self.behaviors[i],
            CodeRef::Procedure(i) => &self.procedures[i],
        }
    }

    pub(super) fn initial_state(&self) -> CkState {
        CkState {
            signals: self
                .system
                .signals
                .iter()
                .map(|s| s.initial_value())
                .collect(),
            vars: self
                .system
                .variables
                .iter()
                .map(|v| v.initial_value())
                .collect(),
            procs: (0..self.system.behaviors.len())
                .map(|b| CkProc {
                    frames: vec![CkFrame::new(CodeRef::Behavior(b), Vec::new())],
                    done: false,
                })
                .collect(),
            fault_budget: self.faults.iter().map(|(_, f)| f.budget()).collect(),
            frozen: vec![false; self.system.signals.len()],
        }
    }

    // ---- expression evaluation against a checker state ----

    pub(super) fn eval_owned(
        &self,
        s: &CkState,
        pid: usize,
        code: &ExprCode,
        regs: &mut RegFile,
    ) -> Result<Value, SimError> {
        if let Some(v) = code.const_value() {
            return Ok(v.clone());
        }
        let locals = s.procs[pid]
            .frames
            .last()
            .map_or(&[][..], |f| f.locals.as_slice());
        let ctx = EvalCtx {
            vars: &s.vars,
            signals: &s.signals,
            locals,
        };
        eval_code(&ctx, code, regs).cloned()
    }

    pub(super) fn eval_i64(
        &self,
        s: &CkState,
        pid: usize,
        code: &ExprCode,
        regs: &mut RegFile,
    ) -> Result<i64, SimError> {
        self.eval_owned(s, pid, code, regs)?
            .as_i64()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    pub(super) fn eval_bool(
        &self,
        s: &CkState,
        pid: usize,
        code: &ExprCode,
        regs: &mut RegFile,
    ) -> Result<bool, SimError> {
        self.eval_owned(s, pid, code, regs)?
            .as_bool()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    // ---- place resolution (mirrors the kernel against CkState) ----

    fn local_ty(
        &self,
        s: &CkState,
        pid: usize,
        frame_abs: usize,
        slot: usize,
    ) -> Result<Ty, SimError> {
        match s.procs[pid].frames[frame_abs].code {
            CodeRef::Procedure(p) => {
                let proc = &self.system.procedures[p];
                if slot < proc.slot_count() {
                    Ok(proc.slot_ty(slot).clone())
                } else {
                    Err(SimError::eval(format!("missing local slot {slot}")))
                }
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        }
    }

    fn resolve_cpath(
        &self,
        s: &CkState,
        pid: usize,
        path: &CPath,
        frame_abs: usize,
        regs: &mut RegFile,
    ) -> Result<ResolvedPlace, SimError> {
        let root = match path.root {
            CRoot::Var(i) => Root::Var(i as usize),
            CRoot::Local(slot) => Root::Local {
                frame: frame_abs,
                slot: slot as usize,
            },
        };
        let mut steps = Vec::with_capacity(path.steps.len());
        for st in path.steps.iter() {
            match st {
                CPathStep::Elem(code) => {
                    let i = self.eval_i64(s, pid, code, regs)?;
                    let i = usize::try_from(i)
                        .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                    steps.push(Step::Elem(i));
                }
                CPathStep::Slice(hi, lo) => steps.push(Step::Slice(*hi, *lo)),
                CPathStep::DynSlice(code, width) => {
                    let lo = self.eval_i64(s, pid, code, regs)?;
                    let lo = u32::try_from(lo)
                        .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
                    steps.push(Step::Slice(lo + width - 1, lo));
                }
            }
        }
        Ok(ResolvedPlace { root, steps })
    }

    fn resolve_cplace(
        &self,
        s: &CkState,
        pid: usize,
        place: &CPlace,
        frame_abs: usize,
        regs: &mut RegFile,
    ) -> Result<(ResolvedPlace, Ty), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                Ok((
                    ResolvedPlace {
                        root: Root::Var(*i as usize),
                        steps: Vec::new(),
                    },
                    decl.ty.clone(),
                ))
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let ty = self.local_ty(s, pid, frame_abs, slot)?;
                Ok((
                    ResolvedPlace {
                        root: Root::Local {
                            frame: frame_abs,
                            slot,
                        },
                        steps: Vec::new(),
                    },
                    ty,
                ))
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let rp = self.resolve_cpath(s, pid, path, frame_abs, regs)?;
                Ok((rp, ty))
            }
        }
    }

    pub(super) fn read_resolved(
        &self,
        s: &CkState,
        pid: usize,
        rp: &ResolvedPlace,
    ) -> Result<Value, SimError> {
        let mut cur: &Value = match rp.root {
            Root::Var(i) => s
                .vars
                .get(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => s.procs[pid]
                .frames
                .get(frame)
                .and_then(|f| f.locals.get(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        for (i, step) in rp.steps.iter().enumerate() {
            match step {
                Step::Elem(idx) => match cur {
                    Value::Array(items) => {
                        cur = items.get(*idx).ok_or_else(|| {
                            SimError::eval(format!("array index {idx} out of range"))
                        })?;
                    }
                    other => {
                        return Err(SimError::eval(format!("indexing non-array value {other}")))
                    }
                },
                Step::Slice(hi, lo) => {
                    if i + 1 != rp.steps.len() {
                        return Err(SimError::eval(
                            "slice must be the last projection of a write target".to_string(),
                        ));
                    }
                    let bits = cur.to_bits();
                    if *hi >= bits.width() {
                        return Err(SimError::eval(format!(
                            "slice {hi} downto {lo} out of range for width {}",
                            bits.width()
                        )));
                    }
                    return Ok(Value::Bits(bits.slice(*hi, *lo)));
                }
            }
        }
        Ok(cur.clone())
    }

    pub(super) fn write_resolved(
        &self,
        s: &mut CkState,
        pid: usize,
        rp: &ResolvedPlace,
        value: Value,
        fx: &mut RunFx,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => {
                fx.mark_var(&self.layout, i);
                s.vars
                    .get_mut(i)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?
            }
            Root::Local { frame, slot } => s.procs[pid]
                .frames
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    fn read_cplace(
        &self,
        s: &CkState,
        pid: usize,
        place: &CPlace,
        regs: &mut RegFile,
    ) -> Result<Value, SimError> {
        match place {
            CPlace::Var(i) => s
                .vars
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}"))),
            CPlace::Local(slot) => s.procs[pid]
                .frames
                .last()
                .and_then(|f| f.locals.get(*slot as usize))
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}"))),
            CPlace::Path(path) => {
                let frame_abs = s.procs[pid].frames.len() - 1;
                let rp = self.resolve_cpath(s, pid, path, frame_abs, regs)?;
                self.read_resolved(s, pid, &rp)
            }
        }
    }

    fn write_cplace(
        &self,
        s: &mut CkState,
        pid: usize,
        place: &CPlace,
        value: Value,
        regs: &mut RegFile,
        fx: &mut RunFx,
    ) -> Result<(), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                fx.mark_var(&self.layout, *i as usize);
                s.vars[*i as usize] = coerce(value, &decl.ty);
                Ok(())
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let frame_abs = s.procs[pid].frames.len() - 1;
                let ty = self.local_ty(s, pid, frame_abs, slot)?;
                let v = coerce(value, &ty);
                s.procs[pid].frames[frame_abs].locals[slot] = v;
                Ok(())
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let frame_abs = s.procs[pid].frames.len() - 1;
                let rp = self.resolve_cpath(s, pid, path, frame_abs, regs)?;
                self.write_resolved(s, pid, &rp, coerce(value, &ty), fx)
            }
        }
    }

    /// Applies a signal drive immediately (time-abstracted visibility).
    /// Writes to frozen (stuck) signals are swallowed, mirroring the
    /// fault semantics of [`crate::FaultKind::StuckAt`].
    pub(super) fn write_signal(&self, s: &mut CkState, idx: usize, value: Value, fx: &mut RunFx) {
        if !s.frozen[idx] {
            s.signals[idx] = coerce(value, &self.system.signals[idx].ty);
            fx.wrote_sig = true;
        }
    }

    fn enter_procedure(
        &self,
        s: &mut CkState,
        pid: usize,
        procedure: usize,
        args: &[CArg],
        regs: &mut RegFile,
    ) -> Result<(), SimError> {
        let proc = &self.system.procedures[procedure];
        let caller_frame_abs = s.procs[pid].frames.len() - 1;
        let mut locals = Vec::with_capacity(proc.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&proc.params).enumerate() {
            match (arg, param.mode) {
                (CArg::In(e), ParamMode::In) => {
                    locals.push(coerce(self.eval_owned(s, pid, e, regs)?, &param.ty));
                }
                (CArg::Out(place), ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    let (rp, ty) = self.resolve_cplace(s, pid, place, caller_frame_abs, regs)?;
                    copyback.push((i, rp, ty));
                }
                (CArg::InOut(place), ParamMode::InOut) => {
                    locals.push(coerce(self.read_cplace(s, pid, place, regs)?, &param.ty));
                    let (rp, ty) = self.resolve_cplace(s, pid, place, caller_frame_abs, regs)?;
                    copyback.push((i, rp, ty));
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        proc.name
                    )))
                }
            }
        }
        for l in &proc.locals {
            locals.push(Value::default_of(&l.ty));
        }
        let mut frame = CkFrame::new(CodeRef::Procedure(procedure), locals);
        frame.copyback = copyback;
        s.procs[pid].frames.push(frame);
        Ok(())
    }

    /// Pops the current frame, applying copy-backs.
    fn leave_frame(
        &self,
        s: &mut CkState,
        pid: usize,
        fx: &mut RunFx,
    ) -> Result<LeaveOutcome, SimError> {
        let frame = s.procs[pid].frames.pop().expect("frame");
        for (slot, rp, ty) in &frame.copyback {
            // Copy-back targets were resolved at the call — possibly in
            // an earlier atomic run whose impurity this run never saw —
            // so `Ret`'s static purity row cannot account for them: a
            // copy-back into a shared or observed variable is a visible,
            // cross-process-dependent write and must disqualify the run
            // from standing alone as an ample set.
            if fx.track && fx.pure_run {
                if let Root::Var(v) = rp.root {
                    fx.pure_run = self.por.as_ref().is_some_and(|t| t.copyback_pure(pid, v));
                }
            }
            let v = coerce(frame.locals[*slot].clone(), ty);
            self.write_resolved(s, pid, rp, v, fx)?;
        }
        if s.procs[pid].frames.is_empty() {
            let bidx = pid; // one process per behavior, same index
            if self.system.behaviors[bidx].repeats {
                s.procs[pid]
                    .frames
                    .push(CkFrame::new(CodeRef::Behavior(bidx), Vec::new()));
                Ok(LeaveOutcome::Restarted)
            } else {
                s.procs[pid].done = true;
                Ok(LeaveOutcome::Finished)
            }
        } else {
            Ok(LeaveOutcome::Returned)
        }
    }

    fn channel_write(
        &self,
        s: &mut CkState,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
        fx: &mut RunFx,
    ) -> Result<(), SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        fx.mark_var(&self.layout, var_idx);
        let ty = &self.system.variables[var_idx].ty;
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match ty {
                    Ty::Array { elem, .. } => &**elem,
                    other => other,
                };
                match &mut s.vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => s.vars[var_idx] = coerce(data, ty),
        }
        Ok(())
    }

    fn channel_read(
        &self,
        s: &CkState,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &s.vars[var_idx] {
                    Value::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::eval(format!("channel address {i} out of range"))),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(s.vars[var_idx].clone()),
        }
    }

    // ---- the atomic-run transition executor ----

    /// Runs process `pid` from its current control point in `cur` up to
    /// its next scheduling point, building the successor in the `next`
    /// scratch state and returning the cycle cost.
    ///
    /// Scheduling points: after any cycle-consuming instruction, at an
    /// unsatisfied wait (pc stays at the wait), and after a repeating
    /// root restarts. Returns `Ok(None)` when the process cannot take a
    /// step of the requested kind at all; a returned successor equal to
    /// the source means "blocked with no progress" and is dropped by the
    /// caller (see [`RunFx`] — the explorer detects this without a whole
    /// state comparison).
    ///
    /// With `force_timeout`, the current instruction must be a watchdog
    /// wait whose condition is unsatisfied: the wait is expired (costing
    /// its bound) and execution continues into the re-test/abort code.
    pub(super) fn run_one(
        &self,
        cur: &CkState,
        next: &mut CkState,
        regs: &mut RegFile,
        pid: usize,
        force_timeout: bool,
        fx: &mut RunFx,
    ) -> Result<Option<u64>, SimError> {
        if cur.procs[pid].done {
            return Ok(None);
        }
        next.clone_from(cur);
        let s = next;
        let mut cost: u64 = 0;

        if force_timeout {
            // Watchdog expiries are global-stall transitions, never
            // candidates for reduction.
            fx.pure_run = false;
            let (code_ref, pc) = {
                let f = s.procs[pid].frames.last().expect("frame");
                (f.code, f.pc)
            };
            let expired = match self.block(code_ref).instrs.get(pc) {
                Some(Instr::Wait(WaitSpec::UntilTimeout { cond, cycles })) => {
                    if self.eval_bool(s, pid, &cond.code, regs)? {
                        return Ok(None);
                    }
                    Some(*cycles)
                }
                Some(Instr::Wait(WaitSpec::UntilSignalIsTimeout {
                    signal,
                    value,
                    cycles,
                })) => {
                    if s.signals[signal.index()] == *value {
                        return Ok(None);
                    }
                    Some(*cycles)
                }
                _ => None,
            };
            match expired {
                Some(cycles) => {
                    cost += cycles;
                    s.procs[pid].frames.last_mut().expect("frame").pc = pc + 1;
                }
                None => return Ok(None),
            }
        }

        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.config.step_budget {
                return Err(SimError::eval(format!(
                    "step budget of {} exceeded in `{}` (zero-cost loop without waits?)",
                    self.config.step_budget, self.system.behaviors[pid].name
                )));
            }
            let (code_ref, pc) = {
                let f = s.procs[pid].frames.last().expect("frame");
                (f.code, f.pc)
            };
            let block = self.block(code_ref);
            let instr = block.instrs.get(pc).ok_or_else(|| {
                SimError::eval(format!("pc {pc} out of range in `{}`", block.name))
            })?;
            if fx.track && fx.pure_run {
                fx.pure_run = self.por.as_ref().is_some_and(|t| t.pure(pid, code_ref, pc));
            }
            let set_pc = |s: &mut CkState, npc: usize| {
                s.procs[pid].frames.last_mut().expect("frame").pc = npc;
            };
            match instr {
                Instr::Assign {
                    place,
                    value,
                    cost: c,
                } => {
                    let v = self.eval_owned(s, pid, value, regs)?;
                    self.write_cplace(s, pid, place, v, regs, fx)?;
                    set_pc(s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some(cost));
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost: c,
                } => {
                    let v = self.eval_owned(s, pid, value, regs)?;
                    self.write_signal(s, signal.index(), v, fx);
                    set_pc(s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some(cost));
                    }
                }
                Instr::Jump(target) => set_pc(s, *target),
                Instr::JumpIfNot { cond, target } => {
                    if self.eval_bool(s, pid, cond, regs)? {
                        set_pc(s, pc + 1);
                    } else {
                        set_pc(s, *target);
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let bound = self.eval_i64(s, pid, to, regs)?;
                    let start = self.eval_owned(s, pid, from, regs)?;
                    self.write_cplace(s, pid, var, start, regs, fx)?;
                    let f = s.procs[pid].frames.last_mut().expect("frame");
                    f.loop_bounds.push(bound);
                    f.pc = pc + 1;
                }
                Instr::LoopTest { var, exit } => {
                    let v = self
                        .read_cplace(s, pid, var, regs)?
                        .as_i64()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    let f = s.procs[pid].frames.last_mut().expect("frame");
                    let bound = *f
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        f.loop_bounds.pop();
                        f.pc = *exit;
                    } else {
                        f.pc = pc + 1;
                    }
                }
                Instr::LoopIncr { var, body, exit } => {
                    let (v, width) = {
                        let cur_v = self.read_cplace(s, pid, var, regs)?;
                        let v = cur_v.as_i64().map_err(|e| SimError::eval(e.to_string()))?;
                        let width = match &cur_v {
                            Value::Int { width, .. } => *width,
                            other => other.ty().bit_width(),
                        };
                        (v, width)
                    };
                    self.write_cplace(s, pid, var, Value::int(v + 1, width.max(1)), regs, fx)?;
                    let f = s.procs[pid].frames.last_mut().expect("frame");
                    let bound = *f
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v + 1 > bound {
                        f.loop_bounds.pop();
                        f.pc = *exit;
                    } else {
                        f.pc = *body;
                    }
                }
                Instr::Wait(spec) => match spec {
                    WaitSpec::ForCycles(n) => {
                        set_pc(s, pc + 1);
                        if *n > 0 {
                            cost += *n;
                            return Ok(Some(cost));
                        }
                    }
                    // Event-sensitive waits are abstracted as a plain
                    // scheduling point: the process is resumable whenever
                    // the scheduler picks it (generated protocol code
                    // never uses bare `wait on`).
                    WaitSpec::OnSignals(_) => {
                        set_pc(s, pc + 1);
                        return Ok(Some(cost));
                    }
                    WaitSpec::Until(cond) | WaitSpec::UntilTimeout { cond, .. } => {
                        if self.eval_bool(s, pid, &cond.code, regs)? {
                            set_pc(s, pc + 1);
                        } else {
                            // Blocked: pc stays at the wait. The watchdog
                            // variant expires only via `force_timeout`.
                            return Ok(Some(cost));
                        }
                    }
                    WaitSpec::UntilSignalIs { signal, value }
                    | WaitSpec::UntilSignalIsTimeout { signal, value, .. } => {
                        if s.signals[signal.index()] == *value {
                            set_pc(s, pc + 1);
                        } else {
                            return Ok(Some(cost));
                        }
                    }
                },
                Instr::Call { procedure, args } => {
                    set_pc(s, pc + 1);
                    self.enter_procedure(s, pid, *procedure, args, regs)?;
                }
                Instr::Ret => match self.leave_frame(s, pid, fx)? {
                    LeaveOutcome::Returned => {}
                    // Yield at a restart so zero-cost repeating bodies
                    // bound every atomic run.
                    LeaveOutcome::Restarted | LeaveOutcome::Finished => {
                        return Ok(Some(cost));
                    }
                },
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost: c,
                } => {
                    let a = match addr {
                        Some(code) => Some(self.eval_i64(s, pid, code, regs)?),
                        None => None,
                    };
                    let v = self.eval_owned(s, pid, data, regs)?;
                    self.channel_write(s, *channel, a, v, fx)?;
                    set_pc(s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some(cost));
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost: c,
                } => {
                    let a = match addr {
                        Some(code) => Some(self.eval_i64(s, pid, code, regs)?),
                        None => None,
                    };
                    let v = self.channel_read(s, *channel, a)?;
                    self.write_cplace(s, pid, target, v, regs, fx)?;
                    set_pc(s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some(cost));
                    }
                }
                Instr::Consume { cycles } => {
                    set_pc(s, pc + 1);
                    if *cycles > 0 {
                        cost += *cycles;
                        return Ok(Some(cost));
                    }
                }
                Instr::Assert { cond, note } => {
                    if !self.eval_bool(s, pid, cond, regs)? {
                        return Err(SimError::AssertionFailed {
                            behavior: self.system.behaviors[pid].name.clone(),
                            note: note.clone(),
                            time: 0,
                        });
                    }
                    set_pc(s, pc + 1);
                }
            }
        }
    }

    /// Advances every process parked at a now-satisfied level-sensitive
    /// wait, chaining through consecutive satisfied waits.
    ///
    /// The kernel's event loop wakes every waiter on a signal the moment
    /// it changes, so a waiter can never sleep through a pulse. The
    /// interleaved transition relation must mirror that by re-arming
    /// waiters eagerly after each write-carrying transition — not when
    /// the scheduler next happens to pick them — or it invents spurious
    /// missed-pulse deadlocks the synchronous kernel cannot exhibit.
    /// Watchdog-bounded waits release along their success path; the
    /// timeout branch remains reachable only via `force_timeout`.
    ///
    /// Every advanced process is recorded in `fx.released`.
    pub(super) fn release_waiters(
        &self,
        s: &mut CkState,
        regs: &mut RegFile,
        fx: &mut RunFx,
    ) -> Result<(), SimError> {
        for pid in 0..s.procs.len() {
            let mut advanced = false;
            loop {
                if s.procs[pid].done {
                    break;
                }
                let Some(f) = s.procs[pid].frames.last() else {
                    break;
                };
                let (code, pc) = (f.code, f.pc);
                let satisfied = match self.block(code).instrs.get(pc) {
                    Some(Instr::Wait(
                        WaitSpec::Until(cond) | WaitSpec::UntilTimeout { cond, .. },
                    )) => self.eval_bool(s, pid, &cond.code, regs)?,
                    Some(Instr::Wait(
                        WaitSpec::UntilSignalIs { signal, value }
                        | WaitSpec::UntilSignalIsTimeout { signal, value, .. },
                    )) => s.signals[signal.index()] == *value,
                    _ => false,
                };
                if !satisfied {
                    break;
                }
                s.procs[pid].frames.last_mut().expect("frame").pc = pc + 1;
                advanced = true;
            }
            if advanced {
                fx.released.push(pid as u32);
            }
        }
        Ok(())
    }
}

use super::*;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{Arg, ParamMode, Procedure, System, Ty, Value};

/// Two-phase handshake: `P` raises REQ and waits for ACK; `C` waits
/// for REQ and raises ACK.
fn handshake() -> System {
    let mut sys = System::new("hs");
    let m = sys.add_module("chip");
    let p = sys.add_behavior("P", m);
    let c = sys.add_behavior("C", m);
    let req = sys.add_signal("REQ", Ty::Bit);
    let ack = sys.add_signal("ACK", Ty::Bit);
    sys.behavior_mut(p).body = vec![
        drive(req, bit_const(true)),
        wait_until(eq(signal(ack), bit_const(true))),
        drive(req, bit_const(false)),
    ];
    sys.behavior_mut(c).body = vec![
        wait_until(eq(signal(req), bit_const(true))),
        drive(ack, bit_const(true)),
    ];
    sys
}

#[test]
fn handshake_completes_on_every_schedule() {
    let sys = handshake();
    let ck = Checker::new(&sys).unwrap();
    let ss = ck.explore().unwrap();
    assert!(ss.state_count() > 1);
    assert!(ss.terminal_count() >= 1);
    let report = ss.check_terminal("handshake completes", |v| v.all_done());
    assert!(report.holds, "{report}");
    assert_eq!(report.verdict, Verdict::Pass);
}

#[test]
fn cross_wait_deadlock_is_found_with_cycle() {
    let mut sys = System::new("dl");
    let m = sys.add_module("chip");
    let p = sys.add_behavior("P", m);
    let c = sys.add_behavior("C", m);
    let req = sys.add_signal("REQ", Ty::Bit);
    let ack = sys.add_signal("ACK", Ty::Bit);
    // Both sides wait before driving: classic circular wait.
    sys.behavior_mut(p).body = vec![
        wait_until(eq(signal(ack), bit_const(true))),
        drive(req, bit_const(true)),
    ];
    sys.behavior_mut(c).body = vec![
        wait_until(eq(signal(req), bit_const(true))),
        drive(ack, bit_const(true)),
    ];
    let ck = Checker::new(&sys).unwrap();
    let ss = ck.explore().unwrap();
    let report = ss.check_terminal("completes", |v| v.all_done());
    assert!(!report.holds);
    assert_eq!(report.verdict, Verdict::Fail);
    let cex = report.counterexample.expect("counterexample");
    let diag = cex.diagnosis.expect("diagnosis");
    assert_eq!(diag.blocked.len(), 2);
    let cycle = diag.cycles.first().expect("wait-for cycle");
    assert!(cycle.contains(&"P".to_string()) && cycle.contains(&"C".to_string()));
}

#[test]
fn interleavings_reach_joint_state_and_bound_is_exact() {
    let mut sys = System::new("diamond");
    let m = sys.add_module("chip");
    let p1 = sys.add_behavior("P1", m);
    let p2 = sys.add_behavior("P2", m);
    let a = sys.add_variable("A", Ty::Int(8), p1);
    let b = sys.add_variable("B", Ty::Int(8), p2);
    sys.behavior_mut(p1).body = vec![assign(var(a), int_const(1, 8))];
    sys.behavior_mut(p2).body = vec![assign(var(b), int_const(1, 8))];
    let ck = Checker::new(&sys).unwrap();
    let ss = ck.explore().unwrap();
    let both_set = |v: &StateView<'_>| {
        v.variable("A").unwrap().as_i64().unwrap() == 1
            && v.variable("B").unwrap().as_i64().unwrap() == 1
    };
    let report = ss.check_invariant("never both set", |v| !both_set(v));
    assert!(!report.holds, "the joint state must be reachable");
    // Two unit-cost assigns on every maximal path.
    assert_eq!(ss.worst_cost_to_quiescence(), Some(2));
}

#[test]
fn repeating_server_eventually_grants() {
    let mut sys = System::new("grant");
    let m = sys.add_module("chip");
    let cl = sys.add_behavior("CLIENT", m);
    let sv = sys.add_behavior("SERVER", m);
    let req = sys.add_signal("REQ", Ty::Bit);
    let gnt = sys.add_signal("GNT", Ty::Bit);
    sys.behavior_mut(cl).body = vec![
        drive(req, bit_const(true)),
        wait_until(eq(signal(gnt), bit_const(true))),
        drive(req, bit_const(false)),
    ];
    sys.behavior_mut(sv).body = vec![
        wait_until(eq(signal(req), bit_const(true))),
        drive(gnt, bit_const(true)),
        wait_until(eq(signal(req), bit_const(false))),
        drive(gnt, bit_const(false)),
    ];
    sys.behavior_mut(sv).repeats = true;
    let ck = Checker::new(&sys).unwrap();
    let ss = ck.explore().unwrap();
    let report = ss.check_leads_to(
        "pending request is eventually granted",
        |v| v.signal_high("REQ") && !v.signal_high("GNT"),
        |v| v.signal_high("GNT"),
    );
    assert!(report.holds, "{report}");
}

#[test]
fn watchdog_expires_only_at_global_stall() {
    let mut sys = System::new("wd");
    let m = sys.add_module("chip");
    let p = sys.add_behavior("P", m);
    let ack = sys.add_signal("ACK", Ty::Bit);
    let x = sys.add_variable("X", Ty::Int(8), p);
    sys.behavior_mut(p).body = vec![
        wait_until_for(eq(signal(ack), bit_const(true)), 8),
        if_else(
            eq(signal(ack), bit_const(true)),
            vec![assign(var(x), int_const(1, 8))],
            vec![assign(var(x), int_const(2, 8))],
        ),
    ];
    let ck = Checker::new(&sys).unwrap();
    let ss = ck.explore().unwrap();
    // ACK is never driven: the watchdog must fire and the abort
    // branch must run to quiescence on every schedule.
    let report = ss.check_terminal("aborts via watchdog", |v| {
        v.done("P") && v.variable("X").unwrap().as_i64().unwrap() == 2
    });
    assert!(report.holds, "{report}");
    let worst = ss.worst_cost_to_quiescence().expect("bounded");
    assert!(
        worst >= 8,
        "watchdog bound {worst} must include the timeout"
    );
}

#[test]
fn flip_bit_fault_wakes_a_blocked_waiter() {
    let build = || {
        let mut sys = System::new("flip");
        let m = sys.add_module("chip");
        let p = sys.add_behavior("P", m);
        let ack = sys.add_signal("ACK", Ty::Bit);
        let x = sys.add_variable("X", Ty::Int(8), p);
        sys.behavior_mut(p).body = vec![
            wait_until(eq(signal(ack), bit_const(true))),
            assign(var(x), int_const(1, 8)),
        ];
        sys
    };
    let sys = build();
    let ck = Checker::new(&sys).unwrap();
    let ss = ck.explore().unwrap();
    let x_zero = |v: &StateView<'_>| v.variable("X").unwrap().as_i64().unwrap() == 0;
    assert!(ss.check_invariant("x stays 0", x_zero).holds);

    let sys = build();
    let config = CheckConfig::new().with_fault(EnvFault::FlipBit {
        signal: "ACK".to_string(),
        bit: 0,
        budget: 1,
    });
    let ck = Checker::with_config(&sys, config).unwrap();
    let ss = ck.explore().unwrap();
    let report = ss.check_invariant("x stays 0", x_zero);
    assert!(!report.holds, "the fault must wake P");
    let cex = report.counterexample.expect("counterexample");
    assert!(
        cex.trace.iter().any(|s| s.contains("flips `ACK`")),
        "trace must show the fault strike: {:?}",
        cex.trace
    );
}

#[test]
fn stuck_low_ack_blocks_the_handshake() {
    let sys = handshake();
    let config = CheckConfig::new().with_fault(EnvFault::StuckLow {
        signal: "ACK".to_string(),
    });
    let ck = Checker::with_config(&sys, config).unwrap();
    let ss = ck.explore().unwrap();
    let report = ss.check_terminal("handshake completes", |v| v.all_done());
    assert!(!report.holds, "a stuck ACK must strand P");
    let diag = report
        .counterexample
        .expect("counterexample")
        .diagnosis
        .expect("diagnosis");
    assert!(diag.blocked.iter().any(|b| b.behavior == "P"));
}

#[test]
fn exploration_is_deterministic() {
    let sys = handshake();
    let ck = Checker::new(&sys).unwrap();
    let a = ck.explore().unwrap();
    let b = ck.explore().unwrap();
    assert_eq!(a.state_count(), b.state_count());
    assert_eq!(a.transition_count(), b.transition_count());
    assert_eq!(a.terminal_count(), b.terminal_count());
    assert_eq!(a.worst_cost_to_quiescence(), b.worst_cost_to_quiescence());
}

#[test]
fn unknown_fault_signal_is_rejected() {
    let sys = handshake();
    let config = CheckConfig::new().with_fault(EnvFault::StuckLow {
        signal: "NOPE".to_string(),
    });
    let err = Checker::with_config(&sys, config)
        .err()
        .expect("must be rejected");
    assert!(err.to_string().contains("NOPE"));
}

// ---- scaling features ----

/// Two behaviors stepping private counters, plus a handshake pair: the
/// counter steps are pure once the counters are declared unobserved.
/// With `deadlock`, P waits before driving — a circular wait with C.
fn mixed_private_with(deadlock: bool) -> System {
    let mut sys = System::new("mix");
    let m = sys.add_module("chip");
    let p = sys.add_behavior("P", m);
    let c = sys.add_behavior("C", m);
    let req = sys.add_signal("REQ", Ty::Bit);
    let ack = sys.add_signal("ACK", Ty::Bit);
    sys.behavior_mut(p).body = if deadlock {
        vec![
            wait_until(eq(signal(ack), bit_const(true))),
            drive(req, bit_const(true)),
        ]
    } else {
        vec![
            drive(req, bit_const(true)),
            wait_until(eq(signal(ack), bit_const(true))),
            drive(req, bit_const(false)),
        ]
    };
    sys.behavior_mut(c).body = vec![
        wait_until(eq(signal(req), bit_const(true))),
        drive(ack, bit_const(true)),
    ];
    let w1 = sys.add_behavior("W1", m);
    let x1 = sys.add_variable("X1", Ty::Int(8), w1);
    sys.behavior_mut(w1).body = (0..6i64)
        .map(|i| assign(var(x1), int_const(i, 8)))
        .collect();
    let w2 = sys.add_behavior("W2", m);
    let x2 = sys.add_variable("X2", Ty::Int(8), w2);
    sys.behavior_mut(w2).body = (0..6i64)
        .map(|i| assign(var(x2), int_const(i, 8)))
        .collect();
    sys
}

fn mixed_private() -> System {
    mixed_private_with(false)
}

#[test]
fn por_reduces_private_interleavings_and_preserves_verdicts() {
    let sys = mixed_private();
    let reduced =
        Checker::with_config(&sys, CheckConfig::new().with_observed_variables(Vec::new())).unwrap();
    let full = Checker::with_config(
        &sys,
        CheckConfig::new()
            .with_observed_variables(Vec::new())
            .without_por(),
    )
    .unwrap();
    let rs = reduced.explore().unwrap();
    let fs = full.explore().unwrap();
    assert!(rs.stats().ample_states > 0, "reduction must fire");
    assert!(
        rs.state_count() < fs.state_count(),
        "reduced {} !< full {}",
        rs.state_count(),
        fs.state_count()
    );
    for ss in [&rs, &fs] {
        let report = ss.check_terminal("all done", |v| v.all_done());
        assert!(report.holds, "{report}");
        let grant = ss.check_leads_to(
            "req leads to ack",
            |v| v.signal_high("REQ"),
            |v| v.signal_high("ACK"),
        );
        assert!(grant.holds, "{grant}");
    }
    assert_eq!(
        rs.worst_cost_to_quiescence(),
        fs.worst_cost_to_quiescence(),
        "reduction must preserve the completion bound"
    );
}

#[test]
fn reduced_failure_reports_match_the_unreduced_explorer() {
    // A deadlocked handshake beside pure private work: reduction fires,
    // the terminal property fails, and the failure report must be
    // byte-identical to a POR-off exploration's (replay delegation).
    let sys = mixed_private_with(true);
    let observed = CheckConfig::new().with_observed_variables(Vec::new());
    let reduced = Checker::with_config(&sys, observed.clone()).unwrap();
    let full = Checker::with_config(&sys, observed.without_por()).unwrap();
    let rs = reduced.explore().unwrap();
    let fs = full.explore().unwrap();
    assert!(rs.stats().ample_states > 0, "reduction must fire");
    let rr = rs.check_terminal("completes", |v| v.all_done());
    let fr = fs.check_terminal("completes", |v| v.all_done());
    assert!(!rr.holds && !fr.holds);
    assert_eq!(rr.to_string(), fr.to_string());
}

#[test]
fn thread_count_does_not_change_the_graph_or_reports() {
    let sys = mixed_private();
    let explore = |threads: usize| {
        let ck =
            Checker::with_config(&sys, CheckConfig::new().with_check_threads(threads)).unwrap();
        let ss = ck.explore().unwrap();
        let counts = (ss.state_count(), ss.transition_count(), ss.terminal_count());
        let report = ss
            .check_invariant("x1 stays small", |v| {
                v.variable("X1").unwrap().as_i64().unwrap() < 5
            })
            .to_string();
        (counts, report, ss.worst_cost_to_quiescence())
    };
    let base = explore(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            explore(threads),
            base,
            "threads={threads} must match serial"
        );
    }
}

#[test]
fn bounded_exploration_reports_a_bounded_verdict() {
    let sys = mixed_private();
    let ck = Checker::with_config(&sys, CheckConfig::new().with_state_limit(20)).unwrap();
    let ss = ck.explore().unwrap();
    let info = ss.bounded().expect("exploration must hit the budget");
    assert!(info.frontier > 0);
    assert_eq!(info.limit, 20);
    assert!(ss.state_count() >= 20);
    let report = ss.check_invariant("x1 in range", |v| {
        v.variable("X1").unwrap().as_i64().unwrap() <= 6
    });
    assert!(report.holds);
    assert_eq!(report.verdict, Verdict::Bounded);
    let line = report.to_string();
    assert!(line.starts_with("BOUND"), "{line}");
    assert!(line.contains("state limit 20"), "{line}");
    // A bounded graph cannot certify a completion bound.
    assert_eq!(ss.worst_cost_to_quiescence(), None);
}

/// A procedure with an `out` parameter aimed at a shared variable,
/// returning past an internal scheduling point: the resumed run executes
/// only statically pure instructions plus `Ret`, but its copy-back (a
/// place resolved back at the call) writes the shared variable. Treating
/// that run as an ample singleton would hide every interleaving where
/// `Q` samples the pre-copy-back value from the mid-procedure state.
#[test]
fn por_never_hides_procedure_copyback_writes() {
    let mut sys = System::new("copyback");
    let m = sys.add_module("chip");
    let p = sys.add_behavior("P", m);
    let q = sys.add_behavior("Q", m);
    let a = sys.add_signal("A", Ty::Bit);
    let sh = sys.add_variable("sh", Ty::Int(8), p);
    let r1 = sys.add_variable("r1", Ty::Bit, q);
    let r2 = sys.add_variable_init("r2", Ty::Int(8), q, Value::int(99, 8));
    let mut give = Procedure::new("give_two");
    let out_slot = give.add_param("result", Ty::Int(8), ParamMode::Out);
    give.body = vec![
        assign(local(out_slot), int_const(1, 8)),
        wait_cycles(1), // scheduling point between the call and the copy-back
        assign(local(out_slot), int_const(2, 8)),
    ];
    let give = sys.add_procedure(give);
    sys.behavior_mut(p).body = vec![
        drive(a, bit_const(true)),
        call(give, vec![Arg::Out(var(sh))]),
        wait_cycles(1),
    ];
    sys.behavior_mut(q).body = vec![
        assign(var(r1), signal(a)),
        assign(var(r2), load(var(sh))),
    ];
    // Seeing `A` high with `sh` still 0 requires scheduling Q entirely
    // between P's call and P's copy-back — i.e. from the mid-procedure
    // state, exactly the state a copy-back-blind ample set would commit
    // as a singleton.
    let window = |v: &StateView<'_>| {
        matches!(v.variable("r1"), Some(Value::Bit(true)))
            && v.variable("r2").unwrap().as_i64().unwrap() == 0
    };
    let full = Checker::with_config(&sys, CheckConfig::new().without_por()).unwrap();
    let fs = full.explore().unwrap();
    let fr = fs.check_invariant("window unreachable", |v| !window(v));
    assert!(!fr.holds, "the mid-procedure window must be reachable");
    let reduced = Checker::new(&sys).unwrap();
    let rs = reduced.explore().unwrap();
    let rr = rs.check_invariant("window unreachable", |v| !window(v));
    assert!(!rr.holds, "reduction hid the copy-back write");
    assert_eq!(rr.to_string(), fr.to_string());
}

/// A graceful state budget supersedes the hard `max_states` abort: a
/// `--check-limit` above the cap must end in a `Bounded` verdict, never
/// the exhaustion error (that error fires mid-level, before the budget
/// is even consulted).
#[test]
fn state_limit_supersedes_the_hard_state_cap() {
    let sys = mixed_private();
    // Budget above the cap, space bigger than both: stops at the budget.
    let ck = Checker::with_config(
        &sys,
        CheckConfig::new().with_max_states(20).with_state_limit(50),
    )
    .unwrap();
    let ss = ck.explore().expect("budgeted run must not hit the hard cap");
    let b = ss.bounded().expect("budget must bound the run");
    assert_eq!(b.limit, 50);
    assert!(ss.state_count() >= 50);
    // Budget above the cap, space smaller than the budget: completes.
    let ck = Checker::with_config(
        &sys,
        CheckConfig::new()
            .with_max_states(20)
            .with_state_limit(1_000_000),
    )
    .unwrap();
    let ss = ck.explore().expect("budgeted run must not hit the hard cap");
    assert!(ss.bounded().is_none(), "the space fits the budget");
    assert!(ss.state_count() > 20);
    // Without a budget the hard cap still aborts.
    let ck = Checker::with_config(&sys, CheckConfig::new().with_max_states(20)).unwrap();
    let err = ck.explore().err().expect("hard cap must abort");
    assert!(err.to_string().contains("exceeds 20 states"));
}

/// Bitstate one-sidedness covers invariant/terminal violations (their
/// witness states were concretely reached). A leads-to failure is a
/// *reachability* claim a fingerprint collision can forge, so under
/// bitstate it must surface as INCONC, and no completion bound may be
/// certified.
#[test]
fn bitstate_downgrades_leads_to_failures_to_inconclusive() {
    let mut sys = System::new("nogrant");
    let m = sys.add_module("chip");
    let cl = sys.add_behavior("CLIENT", m);
    let req = sys.add_signal("REQ", Ty::Bit);
    let _gnt = sys.add_signal("GNT", Ty::Bit);
    sys.behavior_mut(cl).body = vec![drive(req, bit_const(true))];
    let premise = |v: &StateView<'_>| v.signal_high("REQ") && !v.signal_high("GNT");
    let goal = |v: &StateView<'_>| v.signal_high("GNT");
    let exact = Checker::new(&sys).unwrap();
    let es = exact.explore().unwrap();
    let er = es.check_leads_to("eventual_grant", premise, goal);
    assert_eq!(er.verdict, Verdict::Fail, "the grant genuinely never comes");
    assert!(er.counterexample.is_some());
    assert!(es.worst_cost_to_quiescence().is_some());

    let lossy = Checker::with_config(&sys, CheckConfig::new().with_bitstate(32)).unwrap();
    let ls = lossy.explore().unwrap();
    let lr = ls.check_leads_to("eventual_grant", premise, goal);
    assert_eq!(lr.verdict, Verdict::Inconclusive);
    assert!(!lr.holds, "inconclusive is not a proof");
    assert!(lr.counterexample.is_none(), "no trace-checkable witness");
    let line = lr.to_string();
    assert!(line.starts_with("INCONC"), "{line}");
    assert_eq!(
        ls.worst_cost_to_quiescence(),
        None,
        "a lossy graph cannot certify a completion bound"
    );
}

#[test]
fn bitstate_mode_explores_the_small_space_exactly() {
    let sys = handshake();
    let exact = Checker::new(&sys).unwrap();
    let lossy = Checker::with_config(&sys, CheckConfig::new().with_bitstate(32)).unwrap();
    let es = exact.explore().unwrap();
    let ls = lossy.explore().unwrap();
    // At 32 fingerprint bits over a handful of states, collisions are
    // (deterministically) absent: the sweep matches the exact graph.
    assert_eq!(es.state_count(), ls.state_count());
    assert!(ls.check_terminal("completes", |v| v.all_done()).holds);
}

#[test]
fn unknown_observed_names_are_rejected() {
    let sys = handshake();
    let err = Checker::with_config(
        &sys,
        CheckConfig::new().with_observed_signals(vec!["NOPE".to_string()]),
    )
    .err()
    .expect("unknown signal must be rejected");
    assert!(err.to_string().contains("NOPE"));
    let err = Checker::with_config(
        &sys,
        CheckConfig::new().with_observed_variables(vec!["NOPE".to_string()]),
    )
    .err()
    .expect("unknown variable must be rejected");
    assert!(err.to_string().contains("NOPE"));
}

#[test]
fn exploration_reuses_scratch_states() {
    let sys = mixed_private();
    let ck = Checker::with_config(&sys, CheckConfig::new().with_check_threads(4)).unwrap();
    let ss = ck.explore().unwrap();
    assert!(ss.state_count() > 100, "need a non-trivial space");
    let allocs = ss.stats().state_allocs;
    assert!(
        allocs < 64,
        "full-state allocations must stay O(threads), got {allocs}"
    );
}

//! Partial-order reduction: static purity tables.
//!
//! The explorer's transition unit is an *atomic run* — one process
//! executed from its control point to its next scheduling point. Two
//! runs commute when they touch disjoint mutable state; when some
//! process has a run that commutes with every run any other process can
//! ever take **and** is invisible to property predicates, exploring that
//! single run from the current state (a singleton *ample set*) reaches
//! the same verdicts as expanding all of them, at a fraction of the
//! states.
//!
//! Whether a run qualifies is decided in two stages:
//!
//! * **statically** (this module): an instruction is *pure* for process
//!   `p` when executing it can only read/write state no other process
//!   ever touches and no property observes — `p`-private unobserved
//!   variables, frame locals, control flow, and reads of signals no
//!   *other* behavior drives and no fault targets. Signal writes are
//!   never pure (they are the inter-process synchronization fabric and
//!   feed eager waiter release). The per-variable privacy and
//!   per-signal writer sets come from the shared
//!   [`ifsyn_partition::footprint`] analysis.
//! * **dynamically** (the explorer): a run is an ample candidate only if
//!   every instruction it executed was statically pure *and* the run
//!   wrote no signal, released no waiter, left the process's `done`
//!   flag unchanged, and every procedure copy-back it applied targeted a
//!   `p`-private unobserved variable (copy-back places are resolved at
//!   the call, possibly in an *earlier* run, so `Ret`'s static row
//!   cannot see them). The static table makes the dynamic check a table
//!   lookup per executed instruction.
//!
//! Soundness notes live in `docs/ROBUSTNESS.md`: conditions C0–C2 follow
//! from purity (commutation + invisibility), the cycle proviso C3 is
//! enforced at commit time by fully re-expanding any state whose ample
//! successor is already visited, and ample sets here are singletons,
//! which preserves branching-time properties (`leads_to`), not just
//! safety.

use std::sync::Arc;

use ifsyn_partition::ProcessFootprint;
use ifsyn_spec::System;

use crate::exec::{CArg, CPlace, CRoot, ExprCode, MicroOp, Src};
use crate::process::CodeRef;
use crate::program::{Code, Instr, WaitSpec};

/// Static instruction-purity tables, one row per process.
///
/// `pure(pid, code, pc)` answers "can executing this instruction, as
/// this process, touch anything another process or a property can see?"
/// conservatively (`false` when in doubt, including out-of-range pcs).
pub(super) struct PorTables {
    tabs: Vec<PidTab>,
    /// Per process, per variable: writing the variable is pure (private
    /// to the process and unobserved). Consulted dynamically for
    /// procedure copy-back writes, whose target places are resolved at
    /// call time and are therefore invisible to `Ret`'s static row.
    var_write_pure: Vec<Box<[bool]>>,
    /// `true` when any instruction anywhere is pure — when `false` the
    /// explorer skips ample scanning entirely.
    pub enabled: bool,
}

struct PidTab {
    /// Purity of the process's own behavior code, by pc.
    behavior: Box<[bool]>,
    /// Purity of every procedure's code when run by this process, by pc.
    procs: Vec<Box<[bool]>>,
}

/// Who can access a variable, according to the static footprints.
#[derive(Clone, Copy, PartialEq)]
enum VarAccess {
    NoOne,
    One(usize),
    Many,
}

struct Purity<'c> {
    system: &'c System,
    /// Per variable: which behaviors' footprints include it.
    var_access: Vec<VarAccess>,
    /// Per signal: which behaviors' footprints can drive it.
    sig_writer: Vec<VarAccess>,
    /// Per signal: `true` when a configured environment fault targets it.
    fault_target: Vec<bool>,
    /// Per variable: `true` when property predicates may observe it.
    observed_var: Vec<bool>,
}

impl Purity<'_> {
    /// A variable is private to `pid` when no other behavior's footprint
    /// includes it (the footprint is a superset of dynamic access, so
    /// this is conservative).
    fn var_private(&self, pid: usize, var: usize) -> bool {
        match self.var_access[var] {
            VarAccess::NoOne => true,
            VarAccess::One(p) => p == pid,
            VarAccess::Many => false,
        }
    }

    /// A signal read is pure for `pid` when no *other* behavior can
    /// drive it and no environment fault can strike it — its value is
    /// then constant with respect to every other transition.
    fn sig_read_pure(&self, pid: usize, sig: usize) -> bool {
        if self.fault_target[sig] {
            return false;
        }
        match self.sig_writer[sig] {
            VarAccess::NoOne => true,
            VarAccess::One(p) => p == pid,
            VarAccess::Many => false,
        }
    }

    fn src_pure(&self, pid: usize, src: Src) -> bool {
        match src {
            Src::Reg(_) | Src::Const(_) | Src::Local(_) => true,
            Src::Signal(s) => self.sig_read_pure(pid, s as usize),
            Src::Var(v) => self.var_private(pid, v as usize),
        }
    }

    fn expr_pure(&self, pid: usize, code: &ExprCode) -> bool {
        if !self.src_pure(pid, code.result) {
            return false;
        }
        code.ops.iter().all(|op| match op {
            MicroOp::Unary { a, .. } | MicroOp::Resize { a, .. } => self.src_pure(pid, *a),
            MicroOp::Binary { a, b, .. } => self.src_pure(pid, *a) && self.src_pure(pid, *b),
            MicroOp::CmpSignalIs { signal, .. } => self.sig_read_pure(pid, *signal as usize),
            MicroOp::Slice { a, .. } => self.src_pure(pid, *a),
            MicroOp::DynSlice { a, offset, .. } => {
                self.src_pure(pid, *a) && self.src_pure(pid, *offset)
            }
            MicroOp::Elem { base, index, .. } => {
                self.src_pure(pid, *base) && self.src_pure(pid, *index)
            }
        })
    }

    /// Purity of a place in *write* position: the written variable must
    /// be private **and** unobserved; index computations are reads.
    fn place_write_pure(&self, pid: usize, place: &CPlace) -> bool {
        let var_ok = |v: u32| self.var_private(pid, v as usize) && !self.observed_var[v as usize];
        match place {
            CPlace::Var(i) => var_ok(*i),
            CPlace::Local(_) => true,
            CPlace::Path(path) => {
                let root_ok = match path.root {
                    CRoot::Var(i) => var_ok(i),
                    CRoot::Local(_) => true,
                };
                root_ok && self.path_steps_pure(pid, path)
            }
        }
    }

    /// Purity of a place in *read* position: privacy suffices (reading
    /// an observed variable changes nothing a property can see).
    fn place_read_pure(&self, pid: usize, place: &CPlace) -> bool {
        match place {
            CPlace::Var(i) => self.var_private(pid, *i as usize),
            CPlace::Local(_) => true,
            CPlace::Path(path) => {
                let root_ok = match path.root {
                    CRoot::Var(i) => self.var_private(pid, i as usize),
                    CRoot::Local(_) => true,
                };
                root_ok && self.path_steps_pure(pid, path)
            }
        }
    }

    fn path_steps_pure(&self, pid: usize, path: &crate::exec::CPath) -> bool {
        use crate::exec::CPathStep;
        path.steps.iter().all(|st| match st {
            CPathStep::Elem(code) | CPathStep::DynSlice(code, _) => self.expr_pure(pid, code),
            CPathStep::Slice(..) => true,
        })
    }

    fn instr_pure(&self, pid: usize, instr: &Instr) -> bool {
        match instr {
            Instr::Assign { place, value, .. } => {
                self.place_write_pure(pid, place) && self.expr_pure(pid, value)
            }
            // Signal writes are the synchronization fabric: visible to
            // waits, waiter release and properties. Never pure.
            Instr::SignalWrite { .. } => false,
            Instr::Jump(_) => true,
            Instr::JumpIfNot { cond, .. } => self.expr_pure(pid, cond),
            Instr::LoopInit { var, from, to } => {
                self.place_write_pure(pid, var)
                    && self.expr_pure(pid, from)
                    && self.expr_pure(pid, to)
            }
            Instr::LoopTest { var, .. } => self.place_read_pure(pid, var),
            Instr::LoopIncr { var, .. } => {
                self.place_read_pure(pid, var) && self.place_write_pure(pid, var)
            }
            // A timed wait only advances the clock-free control point;
            // every condition-bearing wait is a synchronization point.
            Instr::Wait(WaitSpec::ForCycles(_)) => true,
            Instr::Wait(_) => false,
            Instr::Call { args, .. } => args.iter().all(|arg| match arg {
                CArg::In(e) => self.expr_pure(pid, e),
                CArg::Out(p) => self.place_write_pure(pid, p),
                CArg::InOut(p) => self.place_read_pure(pid, p) && self.place_write_pure(pid, p),
            }),
            // A `done` flip on the final return is caught dynamically,
            // and so are out/inout copy-back writes: their targets are
            // resolved at call time, not here, so `leave_frame` checks
            // each one against `var_write_pure` instead.
            Instr::Ret => true,
            Instr::ChannelSend {
                channel,
                addr,
                data,
                ..
            } => {
                let backing = self.system.channel(*channel).variable.index();
                self.var_private(pid, backing)
                    && !self.observed_var[backing]
                    && addr.as_ref().is_none_or(|a| self.expr_pure(pid, a))
                    && self.expr_pure(pid, data)
            }
            Instr::ChannelReceive {
                channel,
                addr,
                target,
                ..
            } => {
                self.var_private(pid, self.system.channel(*channel).variable.index())
                    && addr.as_ref().is_none_or(|a| self.expr_pure(pid, a))
                    && self.place_write_pure(pid, target)
            }
            Instr::Consume { .. } => true,
            // A passing assert reads and moves on; a failing one is a
            // crash, which never reaches the ample check.
            Instr::Assert { cond, .. } => self.expr_pure(pid, cond),
        }
    }
}

impl PorTables {
    /// Builds the purity tables from the shared footprint analysis, the
    /// compiled code, the resolved fault targets and the observed-state
    /// declaration.
    pub fn build(
        system: &System,
        feet: &[ProcessFootprint],
        behaviors: &[Arc<Code>],
        procedures: &[Arc<Code>],
        fault_signals: &[usize],
        observed_var: &[bool],
    ) -> Self {
        let n_vars = system.variables.len();
        let n_sigs = system.signals.len();
        let mut var_access = vec![VarAccess::NoOne; n_vars];
        let mut sig_writer = vec![VarAccess::NoOne; n_sigs];
        for (p, f) in feet.iter().enumerate() {
            for (v, &touches) in f.vars.iter().enumerate() {
                if touches {
                    var_access[v] = match var_access[v] {
                        VarAccess::NoOne => VarAccess::One(p),
                        VarAccess::One(q) if q == p => VarAccess::One(q),
                        _ => VarAccess::Many,
                    };
                }
            }
            for (s, &writes) in f.sig_writes.iter().enumerate() {
                if writes {
                    sig_writer[s] = match sig_writer[s] {
                        VarAccess::NoOne => VarAccess::One(p),
                        VarAccess::One(q) if q == p => VarAccess::One(q),
                        _ => VarAccess::Many,
                    };
                }
            }
        }
        let mut fault_target = vec![false; n_sigs];
        for &s in fault_signals {
            fault_target[s] = true;
        }
        let purity = Purity {
            system,
            var_access,
            sig_writer,
            fault_target,
            observed_var: observed_var.to_vec(),
        };
        let scan = |pid: usize, code: &Code| -> Box<[bool]> {
            code.instrs
                .iter()
                .map(|i| purity.instr_pure(pid, i))
                .collect()
        };
        let tabs: Vec<PidTab> = (0..system.behaviors.len())
            .map(|pid| PidTab {
                behavior: scan(pid, &behaviors[pid]),
                procs: procedures.iter().map(|c| scan(pid, c)).collect(),
            })
            .collect();
        let var_write_pure: Vec<Box<[bool]>> = (0..system.behaviors.len())
            .map(|pid| {
                (0..n_vars)
                    .map(|v| purity.var_private(pid, v) && !purity.observed_var[v])
                    .collect()
            })
            .collect();
        let enabled = tabs
            .iter()
            .any(|t| t.behavior.iter().any(|&b| b) || t.procs.iter().any(|r| r.iter().any(|&b| b)));
        Self {
            tabs,
            var_write_pure,
            enabled,
        }
    }

    /// Whether a copy-back write to `var`, performed by process `pid` at
    /// a procedure return, keeps the run pure: the variable must be
    /// `pid`-private and unobserved, exactly the write-position rule for
    /// statically visible places.
    #[inline]
    pub fn copyback_pure(&self, pid: usize, var: usize) -> bool {
        self.var_write_pure[pid][var]
    }

    /// Whether the instruction at `(code, pc)` is pure for process
    /// `pid`. Conservative: out-of-range or foreign behavior code is
    /// impure.
    #[inline]
    pub fn pure(&self, pid: usize, code: CodeRef, pc: usize) -> bool {
        let tab = &self.tabs[pid];
        let row: &[bool] = match code {
            CodeRef::Behavior(b) => {
                if b != pid {
                    return false;
                }
                &tab.behavior
            }
            CodeRef::Procedure(p) => &tab.procs[p],
        };
        row.get(pc).copied().unwrap_or(false)
    }
}

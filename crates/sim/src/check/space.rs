//! The explored state space and its property-check surface.
//!
//! [`StateSpace`] keeps the seed checker's API — invariants, terminal
//! properties, leads-to properties, worst-cost bounds, counterexample
//! traces with wait diagnoses — over the compact interned graph. Two
//! additions:
//!
//! * **verdicts** — every report carries a [`Verdict`]; a budgeted
//!   exploration that found no violation reports [`Verdict::Bounded`]
//!   (with the budget and unexplored frontier size) instead of
//!   pretending to have proved the property.
//! * **replay** — when the explored graph is *reduced* (partial-order
//!   reduction fired) and a property fails, the whole check is re-run on
//!   a lazily built POR-off replay of the same system. Reduction is
//!   verdict-preserving, so the verdict cannot change; what replay buys
//!   is byte-identical failure reports — the same first-failing state,
//!   trace and state count the seed explorer printed. Passing reports
//!   skip replay entirely (that is where the speed lives); bitstate and
//!   bounded runs never replay (their graphs are intentionally partial,
//!   and their caveats are documented in `docs/ROBUSTNESS.md`).

use std::cell::OnceCell;
use std::collections::VecDeque;
use std::fmt;

use ifsyn_spec::Value;

use crate::diagnose::{find_cycles, BlockedWait, DeadlockDiagnosis};
use crate::exec::RegFile;
use crate::kernel::render_expr;
use crate::program::{Instr, WaitSpec};

use super::explore::{BoundedInfo, CheckStats, Edge, Graph, StepLabel};
use super::state::{CkProc, CkState, CompactState};
use super::{Checker, EnvFault};

/// Read-only view of one explored state, for property predicates.
pub struct StateView<'a> {
    ck: &'a Checker<'a>,
    g: &'a Graph,
    cs: CompactState,
}

impl StateView<'_> {
    /// Current value of a signal, by declared name.
    pub fn signal(&self, name: &str) -> Option<&Value> {
        self.ck
            .system
            .signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| &self.g.pools.sigs.get(self.cs.sig)[i])
    }

    /// `true` when the named bit signal currently holds `'1'`.
    pub fn signal_high(&self, name: &str) -> bool {
        matches!(self.signal(name), Some(Value::Bit(true)))
    }

    /// Current value of a variable, by declared name.
    pub fn variable(&self, name: &str) -> Option<&Value> {
        self.ck
            .system
            .variables
            .iter()
            .position(|v| v.name == name)
            .map(|i| {
                let grp = self.ck.layout.group_of_var[i] as usize;
                let off = self.ck.layout.offset_in_group[i] as usize;
                let gid = self.g.pools.varvecs.get(self.cs.var)[grp];
                &self.g.pools.groups.get(gid)[off]
            })
    }

    fn proc(&self, i: usize) -> &CkProc {
        self.g
            .pools
            .procs
            .get(self.g.pools.ctls.get(self.cs.ctl)[i])
    }

    /// `true` when the named (non-repeating) behavior has finished.
    pub fn done(&self, behavior: &str) -> bool {
        self.ck
            .system
            .behaviors
            .iter()
            .position(|b| b.name == behavior)
            .is_some_and(|i| self.proc(i).done)
    }

    /// `true` when every non-repeating behavior has finished.
    pub fn all_done(&self) -> bool {
        self.ck
            .system
            .behaviors
            .iter()
            .enumerate()
            .all(|(i, b)| b.repeats || self.proc(i).done)
    }

    /// Remaining budget of the fault at the given config index.
    pub fn fault_budget(&self, index: usize) -> Option<u32> {
        self.g
            .pools
            .envs
            .get(self.cs.env)
            .fault_budget
            .get(index)
            .copied()
    }
}

/// How a property check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds over the whole reachable space.
    Pass,
    /// A concrete violation was found.
    Fail,
    /// No violation found, but exploration stopped at the configured
    /// state budget — the unexplored frontier may hide one.
    Bounded,
    /// The check failed on a lossy bitstate graph whose fingerprint
    /// collisions can forge exactly this kind of failure (a merged
    /// successor makes a real goal path invisible): neither a proof nor
    /// a trace-checkable violation. Re-run with exact dedup to confirm.
    Inconclusive,
}

/// The result of checking one property over an explored state space.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// Property name, as given to the check call.
    pub name: String,
    /// `true` when no violation was found (see [`PropertyReport::verdict`]
    /// for whether that constitutes a proof).
    pub holds: bool,
    /// Number of states the check examined.
    pub states: usize,
    /// A concrete violation, when the property fails.
    pub counterexample: Option<Counterexample>,
    /// How the check concluded.
    pub verdict: Verdict,
    /// Budget details when the verdict is [`Verdict::Bounded`].
    pub bounded: Option<BoundedInfo>,
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.verdict {
            Verdict::Pass => write!(f, "PASS  {} ({} states)", self.name, self.states),
            Verdict::Bounded => {
                let b = self.bounded.as_ref().expect("bounded info");
                write!(
                    f,
                    "BOUND {} ({} states explored; state limit {} reached, \
                     {} frontier states unexplored)",
                    self.name, self.states, b.limit, b.frontier
                )
            }
            Verdict::Inconclusive => write!(
                f,
                "INCONC {} ({} states; a bitstate fingerprint collision \
                 can forge this failure — rerun with exact dedup to confirm)",
                self.name, self.states
            ),
            Verdict::Fail => {
                write!(f, "FAIL  {} ({} states)", self.name, self.states)?;
                if let Some(cex) = &self.counterexample {
                    write!(f, "\n{cex}")?;
                }
                Ok(())
            }
        }
    }
}

/// A concrete property violation: the transition path from the initial
/// state to the violating state, plus a wait diagnosis of that state
/// when processes are blocked there.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Transition labels from the initial state to the violation.
    pub trace: Vec<String>,
    /// Total cycle cost along the trace.
    pub cost: u64,
    /// Blocked-wait diagnosis of the violating state, when any process
    /// is suspended there (same shape the simulator's deadlock diagnosis
    /// uses, including wait-for cycles).
    pub diagnosis: Option<DeadlockDiagnosis>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  counterexample ({} steps, {} cycles):",
            self.trace.len(),
            self.cost
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "    {:>3}. {step}", i + 1)?;
        }
        if let Some(d) = &self.diagnosis {
            for line in d.to_string().lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// A POR-off re-exploration of the same system, built lazily the first
/// time a reduced run needs a seed-faithful failure report.
struct Replay<'a> {
    checker: Checker<'a>,
    g: Graph,
}

/// The explored reachable state graph with labeled, costed transitions.
pub struct StateSpace<'a> {
    checker: &'a Checker<'a>,
    g: Graph,
    replay: OnceCell<Option<Box<Replay<'a>>>>,
}

/// One space (main or replay) plus its checker: the common substrate the
/// property checks run on.
struct SpaceRef<'x, 'a> {
    ck: &'x Checker<'a>,
    g: &'x Graph,
}

type Pred<'p> = &'p dyn Fn(&StateView<'_>) -> bool;

impl<'x, 'a> SpaceRef<'x, 'a> {
    fn view_of(&self, i: usize) -> StateView<'x> {
        StateView {
            ck: self.ck,
            g: self.g,
            cs: self.g.states[i],
        }
    }

    fn edges_of(&self, i: usize) -> &'x [Edge] {
        &self.g.edges[self.g.edge_off[i] as usize..self.g.edge_off[i + 1] as usize]
    }

    /// Index of the first discovered-but-unexpanded state (`== n` when
    /// the exploration ran to completion).
    fn explored(&self) -> usize {
        match self.g.bounded {
            Some(b) => self.g.states.len() - b.frontier,
            None => self.g.states.len(),
        }
    }

    fn check_invariant(&self, name: &str, pred: Pred<'_>) -> PropertyReport {
        for i in 0..self.g.states.len() {
            if !pred(&self.view_of(i)) {
                return self.failed(name, i);
            }
        }
        self.passed(name)
    }

    fn check_terminal(&self, name: &str, pred: Pred<'_>) -> PropertyReport {
        if let Some((src, label)) = self.g.errors.first() {
            let mut cex = self.counterexample(*src as usize);
            cex.trace.push(label.clone());
            return PropertyReport {
                name: name.to_string(),
                holds: false,
                states: self.g.states.len(),
                counterexample: Some(cex),
                verdict: Verdict::Fail,
                bounded: None,
            };
        }
        for &i in &self.g.terminals {
            if !pred(&self.view_of(i as usize)) {
                return self.failed(name, i as usize);
            }
        }
        self.passed(name)
    }

    fn check_leads_to(&self, name: &str, premise: Pred<'_>, goal: Pred<'_>) -> PropertyReport {
        let n = self.g.states.len();
        let explored = self.explored();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..explored {
            for e in self.edges_of(i) {
                rev[e.to as usize].push(i as u32);
            }
        }
        let mut reaches = vec![false; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, r) in reaches.iter_mut().enumerate() {
            // A frontier state's continuations are unknown: treat it as
            // goal-satisfying so a budgeted run never reports a
            // violation it has not actually proved (the Bounded verdict
            // carries the uncertainty instead).
            if i >= explored || goal(&self.view_of(i)) {
                *r = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &p in &rev[i] {
                if !reaches[p as usize] {
                    reaches[p as usize] = true;
                    queue.push_back(p as usize);
                }
            }
        }
        for (i, reached) in reaches.iter().enumerate() {
            if !reached && premise(&self.view_of(i)) {
                return self.failed(name, i);
            }
        }
        self.passed(name)
    }

    fn worst_cost_to_quiescence(&self) -> Option<u64> {
        let n = self.g.states.len();
        let mut memo: Vec<u64> = vec![0; n];
        let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = 1;
        while let Some(top) = stack.last_mut() {
            let (v, ei) = (top.0, top.1);
            if ei < self.edges_of(v).len() {
                top.1 += 1;
                let to = self.edges_of(v)[ei].to as usize;
                match color[to] {
                    0 => {
                        color[to] = 1;
                        stack.push((to, 0));
                    }
                    1 => return None, // reachable cycle: unbounded
                    _ => {}
                }
            } else {
                stack.pop();
                color[v] = 2;
                memo[v] = self
                    .edges_of(v)
                    .iter()
                    .map(|e| e.cost + memo[e.to as usize])
                    .max()
                    .unwrap_or(0);
            }
        }
        Some(memo[0])
    }

    fn passed(&self, name: &str) -> PropertyReport {
        PropertyReport {
            name: name.to_string(),
            holds: true,
            states: self.g.states.len(),
            counterexample: None,
            verdict: Verdict::Pass,
            bounded: None,
        }
    }

    fn failed(&self, name: &str, state: usize) -> PropertyReport {
        PropertyReport {
            name: name.to_string(),
            holds: false,
            states: self.g.states.len(),
            counterexample: Some(self.counterexample(state)),
            verdict: Verdict::Fail,
            bounded: None,
        }
    }

    fn render_label(&self, l: StepLabel) -> String {
        match l {
            StepLabel::Run(p) => {
                format!("`{}` runs", self.ck.system.behaviors[p as usize].name)
            }
            StepLabel::Watchdog(p) => format!(
                "watchdog expires in `{}`",
                self.ck.system.behaviors[p as usize].name
            ),
            StepLabel::Fault(fi) => match &self.ck.faults[fi as usize].1 {
                EnvFault::FlipBit { signal, bit, .. } => {
                    format!("environment flips `{signal}` bit {bit}")
                }
                EnvFault::StuckLow { signal } => {
                    format!("environment forces `{signal}` stuck-at-0")
                }
            },
        }
    }

    /// Builds the trace from the initial state to `state` along the BFS
    /// tree, plus a blocked-wait diagnosis of the state itself.
    fn counterexample(&self, state: usize) -> Counterexample {
        let mut trace = Vec::new();
        let mut cost = 0u64;
        let mut cur = state;
        loop {
            let p = self.g.parents[cur];
            if p.pred == u32::MAX {
                break;
            }
            trace.push(self.render_label(p.label));
            cost += p.cost;
            cur = p.pred as usize;
        }
        trace.reverse();
        Counterexample {
            trace,
            cost,
            diagnosis: self.diagnose(state, cost),
        }
    }

    /// Fully materializes one stored state (traces and diagnoses only —
    /// never on the exploration hot path).
    fn materialize(&self, i: usize) -> CkState {
        let cs = self.g.states[i];
        let pools = &self.g.pools;
        let layout = &self.ck.layout;
        let mut vars = vec![Value::Bit(false); self.ck.system.variables.len()];
        for (grp, &gid) in pools.varvecs.get(cs.var).iter().enumerate() {
            let vals = pools.groups.get(gid);
            for (off, &v) in layout.group_members[grp].iter().enumerate() {
                vars[v as usize] = vals[off].clone();
            }
        }
        let env = pools.envs.get(cs.env);
        CkState {
            signals: pools.sigs.get(cs.sig).to_vec(),
            vars,
            procs: pools
                .ctls
                .get(cs.ctl)
                .iter()
                .map(|&p| pools.procs.get(p).clone())
                .collect(),
            fault_budget: env.fault_budget.to_vec(),
            frozen: env.frozen.to_vec(),
        }
    }

    /// Per-process wait diagnosis of one state, in the simulator's
    /// [`DeadlockDiagnosis`] shape; the diagnosis time is the trace cost.
    fn diagnose(&self, state: usize, time: u64) -> Option<DeadlockDiagnosis> {
        let ck = self.ck;
        let st = self.materialize(state);
        let mut regs = RegFile::with_capacity(ck.max_regs as usize);
        // (pid, rendered wait, sensitivity signal indices)
        let mut entries: Vec<(usize, String, Vec<usize>)> = Vec::new();
        for (pid, p) in st.procs.iter().enumerate() {
            if p.done {
                continue;
            }
            let Some(f) = p.frames.last() else { continue };
            let Some(Instr::Wait(spec)) = ck.block(f.code).instrs.get(f.pc) else {
                continue;
            };
            let (satisfied, wait, sens) = match spec {
                WaitSpec::ForCycles(_) | WaitSpec::OnSignals(_) => continue,
                WaitSpec::Until(cond) | WaitSpec::UntilTimeout { cond, .. } => (
                    ck.eval_bool(&st, pid, &cond.code, &mut regs)
                        .unwrap_or(false),
                    format!("wait until {}", render_expr(ck.system, &cond.display)),
                    cond.sensitivity.iter().map(|s| s.index()).collect(),
                ),
                WaitSpec::UntilSignalIs { signal, value }
                | WaitSpec::UntilSignalIsTimeout { signal, value, .. } => (
                    st.signals[signal.index()] == *value,
                    format!(
                        "wait until {} = {value}",
                        ck.system.signals[signal.index()].name
                    ),
                    vec![signal.index()],
                ),
            };
            if !satisfied {
                entries.push((pid, wait, sens));
            }
        }
        if entries.is_empty() {
            return None;
        }
        let blocked = entries
            .iter()
            .map(|(pid, wait, sens)| BlockedWait {
                behavior: ck.system.behaviors[*pid].name.clone(),
                wait: wait.clone(),
                observed: sens
                    .iter()
                    .map(|&s| (ck.system.signals[s].name.clone(), st.signals[s].to_string()))
                    .collect(),
            })
            .collect();
        let writes: Vec<Vec<bool>> = entries
            .iter()
            .map(|(pid, _, _)| self.written_signals(*pid))
            .collect();
        let edges: Vec<Vec<usize>> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, _, sens))| {
                (0..entries.len())
                    .filter(|&j| j != i && sens.iter().any(|&s| writes[j][s]))
                    .collect()
            })
            .collect();
        let cycles = find_cycles(entries.len(), &edges)
            .into_iter()
            .map(|cycle| {
                cycle
                    .into_iter()
                    .map(|i| ck.system.behaviors[entries[i].0].name.clone())
                    .collect()
            })
            .collect();
        Some(DeadlockDiagnosis {
            time,
            blocked,
            cycles,
        })
    }

    /// Signals a behavior's code can drive, including through called
    /// procedures (transitively); indexed by signal index.
    fn written_signals(&self, behavior: usize) -> Vec<bool> {
        let ck = self.ck;
        let mut out = vec![false; ck.system.signals.len()];
        let mut visited = vec![false; ck.procedures.len()];
        let mut stack: Vec<&[Instr]> = vec![&ck.behaviors[behavior].instrs];
        while let Some(instrs) = stack.pop() {
            for instr in instrs {
                match instr {
                    Instr::SignalWrite { signal, .. } => out[signal.index()] = true,
                    Instr::Call { procedure, .. } if !visited[*procedure] => {
                        visited[*procedure] = true;
                        stack.push(&ck.procedures[*procedure].instrs);
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

impl<'a> StateSpace<'a> {
    pub(super) fn new(checker: &'a Checker<'a>, g: Graph) -> Self {
        Self {
            checker,
            g,
            replay: OnceCell::new(),
        }
    }

    fn main(&self) -> SpaceRef<'_, 'a> {
        SpaceRef {
            ck: self.checker,
            g: &self.g,
        }
    }

    /// `true` when the explored graph is exactly the seed explorer's:
    /// no reduction fired, exact dedup, exploration ran to completion.
    fn faithful(&self) -> bool {
        self.g.stats.ample_states == 0
            && self.checker.config.bitstate_bits.is_none()
            && self.g.bounded.is_none()
    }

    /// The POR-off replay space for failure reporting, built on first
    /// use. `None` when replay is unavailable (bitstate or bounded runs,
    /// or the replay exploration itself erroring out — the reduced-space
    /// counterexample, still a real trace, is used instead).
    fn replay_ref(&self) -> Option<SpaceRef<'_, 'a>> {
        let replay = self.replay.get_or_init(|| {
            if self.checker.config.bitstate_bits.is_some() || self.g.bounded.is_some() {
                return None;
            }
            let mut cfg = self.checker.config.clone();
            cfg.por = false;
            let checker = Checker::with_config(self.checker.system, cfg).ok()?;
            let g = checker.explore_graph().ok()?;
            Some(Box::new(Replay { checker, g }))
        });
        replay.as_ref().map(|r| SpaceRef {
            ck: &r.checker,
            g: &r.g,
        })
    }

    /// Applies the bounded verdict to a no-violation report, and routes
    /// failures on a reduced graph through the POR-off replay so failure
    /// reports are byte-identical to the seed explorer's.
    fn resolve(
        &self,
        rep: PropertyReport,
        recheck: impl Fn(&SpaceRef<'_, 'a>) -> PropertyReport,
    ) -> PropertyReport {
        if rep.holds {
            let mut rep = rep;
            if let Some(b) = self.g.bounded {
                rep.verdict = Verdict::Bounded;
                rep.bounded = Some(b);
            }
            return rep;
        }
        if self.faithful() {
            return rep;
        }
        match self.replay_ref() {
            Some(r) => recheck(&r),
            None => rep,
        }
    }

    /// Number of distinct reachable states discovered.
    pub fn state_count(&self) -> usize {
        self.g.states.len()
    }

    /// Number of explored transitions.
    pub fn transition_count(&self) -> usize {
        self.g.edges.len()
    }

    /// Number of terminal (quiescent) states: no process can move and no
    /// watchdog can expire. Fault transitions do not count — a state that
    /// is stuck unless another fault strikes is genuinely stuck.
    pub fn terminal_count(&self) -> usize {
        self.g.terminals.len()
    }

    /// Number of reachable runtime crashes (paths on which a process's
    /// next step hits an evaluation error, e.g. a fault-corrupted address
    /// indexing past an array).
    pub fn error_count(&self) -> usize {
        self.g.errors.len()
    }

    /// The distinct crash labels reachable in the explored space, sorted
    /// and deduplicated. Partial-order reduction preserves this set (a
    /// crash-capable process is never deferred past its enabling state),
    /// so the differential suite can compare reduced and full runs even
    /// though their raw error-path *counts* differ with the number of
    /// interleavings explored.
    pub fn error_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.g.errors.iter().map(|(_, l)| l.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Exploration statistics: reduction and dedup counters, frontier
    /// peak, thread count, allocation discipline.
    pub fn stats(&self) -> &CheckStats {
        &self.g.stats
    }

    /// Budget details when exploration stopped at the configured state
    /// limit instead of exhausting the reachable set.
    pub fn bounded(&self) -> Option<BoundedInfo> {
        self.g.bounded
    }

    /// Checks that `pred` holds in every reachable state.
    pub fn check_invariant(
        &self,
        name: &str,
        pred: impl Fn(&StateView<'_>) -> bool,
    ) -> PropertyReport {
        let rep = self.main().check_invariant(name, &pred);
        self.resolve(rep, |r| r.check_invariant(name, &pred))
    }

    /// Checks that `pred` holds in every terminal (quiescent) state. Any
    /// reachable runtime crash also fails the property — a path that dies
    /// in an evaluation error certainly did not end in a good quiescent
    /// state — with the crashing trace as counterexample.
    pub fn check_terminal(
        &self,
        name: &str,
        pred: impl Fn(&StateView<'_>) -> bool,
    ) -> PropertyReport {
        let rep = self.main().check_terminal(name, &pred);
        self.resolve(rep, |r| r.check_terminal(name, &pred))
    }

    /// Checks `AG(premise → EF goal)`: from every reachable state where
    /// `premise` holds, some continuation reaches a state where `goal`
    /// holds. A violation is a reachable premise-state from which the
    /// goal is unreachable on *every* continuation — the unrecoverable
    /// shape, independent of scheduling luck.
    pub fn check_leads_to(
        &self,
        name: &str,
        premise: impl Fn(&StateView<'_>) -> bool,
        goal: impl Fn(&StateView<'_>) -> bool,
    ) -> PropertyReport {
        let rep = self.main().check_leads_to(name, &premise, &goal);
        let mut rep = self.resolve(rep, |r| r.check_leads_to(name, &premise, &goal));
        // Bitstate collisions merge distinct states, so "the goal is
        // unreachable from this premise state" can be a collision
        // artifact: the colliding successor's real continuations were
        // never explored. Unlike invariant/terminal violations — whose
        // witness states were concretely reached and whose traces
        // replay — a bitstate leads-to failure is not trace-checkable,
        // so it is downgraded to an explicit inconclusive verdict.
        if rep.verdict == Verdict::Fail && self.checker.config.bitstate_bits.is_some() {
            rep.verdict = Verdict::Inconclusive;
            rep.counterexample = None;
        }
        rep
    }

    /// The maximum total cycle cost over all maximal paths from the
    /// initial state, or `None` when a reachable cycle makes the cost
    /// unbounded (or when exploration was budget-bounded — an unexplored
    /// frontier can hide both cycles and costlier paths). For a hardened
    /// protocol this is the checked completion bound: every schedule (and
    /// every in-budget fault pattern) reaches quiescence within the
    /// returned number of cycles. Partial-order reduction preserves the
    /// bound: reduced paths are permutations of full paths with the same
    /// transition multiset, hence the same total cost. Bitstate runs
    /// also return `None`: a fingerprint collision can both hide the
    /// costliest path and forge a spurious cycle, so neither a number
    /// nor an "unbounded" answer would be trustworthy.
    pub fn worst_cost_to_quiescence(&self) -> Option<u64> {
        if self.g.bounded.is_some() || self.checker.config.bitstate_bits.is_some() {
            return None;
        }
        self.main().worst_cost_to_quiescence()
    }
}

//! The exploration engine: level-synchronized breadth-first search with
//! partial-order reduction, interned compact states, optional parallel
//! frontier expansion and a structured state budget.
//!
//! # Determinism
//!
//! The engine expands one BFS level at a time. Expansion of the level's
//! states is side-effect-free (workers own their scratch state and only
//! read the pools), so it can run on any number of threads; all shared
//! mutation — interning, dedup, state numbering, edge/parent recording —
//! happens in a serial *commit* pass that walks the level in state
//! order. Discovery order is therefore exactly the seed's FIFO order,
//! and state numbering, pool-id assignment (hence fingerprints and
//! bitstate collisions), error propagation order and the max-states
//! abort point are all byte-identical at every thread count.
//!
//! # Partial-order reduction
//!
//! During expansion each worker scans processes in pid order; the first
//! run that dynamically qualifies as *ample* (every executed instruction
//! statically pure, no signal written, no waiter released, `done`
//! unchanged, no crash among earlier pids) is returned alone and the
//! remaining transitions — including environment faults — are deferred
//! to the successor. The commit pass enforces the cycle proviso: if an
//! ample successor is already in the dedup table, the source is
//! re-expanded in full, so every cycle in the reduced graph contains a
//! fully expanded state and no transition is deferred forever.

use ifsyn_spec::{BitVec, Value};

use crate::error::SimError;
use crate::eval::coerce;
use crate::exec::RegFile;

use super::state::{CkProc, CkState, CompactState, Dedup, EnvComp, Layout, Pools};
use super::step::RunFx;
use super::{Checker, EnvFault};

/// One transition label, stored compactly and rendered to the seed's
/// exact strings only when a trace is printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum StepLabel {
    /// `\`{behavior}\` runs`.
    Run(u32),
    /// `watchdog expires in \`{behavior}\``.
    Watchdog(u32),
    /// `environment flips …` / `environment forces …`, by fault index.
    Fault(u32),
}

/// One successor, described by its changed components only — the commit
/// pass re-interns exactly these and inherits the rest from the source.
pub(super) struct SuccData {
    pub label: StepLabel,
    pub cost: u64,
    /// Full signal valuation, when any signal was stored.
    sig: Option<Box<[Value]>>,
    /// Dirty variable groups with their new valuations.
    groups: Vec<(u32, Box<[Value]>)>,
    /// Changed process control states.
    procs: Vec<(u32, CkProc)>,
    /// New fault environment, when a fault struck.
    env: Option<EnvComp>,
}

/// Result of expanding one state.
pub(super) enum Expansion {
    /// A single ample transition stands in for the whole successor set.
    Ample(SuccData),
    /// The full successor set, as in the seed.
    Full {
        succs: Vec<SuccData>,
        terminal: bool,
        crashes: Vec<String>,
    },
}

/// A worker's private scratch: two materialized states, a register
/// file and an effect tracker, allocated once and reused for every
/// state the worker expands.
pub(super) struct WorkerCtx {
    cur: CkState,
    next: CkState,
    regs: RegFile,
    fx: RunFx,
}

impl WorkerCtx {
    fn new(checker: &Checker<'_>) -> Self {
        let cur = checker.initial_state();
        let next = cur.clone();
        Self {
            cur,
            next,
            regs: RegFile::with_capacity(checker.max_regs as usize),
            fx: RunFx::default(),
        }
    }

    /// Rebuilds `cur` from a compact state, reusing every buffer.
    fn materialize(&mut self, pools: &Pools, layout: &Layout, cs: CompactState) {
        let s = &mut self.cur;
        s.signals.clear();
        s.signals.extend_from_slice(pools.sigs.get(cs.sig));
        for (g, &gid) in pools.varvecs.get(cs.var).iter().enumerate() {
            let vals = pools.groups.get(gid);
            for (off, &v) in layout.group_members[g].iter().enumerate() {
                s.vars[v as usize].clone_from(&vals[off]);
            }
        }
        for (p, &pid_id) in pools.ctls.get(cs.ctl).iter().enumerate() {
            s.procs[p].clone_from(pools.procs.get(pid_id));
        }
        let env = pools.envs.get(cs.env);
        s.fault_budget.clear();
        s.fault_budget.extend_from_slice(&env.fault_budget);
        s.frozen.clear();
        s.frozen.extend_from_slice(&env.frozen);
    }
}

impl<'a> Checker<'a> {
    fn por_on(&self) -> bool {
        self.por.as_ref().is_some_and(|t| t.enabled)
    }

    /// The hard abort cap on stored states. A graceful state budget
    /// ([`super::CheckConfig::with_state_limit`]) supersedes it: a
    /// budgeted run's contract is a structured `Bounded` verdict, never
    /// an exhaustion error, regardless of where the budget sits relative
    /// to `max_states` (the budget is enforced at level boundaries, so a
    /// lower `max_states` could otherwise abort mid-level first).
    pub(super) fn hard_max_states(&self) -> usize {
        if self.config.state_limit.is_some() {
            usize::MAX
        } else {
            self.config.max_states
        }
    }

    /// Exact progress test replacing the seed's whole-state `state !=
    /// *src` comparison: the tracked effects bound what can differ, so
    /// only the touched components are compared (and usually none are —
    /// an advanced pc or a released waiter decides immediately).
    fn progress(&self, cur: &CkState, next: &CkState, fx: &RunFx, pid: Option<usize>) -> bool {
        if let Some(p) = pid {
            if next.procs[p] != cur.procs[p] {
                return true;
            }
        }
        if !fx.released.is_empty() {
            return true;
        }
        if fx.wrote_sig && next.signals != cur.signals {
            return true;
        }
        fx.dirty_groups.iter().any(|&g| {
            self.layout.group_members[g as usize]
                .iter()
                .any(|&v| next.vars[v as usize] != cur.vars[v as usize])
        })
    }

    /// Packages the changed components of `next` relative to `cur`.
    #[allow(clippy::too_many_arguments)]
    fn extract(
        &self,
        cur: &CkState,
        next: &CkState,
        fx: &RunFx,
        pid: Option<u32>,
        env_changed: bool,
        label: StepLabel,
        cost: u64,
    ) -> SuccData {
        let mut procs = Vec::new();
        let mut note = |p: u32| {
            if next.procs[p as usize] != cur.procs[p as usize]
                && !procs.iter().any(|(q, _)| *q == p)
            {
                procs.push((p, next.procs[p as usize].clone()));
            }
        };
        if let Some(p) = pid {
            note(p);
        }
        for &p in &fx.released {
            note(p);
        }
        SuccData {
            label,
            cost,
            sig: (fx.wrote_sig || env_changed).then(|| next.signals.iter().cloned().collect()),
            groups: fx
                .dirty_groups
                .iter()
                .map(|&g| (g, self.layout.extract_group(g, &next.vars)))
                .collect(),
            procs,
            env: env_changed.then(|| EnvComp {
                fault_budget: next.fault_budget.clone().into_boxed_slice(),
                frozen: next.frozen.clone().into_boxed_slice(),
            }),
        }
    }

    /// Expands one state: the seed's `successors` with the ample-set
    /// shortcut. With `por` set, the first qualifying pure run is
    /// returned alone (later pids unscanned — sound, see the module
    /// docs); otherwise the full successor set is produced in the seed's
    /// order: process runs in pid order, watchdog expiries when nothing
    /// else moves, then budgeted fault strikes in config order.
    fn expand_one(
        &self,
        ctx: &mut WorkerCtx,
        pools: &Pools,
        cs: CompactState,
        por: bool,
    ) -> Result<Expansion, SimError> {
        ctx.materialize(pools, &self.layout, cs);
        let mut succs = Vec::new();
        let mut crashes = Vec::new();
        let mut live = false;
        for pid in 0..ctx.cur.procs.len() {
            ctx.fx.reset(por);
            match self.run_one(
                &ctx.cur,
                &mut ctx.next,
                &mut ctx.regs,
                pid,
                false,
                &mut ctx.fx,
            ) {
                Ok(Some(cost)) => {
                    self.release_waiters(&mut ctx.next, &mut ctx.regs, &mut ctx.fx)?;
                    if self.progress(&ctx.cur, &ctx.next, &ctx.fx, Some(pid)) {
                        live = true;
                        let sd = self.extract(
                            &ctx.cur,
                            &ctx.next,
                            &ctx.fx,
                            Some(pid as u32),
                            false,
                            StepLabel::Run(pid as u32),
                            cost,
                        );
                        if por
                            && crashes.is_empty()
                            && ctx.fx.pure_run
                            && !ctx.fx.wrote_sig
                            && ctx.fx.released.is_empty()
                            && ctx.next.procs[pid].done == ctx.cur.procs[pid].done
                        {
                            return Ok(Expansion::Ample(sd));
                        }
                        succs.push(sd);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    live = true;
                    crashes.push(format!(
                        "`{}` crashes: {e}",
                        self.system.behaviors[pid].name
                    ));
                }
            }
        }
        if !live {
            for pid in 0..ctx.cur.procs.len() {
                ctx.fx.reset(por);
                match self.run_one(
                    &ctx.cur,
                    &mut ctx.next,
                    &mut ctx.regs,
                    pid,
                    true,
                    &mut ctx.fx,
                ) {
                    Ok(Some(cost)) => {
                        self.release_waiters(&mut ctx.next, &mut ctx.regs, &mut ctx.fx)?;
                        if self.progress(&ctx.cur, &ctx.next, &ctx.fx, Some(pid)) {
                            live = true;
                            succs.push(self.extract(
                                &ctx.cur,
                                &ctx.next,
                                &ctx.fx,
                                Some(pid as u32),
                                false,
                                StepLabel::Watchdog(pid as u32),
                                cost,
                            ));
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        live = true;
                        crashes.push(format!(
                            "watchdog expiry in `{}` crashes: {e}",
                            self.system.behaviors[pid].name
                        ));
                    }
                }
            }
        }
        let terminal = !live;
        for (fi, (idx, fault)) in self.faults.iter().enumerate() {
            if ctx.cur.fault_budget[fi] == 0 {
                continue;
            }
            match fault {
                EnvFault::FlipBit { bit, .. } => {
                    if ctx.cur.frozen[*idx] {
                        continue;
                    }
                    let mut bits = ctx.cur.signals[*idx].to_bits();
                    if *bit >= bits.width() {
                        continue;
                    }
                    let ty = ctx.cur.signals[*idx].ty();
                    let inverted = BitVec::from_u64(u64::from(!bits.bit(*bit)), 1);
                    bits.write_slice(*bit, *bit, &inverted);
                    ctx.fx.reset(false);
                    ctx.next.clone_from(&ctx.cur);
                    ctx.next.signals[*idx] = Value::from_bits(&ty, &bits);
                    ctx.next.fault_budget[fi] -= 1;
                    self.release_waiters(&mut ctx.next, &mut ctx.regs, &mut ctx.fx)?;
                    succs.push(self.extract(
                        &ctx.cur,
                        &ctx.next,
                        &ctx.fx,
                        None,
                        true,
                        StepLabel::Fault(fi as u32),
                        0,
                    ));
                }
                EnvFault::StuckLow { .. } => {
                    let ty = &self.system.signals[*idx].ty;
                    ctx.fx.reset(false);
                    ctx.next.clone_from(&ctx.cur);
                    ctx.next.signals[*idx] = coerce(Value::Bit(false), ty);
                    ctx.next.frozen[*idx] = true;
                    ctx.next.fault_budget[fi] -= 1;
                    self.release_waiters(&mut ctx.next, &mut ctx.regs, &mut ctx.fx)?;
                    succs.push(self.extract(
                        &ctx.cur,
                        &ctx.next,
                        &ctx.fx,
                        None,
                        true,
                        StepLabel::Fault(fi as u32),
                        0,
                    ));
                }
            }
        }
        Ok(Expansion::Full {
            succs,
            terminal,
            crashes,
        })
    }
}

/// Exploration statistics, reported on every [`super::StateSpace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct states discovered.
    pub states: usize,
    /// Transitions (edges) recorded.
    pub transitions: usize,
    /// Quiescent (terminal) states.
    pub terminals: usize,
    /// Crash (error) edges recorded.
    pub errors: usize,
    /// Successors that landed on an already-visited state.
    pub dedup_hits: u64,
    /// States expanded through a single ample transition.
    pub ample_states: u64,
    /// States expanded in full.
    pub full_states: u64,
    /// Largest number of discovered-but-unexpanded states after any
    /// level commit.
    pub peak_frontier: usize,
    /// Worker threads used for frontier expansion.
    pub threads: usize,
    /// Full `CkState` materializations allocated over the exploration
    /// (scratch states are reused, so this stays O(threads), not
    /// O(states) — asserted by the perf smoke test).
    pub state_allocs: u64,
}

/// Exploration stopped at the configured state budget instead of
/// exhausting the reachable set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedInfo {
    /// The configured [`super::CheckConfig::with_state_limit`] budget.
    pub limit: usize,
    /// States discovered but never expanded when the budget hit.
    pub frontier: usize,
}

/// A parent-link back-pointer: enough to rebuild any state's discovery
/// path without storing per-state trace strings.
#[derive(Debug, Clone, Copy)]
pub(super) struct Parent {
    /// Predecessor state index (`u32::MAX` for the root).
    pub pred: u32,
    pub label: StepLabel,
    pub cost: u64,
}

/// One transition in the compressed-sparse-row edge list.
#[derive(Debug, Clone, Copy)]
pub(super) struct Edge {
    pub to: u32,
    pub cost: u64,
}

/// The explored (possibly reduced, possibly bounded) state graph.
pub(super) struct Graph {
    pub pools: Pools,
    pub states: Vec<CompactState>,
    pub parents: Vec<Parent>,
    /// Edges of state `i`: `edges[edge_off[i]..edge_off[i + 1]]`.
    pub edges: Vec<Edge>,
    pub edge_off: Vec<u32>,
    pub terminals: Vec<u32>,
    pub errors: Vec<(u32, String)>,
    pub stats: CheckStats,
    pub bounded: Option<BoundedInfo>,
}

/// Serial commit of one full expansion's results.
#[allow(clippy::too_many_arguments)]
fn commit_full(
    checker: &Checker<'_>,
    g: &mut Graph,
    dedup: &mut Dedup,
    si: usize,
    succs: Vec<SuccData>,
    terminal: bool,
    crashes: Vec<String>,
) -> Result<(), SimError> {
    if terminal {
        g.terminals.push(si as u32);
    }
    for label in crashes {
        g.errors.push((si as u32, label));
    }
    for sd in succs {
        let (cs, label, cost) = intern_succ(&mut g.pools, g.states[si], sd);
        let fp = cs.fingerprint();
        let ni = match dedup.probe(cs, fp) {
            Some(i) => {
                g.stats.dedup_hits += 1;
                i
            }
            None => {
                let i = g.states.len();
                if i >= checker.hard_max_states() {
                    return Err(SimError::eval(format!(
                        "reachable state space exceeds {} states; \
                         reduce the system or raise CheckConfig::max_states",
                        checker.config.max_states
                    )));
                }
                g.states.push(cs);
                dedup.insert(cs, fp, i as u32);
                g.parents.push(Parent {
                    pred: si as u32,
                    label,
                    cost,
                });
                i as u32
            }
        };
        g.edges.push(Edge { to: ni, cost });
    }
    Ok(())
}

/// Re-interns a successor's changed components over its source state.
fn intern_succ(
    pools: &mut Pools,
    src: CompactState,
    sd: SuccData,
) -> (CompactState, StepLabel, u64) {
    let SuccData {
        label,
        cost,
        sig,
        groups,
        procs,
        env,
    } = sd;
    let sig_id = match sig {
        Some(v) => pools.sigs.intern(v),
        None => src.sig,
    };
    let var_id = if groups.is_empty() {
        src.var
    } else {
        let mut vv = pools.varvecs.get(src.var).to_vec();
        for (grp, vals) in groups {
            vv[grp as usize] = pools.groups.intern(vals);
        }
        pools.varvecs.intern(vv.into_boxed_slice())
    };
    let ctl_id = if procs.is_empty() {
        src.ctl
    } else {
        let mut cv = pools.ctls.get(src.ctl).to_vec();
        for (p, proc) in procs {
            cv[p as usize] = pools.procs.intern(proc);
        }
        pools.ctls.intern(cv.into_boxed_slice())
    };
    let env_id = match env {
        Some(e) => pools.envs.intern(e),
        None => src.env,
    };
    (
        CompactState {
            sig: sig_id,
            var: var_id,
            ctl: ctl_id,
            env: env_id,
        },
        label,
        cost,
    )
}

/// Interns a fully materialized state (the root).
fn intern_full(pools: &mut Pools, layout: &Layout, s: &CkState) -> CompactState {
    let sig = pools.sigs.intern(s.signals.iter().cloned().collect());
    let var_ids: Box<[u32]> = (0..layout.groups())
        .map(|grp| {
            pools
                .groups
                .intern(layout.extract_group(grp as u32, &s.vars))
        })
        .collect();
    let var = pools.varvecs.intern(var_ids);
    let ctl_ids: Box<[u32]> = s
        .procs
        .iter()
        .map(|p| pools.procs.intern(p.clone()))
        .collect();
    let ctl = pools.ctls.intern(ctl_ids);
    let env = pools.envs.intern(EnvComp {
        fault_budget: s.fault_budget.clone().into_boxed_slice(),
        frozen: s.frozen.clone().into_boxed_slice(),
    });
    CompactState { sig, var, ctl, env }
}

impl<'a> Checker<'a> {
    /// Explores the reachable graph; see [`Checker::explore`] for the
    /// error contract.
    pub(super) fn explore_graph(&self) -> Result<Graph, SimError> {
        let threads = self.config.threads.max(1);
        let por = self.por_on();
        let mut ctxs: Vec<WorkerCtx> = (0..threads).map(|_| WorkerCtx::new(self)).collect();
        let mut state_allocs = 2 * threads as u64;

        let mut g = Graph {
            pools: Pools::new(),
            states: Vec::new(),
            parents: Vec::new(),
            edges: Vec::new(),
            edge_off: vec![0],
            terminals: Vec::new(),
            errors: Vec::new(),
            stats: CheckStats {
                threads,
                ..CheckStats::default()
            },
            bounded: None,
        };
        let mut dedup = match self.config.bitstate_bits {
            Some(bits) => Dedup::bitstate(bits),
            None => Dedup::exact(),
        };

        let mut init = self.initial_state();
        state_allocs += 1;
        {
            let ctx = &mut ctxs[0];
            ctx.fx.reset(false);
            self.release_waiters(&mut init, &mut ctx.regs, &mut ctx.fx)?;
        }
        let init_cs = intern_full(&mut g.pools, &self.layout, &init);
        dedup.insert(init_cs, init_cs.fingerprint(), 0);
        g.states.push(init_cs);
        g.parents.push(Parent {
            pred: u32::MAX,
            label: StepLabel::Run(0),
            cost: 0,
        });

        let (mut l0, mut l1) = (0usize, 1usize);
        'levels: while l0 < l1 {
            let level_len = l1 - l0;
            let results: Vec<Result<Expansion, SimError>> =
                if threads == 1 || level_len < threads * 8 {
                    let ctx = &mut ctxs[0];
                    let pools = &g.pools;
                    g.states[l0..l1]
                        .iter()
                        .map(|&cs| self.expand_one(ctx, pools, cs, por))
                        .collect()
                } else {
                    let chunk = level_len.div_ceil(threads);
                    let level = &g.states[l0..l1];
                    let pools = &g.pools;
                    std::thread::scope(|sc| {
                        let mut handles = Vec::with_capacity(threads);
                        for (t, ctx) in ctxs.iter_mut().enumerate() {
                            let start = t * chunk;
                            if start >= level_len {
                                break;
                            }
                            let span = &level[start..(start + chunk).min(level_len)];
                            handles.push(sc.spawn(move || {
                                span.iter()
                                    .map(|&cs| self.expand_one(ctx, pools, cs, por))
                                    .collect::<Vec<_>>()
                            }));
                        }
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("checker worker panicked"))
                            .collect()
                    })
                };

            for (k, res) in results.into_iter().enumerate() {
                let si = l0 + k;
                match res? {
                    Expansion::Ample(sd) => {
                        let (cs, label, cost) = intern_succ(&mut g.pools, g.states[si], sd);
                        let fp = cs.fingerprint();
                        if dedup.probe(cs, fp).is_some() {
                            // Cycle proviso: the deferred transitions
                            // would never be explored along this lasso —
                            // re-expand the source in full, serially.
                            let exp = {
                                let ctx = &mut ctxs[0];
                                let pools = &g.pools;
                                self.expand_one(ctx, pools, g.states[si], false)?
                            };
                            let Expansion::Full {
                                succs,
                                terminal,
                                crashes,
                            } = exp
                            else {
                                unreachable!("POR disabled for proviso re-expansion")
                            };
                            commit_full(self, &mut g, &mut dedup, si, succs, terminal, crashes)?;
                            g.stats.full_states += 1;
                        } else {
                            let i = g.states.len();
                            if i >= self.hard_max_states() {
                                return Err(SimError::eval(format!(
                                    "reachable state space exceeds {} states; \
                                     reduce the system or raise CheckConfig::max_states",
                                    self.config.max_states
                                )));
                            }
                            g.states.push(cs);
                            dedup.insert(cs, fp, i as u32);
                            g.parents.push(Parent {
                                pred: si as u32,
                                label,
                                cost,
                            });
                            g.edges.push(Edge { to: i as u32, cost });
                            g.stats.ample_states += 1;
                        }
                    }
                    Expansion::Full {
                        succs,
                        terminal,
                        crashes,
                    } => {
                        commit_full(self, &mut g, &mut dedup, si, succs, terminal, crashes)?;
                        g.stats.full_states += 1;
                    }
                }
                g.edge_off.push(g.edges.len() as u32);
            }

            let frontier = g.states.len() - l1;
            g.stats.peak_frontier = g.stats.peak_frontier.max(frontier);
            l0 = l1;
            l1 = g.states.len();
            if let Some(limit) = self.config.state_limit {
                if g.states.len() >= limit && l0 < l1 {
                    g.bounded = Some(BoundedInfo {
                        limit,
                        frontier: l1 - l0,
                    });
                    break 'levels;
                }
            }
        }

        // Pad the CSR offsets so unexpanded (frontier) states index an
        // empty edge range.
        let total = g.edges.len() as u32;
        g.edge_off.resize(g.states.len() + 1, total);
        g.stats.states = g.states.len();
        g.stats.transitions = g.edges.len();
        g.stats.terminals = g.terminals.len();
        g.stats.errors = g.errors.len();
        g.stats.state_allocs = state_allocs;
        Ok(g)
    }
}

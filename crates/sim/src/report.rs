//! Simulation results.

use ifsyn_spec::{BehaviorId, SignalId, Value, VarId};

use crate::fault::InjectedFault;

/// One recorded signal change.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the change.
    pub time: u64,
    /// The signal that changed.
    pub signal: SignalId,
    /// The new value.
    pub value: Value,
}

/// Outcome of one behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorOutcome {
    /// Behavior name.
    pub name: String,
    /// Finish time (non-repeating behaviors that completed).
    pub finish_time: Option<u64>,
    /// Completed body iterations (repeating behaviors).
    pub iterations: u64,
    /// `true` if the behavior ended the run suspended on a wait.
    pub blocked: bool,
    /// `true` for repeating behaviors (servers), whose idle blocking at
    /// the end of a run is expected rather than suspicious.
    pub repeats: bool,
    /// Clock cycles consumed by costed instructions.
    pub active_cycles: u64,
    /// Total instructions executed.
    pub instrs_executed: u64,
}

/// The result of running a simulation to quiescence.
///
/// Owns a snapshot of final variable values, per-behavior outcomes and
/// per-signal event counts, so it outlives the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    pub(crate) time: u64,
    pub(crate) behaviors: Vec<BehaviorOutcome>,
    pub(crate) variables: Vec<(String, Value)>,
    pub(crate) signals: Vec<(String, Value)>,
    pub(crate) signal_events: Vec<(String, u64)>,
    pub(crate) injected_faults: Vec<InjectedFault>,
    pub(crate) blocked_at_exit: usize,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) total_deltas: u64,
    pub(crate) total_instrs: u64,
    pub(crate) assertions_checked: u64,
    pub(crate) heap_peak: usize,
    pub(crate) time_steps: u64,
}

impl SimReport {
    /// The time of the last event, in clock cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Total delta cycles executed over the whole run.
    pub fn total_deltas(&self) -> u64 {
        self.total_deltas
    }

    /// Total instructions executed over the whole run.
    pub fn total_instrs(&self) -> u64 {
        self.total_instrs
    }

    /// Number of assertions that were reached and held.
    pub fn assertions_checked(&self) -> u64 {
        self.assertions_checked
    }

    /// Peak combined size of the scheduler's event heaps (timed writes
    /// plus sleeping processes) over the whole run.
    pub fn heap_peak(&self) -> usize {
        self.heap_peak
    }

    /// Number of distinct simulation instants the scheduler visited
    /// (the initial instant plus every time advance).
    pub fn time_steps(&self) -> u64 {
        self.time_steps
    }

    /// Average delta cycles per visited instant; 0 for an empty run.
    pub fn deltas_per_step(&self) -> f64 {
        if self.time_steps == 0 {
            0.0
        } else {
            self.total_deltas as f64 / self.time_steps as f64
        }
    }

    /// Finish time of a behavior: `Some(t)` once a non-repeating behavior
    /// completed its body at time `t`. This is the "execution time of the
    /// process" of the paper's Fig. 7.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn finish_time(&self, behavior: BehaviorId) -> Option<u64> {
        self.behaviors[behavior.index()].finish_time
    }

    /// Completed iterations of a (repeating) behavior.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn iterations(&self, behavior: BehaviorId) -> u64 {
        self.behaviors[behavior.index()].iterations
    }

    /// Per-behavior outcome record.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn outcome(&self, behavior: BehaviorId) -> &BehaviorOutcome {
        &self.behaviors[behavior.index()]
    }

    /// Final value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn final_variable(&self, variable: VarId) -> &Value {
        &self.variables[variable.index()].1
    }

    /// Final value of a variable looked up by name, if it exists.
    pub fn final_variable_by_name(&self, name: &str) -> Option<&Value> {
        self.variables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Final value of a signal looked up by name, if it exists.
    ///
    /// Hardened protocols report aborts through per-channel status-flag
    /// signals; this is how campaigns read them after the run.
    pub fn final_signal_by_name(&self, name: &str) -> Option<&Value> {
        self.signals.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Faults the kernel actually injected during the run, in time order
    /// (empty without a fault plan). Recording caps at an internal bound
    /// so a stuck line on a long run cannot grow the report unboundedly.
    pub fn injected_faults(&self) -> &[InjectedFault] {
        &self.injected_faults
    }

    /// Number of *non-repeating* processes that had not finished when the
    /// run ended — still suspended on a wait or sleeping mid-work.
    ///
    /// [`crate::Simulator::run_until`] returns success at its deadline
    /// even when transfers are stuck; a nonzero count here is how callers
    /// tell a cleanly completed run from a stalled bus. Repeating servers
    /// are excluded: parked-on-the-bus is their normal idle state.
    pub fn blocked_at_exit(&self) -> usize {
        self.blocked_at_exit
    }

    /// Iterates over behaviors that ran to completion.
    pub fn finished_behaviors(&self) -> impl Iterator<Item = (BehaviorId, &BehaviorOutcome)> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, o)| o.finish_time.is_some())
            .map(|(i, o)| (BehaviorId::new(i as u32), o))
    }

    /// Iterates over behaviors that ended the run suspended on a wait.
    ///
    /// For server processes (variable processes, arbiters) this is the
    /// normal idle state, not an error.
    pub fn blocked_behaviors(&self) -> impl Iterator<Item = (BehaviorId, &BehaviorOutcome)> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, o)| o.blocked)
            .map(|(i, o)| (BehaviorId::new(i as u32), o))
    }

    /// Number of events (value changes) observed on a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn signal_event_count(&self, signal: SignalId) -> u64 {
        self.signal_events[signal.index()].1
    }

    /// The recorded signal-change trace (empty unless tracing was on).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

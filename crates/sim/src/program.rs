//! Lowering of statement trees into flat instruction sequences.
//!
//! Structured control flow becomes jumps; `for` loops become
//! init/test/increment triples with the (once-evaluated) bound kept on a
//! per-frame loop stack. Every behavior and procedure compiles to one
//! [`Code`] block ending in [`Instr::Ret`].
//!
//! Lowering also performs the compile-time work that keeps the
//! interpreter's hot path allocation-free:
//!
//! * **constant folding** — literal subtrees (`Unary`/`Binary`/slices/
//!   resizes over constants) evaluate once here and embed as
//!   [`Expr::Const`]; at run time the evaluator then returns those
//!   constants *by reference* (they are interned in the instruction
//!   stream), so a folded operand costs zero allocations per execution;
//! * **wait compilation** — `wait until` conditions lower to a
//!   [`WaitSpec::Until`] carrying the folded expression behind an `Arc`
//!   and its signal sensitivity list, both computed once instead of at
//!   every suspension.

use std::sync::Arc;

use ifsyn_estimate::CostModel;
use ifsyn_spec::{
    Arg, BinOp, ChannelId, Expr, Place, SignalId, Stmt, System, Ty, UnaryOp, Value, WaitCond,
};

use crate::eval::{eval_binary, eval_unary};

/// A compiled wait condition.
///
/// The run-time shape of [`WaitCond`]: `until` conditions carry their
/// (constant-folded) expression behind an `Arc` so a suspending process
/// can hold the condition without cloning the expression tree, plus the
/// precollected list of signals the condition is sensitive to.
#[derive(Debug, Clone, PartialEq)]
pub enum WaitSpec {
    /// Suspend for a fixed number of cycles.
    ForCycles(u64),
    /// Suspend until an event on any of the listed signals.
    OnSignals(Vec<SignalId>),
    /// Suspend until an event makes `expr` true (level-sensitive).
    Until {
        /// The folded condition, shared with suspended processes.
        expr: Arc<Expr>,
        /// Signals appearing in `expr`, collected at compile time.
        sensitivity: Vec<SignalId>,
    },
    /// Suspend until `signal` holds exactly `value` (level-sensitive).
    ///
    /// The compiled form of the generated-handshake idiom
    /// `wait until sig = const` (and of `wait until sig` /
    /// `wait until not sig` on bit signals): checking it is one stored
    /// value compare, with no expression evaluation at all.
    UntilSignalIs {
        /// The watched signal.
        signal: SignalId,
        /// The value, pre-coerced to the signal's type so equal stored
        /// representations mean equal logical values.
        value: Value,
    },
    /// [`WaitSpec::Until`] with a watchdog: resume when the condition
    /// becomes true *or* after `cycles` cycles, whichever comes first.
    ///
    /// The code after the wait re-tests the condition to tell a satisfied
    /// wait from an expired one — exactly the VHDL `wait until ... for N`
    /// contract the hardened protocols rely on.
    UntilTimeout {
        /// The folded condition, shared with suspended processes.
        expr: Arc<Expr>,
        /// Signals appearing in `expr`, collected at compile time.
        sensitivity: Vec<SignalId>,
        /// Watchdog bound in cycles.
        cycles: u64,
    },
    /// [`WaitSpec::UntilSignalIs`] with a watchdog bound.
    UntilSignalIsTimeout {
        /// The watched signal.
        signal: SignalId,
        /// The value, pre-coerced to the signal's type.
        value: Value,
        /// Watchdog bound in cycles.
        cycles: u64,
    },
}

/// One lowered instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `place := value`, consuming `cost` cycles.
    Assign {
        /// Assignment target.
        place: Place,
        /// Assigned value.
        value: Expr,
        /// Cycles consumed.
        cost: u32,
    },
    /// `signal <= value`; the new value becomes visible `cost` cycles
    /// later (next delta when `cost` is zero).
    SignalWrite {
        /// Driven signal.
        signal: SignalId,
        /// Driven value.
        value: Expr,
        /// Cycles consumed (and write visibility delay).
        cost: u32,
    },
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Jump to `target` when `cond` evaluates false.
    JumpIfNot {
        /// Branch condition.
        cond: Expr,
        /// Destination when false.
        target: usize,
    },
    /// `for` prologue: assign `var := from`, push `to`'s value on the
    /// frame's loop-bound stack.
    LoopInit {
        /// Loop variable.
        var: Place,
        /// Initial value expression.
        from: Expr,
        /// Final (inclusive) value expression, evaluated once.
        to: Expr,
    },
    /// `for` guard: exit (popping the bound) when `var` exceeds the bound.
    LoopTest {
        /// Loop variable.
        var: Place,
        /// Destination when the loop is done.
        exit: usize,
    },
    /// `for` epilogue: `var := var + 1`, jump back to the guard.
    LoopIncr {
        /// Loop variable.
        var: Place,
        /// Guard instruction index.
        back: usize,
    },
    /// Suspend on a compiled wait condition.
    Wait(WaitSpec),
    /// Call a procedure by index into [`Program::procedures`].
    Call {
        /// Callee index.
        procedure: usize,
        /// Actual arguments.
        args: Vec<Arg>,
    },
    /// Abstract (ideal) channel send: writes directly into the remote
    /// variable's storage.
    ChannelSend {
        /// The channel.
        channel: ChannelId,
        /// Element address for arrays.
        addr: Option<Expr>,
        /// Transferred value.
        data: Expr,
        /// Cycles consumed.
        cost: u32,
    },
    /// Abstract (ideal) channel receive.
    ChannelReceive {
        /// The channel.
        channel: ChannelId,
        /// Element address for arrays.
        addr: Option<Expr>,
        /// Destination.
        target: Place,
        /// Cycles consumed.
        cost: u32,
    },
    /// Consume cycles without side effects (lowered [`Stmt::Compute`]).
    Consume {
        /// Cycles consumed.
        cycles: u64,
    },
    /// Runtime check; fails the simulation when false.
    Assert {
        /// The checked condition.
        cond: Expr,
        /// Failure diagnostic.
        note: String,
    },
    /// Return from the current frame. In a behavior's root frame this
    /// finishes (or restarts) the behavior.
    Ret,
}

/// A lowered code block.
#[derive(Debug, Clone, PartialEq)]
pub struct Code {
    /// Source name (behavior or procedure name) for diagnostics.
    pub name: String,
    /// Flat instruction sequence; always ends with [`Instr::Ret`].
    pub instrs: Vec<Instr>,
}

/// A fully lowered system: one code block per behavior and per procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Code per behavior, indexed like `System::behaviors`.
    pub behaviors: Vec<Code>,
    /// Code per procedure, indexed like `System::procedures`.
    pub procedures: Vec<Code>,
}

impl Program {
    /// Lowers every behavior and procedure of `system`.
    ///
    /// Statement costs default to the given [`CostModel`] when the
    /// statement's explicit `cost` is absent.
    pub fn compile(system: &System, costs: &CostModel) -> Self {
        let behaviors = system
            .behaviors
            .iter()
            .map(|b| Code {
                name: b.name.clone(),
                instrs: lower_block(system, &b.body, costs),
            })
            .collect();
        let procedures = system
            .procedures
            .iter()
            .map(|p| Code {
                name: p.name.clone(),
                instrs: lower_block(system, &p.body, costs),
            })
            .collect();
        Self {
            behaviors,
            procedures,
        }
    }
}

fn lower_block(system: &System, body: &[Stmt], costs: &CostModel) -> Vec<Instr> {
    let mut out = Vec::new();
    lower_into(system, body, costs, &mut out);
    out.push(Instr::Ret);
    out
}

/// Folds literal subtrees into [`Expr::Const`].
///
/// Folding only happens where the run-time evaluation would succeed with
/// the same result (e.g. an out-of-range constant slice is left in place
/// so it still fails at run time, not at compile time).
fn fold_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Signal(_) => expr.clone(),
        Expr::Load(place) => Expr::Load(fold_place(place)),
        Expr::Unary { op, arg } => {
            let arg = fold_expr(arg);
            if let Expr::Const(v) = &arg {
                if let Ok(res) = eval_unary(*op, v) {
                    return Expr::Const(res);
                }
            }
            Expr::Unary {
                op: *op,
                arg: Box::new(arg),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs = fold_expr(lhs);
            let rhs = fold_expr(rhs);
            if let (Expr::Const(a), Expr::Const(b)) = (&lhs, &rhs) {
                if let Ok(res) = eval_binary(*op, a, b) {
                    return Expr::Const(res);
                }
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        }
        Expr::SliceOf { base, hi, lo } => {
            let base = fold_expr(base);
            if let Expr::Const(v) = &base {
                let bits = v.to_bits();
                if *hi >= *lo && *hi < bits.width() {
                    return Expr::Const(ifsyn_spec::Value::Bits(bits.slice(*hi, *lo)));
                }
            }
            Expr::SliceOf {
                base: Box::new(base),
                hi: *hi,
                lo: *lo,
            }
        }
        Expr::Resize { base, width } => {
            let base = fold_expr(base);
            if let Expr::Const(v) = &base {
                return Expr::Const(ifsyn_spec::Value::Bits(v.to_bits().resized(*width)));
            }
            Expr::Resize {
                base: Box::new(base),
                width: *width,
            }
        }
        Expr::DynSliceOf {
            base,
            offset,
            width,
        } => {
            let base = fold_expr(base);
            let offset = fold_expr(offset);
            if let (Expr::Const(bv), Expr::Const(ov)) = (&base, &offset) {
                if let Some(lo) = ov.as_i64().ok().and_then(|i| u32::try_from(i).ok()) {
                    let bits = bv.to_bits();
                    let hi = lo + width - 1;
                    if *width > 0 && hi < bits.width() {
                        return Expr::Const(ifsyn_spec::Value::Bits(bits.slice(hi, lo)));
                    }
                }
            }
            Expr::DynSliceOf {
                base: Box::new(base),
                offset: Box::new(offset),
                width: *width,
            }
        }
    }
}

/// Folds index and offset expressions inside a place.
fn fold_place(place: &Place) -> Place {
    match place {
        Place::Var(_) | Place::Local(_) => place.clone(),
        Place::Index { base, index } => Place::Index {
            base: Box::new(fold_place(base)),
            index: Box::new(fold_expr(index)),
        },
        Place::Slice { base, hi, lo } => Place::Slice {
            base: Box::new(fold_place(base)),
            hi: *hi,
            lo: *lo,
        },
        Place::DynSlice {
            base,
            offset,
            width,
        } => Place::DynSlice {
            base: Box::new(fold_place(base)),
            offset: Box::new(fold_expr(offset)),
            width: *width,
        },
    }
}

fn fold_arg(arg: &Arg) -> Arg {
    match arg {
        Arg::In(e) => Arg::In(fold_expr(e)),
        Arg::Out(p) => Arg::Out(fold_place(p)),
        Arg::InOut(p) => Arg::InOut(fold_place(p)),
    }
}

fn compile_wait(system: &System, cond: &WaitCond) -> WaitSpec {
    match cond {
        WaitCond::ForCycles(n) => WaitSpec::ForCycles(*n),
        WaitCond::OnSignals(signals) => WaitSpec::OnSignals(signals.clone()),
        WaitCond::Until(expr) => {
            let folded = fold_expr(expr);
            if let Some(spec) = specialize_wait(system, &folded) {
                return spec;
            }
            let mut sensitivity = Vec::new();
            folded.collect_signals(&mut sensitivity);
            WaitSpec::Until {
                expr: Arc::new(folded),
                sensitivity,
            }
        }
        WaitCond::UntilTimeout { cond, cycles } => {
            let folded = fold_expr(cond);
            if let Some(WaitSpec::UntilSignalIs { signal, value }) =
                specialize_wait(system, &folded)
            {
                return WaitSpec::UntilSignalIsTimeout {
                    signal,
                    value,
                    cycles: *cycles,
                };
            }
            let mut sensitivity = Vec::new();
            folded.collect_signals(&mut sensitivity);
            WaitSpec::UntilTimeout {
                expr: Arc::new(folded),
                sensitivity,
                cycles: *cycles,
            }
        }
    }
}

/// Recognizes the single-signal wait idioms of generated handshake code
/// (`sig`, `not sig`, `sig = const`) and compiles them to
/// [`WaitSpec::UntilSignalIs`].
///
/// Only shapes whose runtime comparison is exactly a stored-value
/// equality are specialized; anything wider (mixed widths with nonzero
/// truncated bits, non-literal operands) keeps the general path.
fn specialize_wait(system: &System, expr: &Expr) -> Option<WaitSpec> {
    let bit_signal_is = |s: &SignalId, b: bool| -> Option<WaitSpec> {
        matches!(system.signal(*s).ty, Ty::Bit).then(|| WaitSpec::UntilSignalIs {
            signal: *s,
            value: Value::Bit(b),
        })
    };
    match expr {
        Expr::Signal(s) => bit_signal_is(s, true),
        Expr::Unary {
            op: UnaryOp::Not,
            arg,
        } => match &**arg {
            Expr::Signal(s) => bit_signal_is(s, false),
            _ => None,
        },
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let (s, v) = match (&**lhs, &**rhs) {
                (Expr::Signal(s), Expr::Const(v)) | (Expr::Const(v), Expr::Signal(s)) => (s, v),
                _ => None?,
            };
            match (&system.signal(*s).ty, v) {
                (Ty::Bit, Value::Bit(b)) => bit_signal_is(s, *b),
                (Ty::Bits(w), Value::Bits(bv)) if bv.width() <= *w => {
                    // Zero-extending the constant to the signal's width is
                    // exactly the runtime resize-and-compare semantics.
                    Some(WaitSpec::UntilSignalIs {
                        signal: *s,
                        value: Value::Bits(bv.resized(*w)),
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn lower_into(system: &System, body: &[Stmt], costs: &CostModel, out: &mut Vec<Instr>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { place, value, cost } => out.push(Instr::Assign {
                place: fold_place(place),
                value: fold_expr(value),
                cost: cost.unwrap_or(costs.assign_cycles),
            }),
            Stmt::SignalAssign {
                signal,
                value,
                cost,
            } => out.push(Instr::SignalWrite {
                signal: *signal,
                value: fold_expr(value),
                cost: cost.unwrap_or(costs.signal_assign_cycles),
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let branch_at = out.len();
                out.push(Instr::Jump(0)); // placeholder for JumpIfNot
                lower_into(system, then_body, costs, out);
                if else_body.is_empty() {
                    let end = out.len();
                    out[branch_at] = Instr::JumpIfNot {
                        cond: fold_expr(cond),
                        target: end,
                    };
                } else {
                    let jump_end_at = out.len();
                    out.push(Instr::Jump(0)); // placeholder
                    let else_start = out.len();
                    out[branch_at] = Instr::JumpIfNot {
                        cond: fold_expr(cond),
                        target: else_start,
                    };
                    lower_into(system, else_body, costs, out);
                    let end = out.len();
                    out[jump_end_at] = Instr::Jump(end);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                out.push(Instr::LoopInit {
                    var: fold_place(var),
                    from: fold_expr(from),
                    to: fold_expr(to),
                });
                let test_at = out.len();
                out.push(Instr::Jump(0)); // placeholder for LoopTest
                lower_into(system, body, costs, out);
                out.push(Instr::LoopIncr {
                    var: fold_place(var),
                    back: test_at,
                });
                let exit = out.len();
                out[test_at] = Instr::LoopTest {
                    var: fold_place(var),
                    exit,
                };
            }
            Stmt::While { cond, body } => {
                let test_at = out.len();
                out.push(Instr::Jump(0)); // placeholder
                lower_into(system, body, costs, out);
                out.push(Instr::Jump(test_at));
                let exit = out.len();
                out[test_at] = Instr::JumpIfNot {
                    cond: fold_expr(cond),
                    target: exit,
                };
            }
            Stmt::Wait(cond) => out.push(Instr::Wait(compile_wait(system, cond))),
            Stmt::Call { procedure, args } => out.push(Instr::Call {
                procedure: procedure.index(),
                args: args.iter().map(fold_arg).collect(),
            }),
            Stmt::ChannelSend {
                channel,
                addr,
                data,
            } => out.push(Instr::ChannelSend {
                channel: *channel,
                addr: addr.as_ref().map(fold_expr),
                data: fold_expr(data),
                cost: costs.abstract_channel_cycles,
            }),
            Stmt::ChannelReceive {
                channel,
                addr,
                target,
            } => out.push(Instr::ChannelReceive {
                channel: *channel,
                addr: addr.as_ref().map(fold_expr),
                target: fold_place(target),
                cost: costs.abstract_channel_cycles,
            }),
            Stmt::Compute { cycles, .. } => out.push(Instr::Consume { cycles: *cycles }),
            Stmt::Assert { cond, note } => out.push(Instr::Assert {
                cond: fold_expr(cond),
                note: note.clone(),
            }),
            Stmt::Return => out.push(Instr::Ret),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{System, Ty, VarId};

    fn compile_body(body: Vec<Stmt>) -> Vec<Instr> {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let _x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(b).body = body;
        Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone()
    }

    #[test]
    fn straight_line_lowered_in_order_with_ret() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![
            assign(var(x), int_const(1, 16)),
            Stmt::compute(4, "w"),
        ]);
        assert!(matches!(instrs[0], Instr::Assign { cost: 1, .. }));
        assert!(matches!(instrs[1], Instr::Consume { cycles: 4 }));
        assert!(matches!(instrs[2], Instr::Ret));
        assert_eq!(instrs.len(), 3);
    }

    #[test]
    fn if_without_else_branches_past_then() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_then(
            bit_const(true),
            vec![assign(var(x), int_const(1, 16))],
        )]);
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 2),
            other => panic!("expected JumpIfNot, got {other:?}"),
        }
    }

    #[test]
    fn if_else_jump_targets_are_consistent() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_else(
            bit_const(true),
            vec![assign(var(x), int_const(1, 16))],
            vec![assign(var(x), int_const(2, 16))],
        )]);
        // 0: JumpIfNot -> 3 ; 1: then-assign ; 2: Jump -> 4 ; 3: else-assign ; 4: Ret
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        match &instrs[2] {
            Instr::Jump(t) => assert_eq!(*t, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(instrs[4], Instr::Ret));
    }

    #[test]
    fn for_loop_shape() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![for_loop(
            var(x),
            int_const(0, 16),
            int_const(3, 16),
            vec![Stmt::compute(1, "w")],
        )]);
        // 0: LoopInit ; 1: LoopTest -> 4 ; 2: Consume ; 3: LoopIncr -> 1 ; 4: Ret
        assert!(matches!(instrs[0], Instr::LoopInit { .. }));
        match &instrs[1] {
            Instr::LoopTest { exit, .. } => assert_eq!(*exit, 4),
            other => panic!("unexpected {other:?}"),
        }
        match &instrs[3] {
            Instr::LoopIncr { back, .. } => assert_eq!(*back, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_loop_shape() {
        let instrs = compile_body(vec![while_loop(
            bit_const(false),
            vec![Stmt::compute(1, "w")],
        )]);
        // 0: JumpIfNot -> 3 ; 1: Consume ; 2: Jump -> 0 ; 3: Ret
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(instrs[2], Instr::Jump(0)));
    }

    #[test]
    fn explicit_costs_override_model() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign_cost(var(x), int_const(1, 16), 9)]);
        assert!(matches!(instrs[0], Instr::Assign { cost: 9, .. }));
    }

    #[test]
    fn constant_subtrees_fold_to_consts() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign(
            var(x),
            add(int_const(2, 16), int_const(3, 16)),
        )]);
        match &instrs[0] {
            Instr::Assign {
                value: Expr::Const(v),
                ..
            } => assert_eq!(v.as_i64().unwrap(), 5),
            other => panic!("expected folded const, got {other:?}"),
        }
    }

    #[test]
    fn non_constant_subtrees_survive_folding() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign(var(x), add(load(var(x)), int_const(3, 16)))]);
        assert!(matches!(
            &instrs[0],
            Instr::Assign {
                value: Expr::Binary { .. },
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_const_slice_is_left_for_runtime() {
        let x = VarId::new(0);
        let bad = Expr::SliceOf {
            base: Box::new(bits_const(0b11, 2)),
            hi: 5,
            lo: 0,
        };
        let instrs = compile_body(vec![assign(var(x), bad)]);
        assert!(matches!(
            &instrs[0],
            Instr::Assign {
                value: Expr::SliceOf { .. },
                ..
            }
        ));
    }

    #[test]
    fn wait_until_signal_eq_const_specializes_after_folding() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("start", Ty::Bit);
        // `not(false)` folds to the constant `true`, exposing the
        // signal-vs-const shape to the wait specializer.
        sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), not(bit_const(false))))];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::Wait(WaitSpec::UntilSignalIs { signal, value }) => {
                assert_eq!(*signal, s);
                assert_eq!(*value, Value::Bit(true));
            }
            other => panic!("expected specialized wait, got {other:?}"),
        }
    }

    #[test]
    fn wait_until_bits_const_is_resized_to_signal_width() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("addr", Ty::Bits(8));
        sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), bits_const(0b101, 3)))];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::Wait(WaitSpec::UntilSignalIs { signal, value }) => {
                assert_eq!(*signal, s);
                // Pre-resized so the runtime compare needs no coercion.
                match value {
                    Value::Bits(bv) => {
                        assert_eq!(bv.width(), 8);
                        assert_eq!(bv.to_u64(), 0b101);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("expected specialized wait, got {other:?}"),
        }
    }

    #[test]
    fn wait_until_general_expr_keeps_eval_form_and_sensitivity() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("start", Ty::Bit);
        let t = sys.add_signal("stop", Ty::Bit);
        // Signal-vs-signal comparison cannot specialize; it must keep the
        // evaluated form with both signals in the sensitivity list.
        sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), signal(t)))];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::Wait(WaitSpec::Until { sensitivity, .. }) => {
                assert_eq!(sensitivity, &[s, t]);
            }
            other => panic!("expected general wait, got {other:?}"),
        }
    }

    #[test]
    fn nested_ifs_terminate_with_single_ret() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_then(
            bit_const(true),
            vec![if_else(
                bit_const(false),
                vec![assign(var(x), int_const(1, 16))],
                vec![assign(var(x), int_const(2, 16))],
            )],
        )]);
        let rets = instrs.iter().filter(|i| matches!(i, Instr::Ret)).count();
        assert_eq!(rets, 1);
        // All jump targets must be in range.
        for i in &instrs {
            match i {
                Instr::Jump(t) | Instr::JumpIfNot { target: t, .. } => {
                    assert!(*t <= instrs.len())
                }
                Instr::LoopTest { exit, .. } => assert!(*exit <= instrs.len()),
                Instr::LoopIncr { back, .. } => assert!(*back < instrs.len()),
                _ => {}
            }
        }
    }
}

//! Lowering of statement trees into flat instruction sequences.
//!
//! Structured control flow becomes jumps; `for` loops become
//! init/test/increment triples with the (once-evaluated) bound kept on a
//! per-frame loop stack. Every behavior and procedure compiles to one
//! [`Code`] block ending in [`Instr::Ret`].

use ifsyn_estimate::CostModel;
use ifsyn_spec::{Arg, ChannelId, Expr, Place, SignalId, Stmt, System, WaitCond};

/// One lowered instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `place := value`, consuming `cost` cycles.
    Assign {
        /// Assignment target.
        place: Place,
        /// Assigned value.
        value: Expr,
        /// Cycles consumed.
        cost: u32,
    },
    /// `signal <= value`; the new value becomes visible `cost` cycles
    /// later (next delta when `cost` is zero).
    SignalWrite {
        /// Driven signal.
        signal: SignalId,
        /// Driven value.
        value: Expr,
        /// Cycles consumed (and write visibility delay).
        cost: u32,
    },
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Jump to `target` when `cond` evaluates false.
    JumpIfNot {
        /// Branch condition.
        cond: Expr,
        /// Destination when false.
        target: usize,
    },
    /// `for` prologue: assign `var := from`, push `to`'s value on the
    /// frame's loop-bound stack.
    LoopInit {
        /// Loop variable.
        var: Place,
        /// Initial value expression.
        from: Expr,
        /// Final (inclusive) value expression, evaluated once.
        to: Expr,
    },
    /// `for` guard: exit (popping the bound) when `var` exceeds the bound.
    LoopTest {
        /// Loop variable.
        var: Place,
        /// Destination when the loop is done.
        exit: usize,
    },
    /// `for` epilogue: `var := var + 1`, jump back to the guard.
    LoopIncr {
        /// Loop variable.
        var: Place,
        /// Guard instruction index.
        back: usize,
    },
    /// Suspend on a wait condition.
    Wait(WaitCond),
    /// Call a procedure by index into [`Program::procedures`].
    Call {
        /// Callee index.
        procedure: usize,
        /// Actual arguments.
        args: Vec<Arg>,
    },
    /// Abstract (ideal) channel send: writes directly into the remote
    /// variable's storage.
    ChannelSend {
        /// The channel.
        channel: ChannelId,
        /// Element address for arrays.
        addr: Option<Expr>,
        /// Transferred value.
        data: Expr,
        /// Cycles consumed.
        cost: u32,
    },
    /// Abstract (ideal) channel receive.
    ChannelReceive {
        /// The channel.
        channel: ChannelId,
        /// Element address for arrays.
        addr: Option<Expr>,
        /// Destination.
        target: Place,
        /// Cycles consumed.
        cost: u32,
    },
    /// Consume cycles without side effects (lowered [`Stmt::Compute`]).
    Consume {
        /// Cycles consumed.
        cycles: u64,
    },
    /// Runtime check; fails the simulation when false.
    Assert {
        /// The checked condition.
        cond: Expr,
        /// Failure diagnostic.
        note: String,
    },
    /// Return from the current frame. In a behavior's root frame this
    /// finishes (or restarts) the behavior.
    Ret,
}

/// A lowered code block.
#[derive(Debug, Clone, PartialEq)]
pub struct Code {
    /// Source name (behavior or procedure name) for diagnostics.
    pub name: String,
    /// Flat instruction sequence; always ends with [`Instr::Ret`].
    pub instrs: Vec<Instr>,
}

/// A fully lowered system: one code block per behavior and per procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Code per behavior, indexed like `System::behaviors`.
    pub behaviors: Vec<Code>,
    /// Code per procedure, indexed like `System::procedures`.
    pub procedures: Vec<Code>,
}

impl Program {
    /// Lowers every behavior and procedure of `system`.
    ///
    /// Statement costs default to the given [`CostModel`] when the
    /// statement's explicit `cost` is absent.
    pub fn compile(system: &System, costs: &CostModel) -> Self {
        let behaviors = system
            .behaviors
            .iter()
            .map(|b| Code {
                name: b.name.clone(),
                instrs: lower_block(&b.body, costs),
            })
            .collect();
        let procedures = system
            .procedures
            .iter()
            .map(|p| Code {
                name: p.name.clone(),
                instrs: lower_block(&p.body, costs),
            })
            .collect();
        Self {
            behaviors,
            procedures,
        }
    }
}

fn lower_block(body: &[Stmt], costs: &CostModel) -> Vec<Instr> {
    let mut out = Vec::new();
    lower_into(body, costs, &mut out);
    out.push(Instr::Ret);
    out
}

fn lower_into(body: &[Stmt], costs: &CostModel, out: &mut Vec<Instr>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { place, value, cost } => out.push(Instr::Assign {
                place: place.clone(),
                value: value.clone(),
                cost: cost.unwrap_or(costs.assign_cycles),
            }),
            Stmt::SignalAssign {
                signal,
                value,
                cost,
            } => out.push(Instr::SignalWrite {
                signal: *signal,
                value: value.clone(),
                cost: cost.unwrap_or(costs.signal_assign_cycles),
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let branch_at = out.len();
                out.push(Instr::Jump(0)); // placeholder for JumpIfNot
                lower_into(then_body, costs, out);
                if else_body.is_empty() {
                    let end = out.len();
                    out[branch_at] = Instr::JumpIfNot {
                        cond: cond.clone(),
                        target: end,
                    };
                } else {
                    let jump_end_at = out.len();
                    out.push(Instr::Jump(0)); // placeholder
                    let else_start = out.len();
                    out[branch_at] = Instr::JumpIfNot {
                        cond: cond.clone(),
                        target: else_start,
                    };
                    lower_into(else_body, costs, out);
                    let end = out.len();
                    out[jump_end_at] = Instr::Jump(end);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                out.push(Instr::LoopInit {
                    var: var.clone(),
                    from: from.clone(),
                    to: to.clone(),
                });
                let test_at = out.len();
                out.push(Instr::Jump(0)); // placeholder for LoopTest
                lower_into(body, costs, out);
                out.push(Instr::LoopIncr {
                    var: var.clone(),
                    back: test_at,
                });
                let exit = out.len();
                out[test_at] = Instr::LoopTest {
                    var: var.clone(),
                    exit,
                };
            }
            Stmt::While { cond, body } => {
                let test_at = out.len();
                out.push(Instr::Jump(0)); // placeholder
                lower_into(body, costs, out);
                out.push(Instr::Jump(test_at));
                let exit = out.len();
                out[test_at] = Instr::JumpIfNot {
                    cond: cond.clone(),
                    target: exit,
                };
            }
            Stmt::Wait(cond) => out.push(Instr::Wait(cond.clone())),
            Stmt::Call { procedure, args } => out.push(Instr::Call {
                procedure: procedure.index(),
                args: args.clone(),
            }),
            Stmt::ChannelSend {
                channel,
                addr,
                data,
            } => out.push(Instr::ChannelSend {
                channel: *channel,
                addr: addr.clone(),
                data: data.clone(),
                cost: costs.abstract_channel_cycles,
            }),
            Stmt::ChannelReceive {
                channel,
                addr,
                target,
            } => out.push(Instr::ChannelReceive {
                channel: *channel,
                addr: addr.clone(),
                target: target.clone(),
                cost: costs.abstract_channel_cycles,
            }),
            Stmt::Compute { cycles, .. } => out.push(Instr::Consume { cycles: *cycles }),
            Stmt::Assert { cond, note } => out.push(Instr::Assert {
                cond: cond.clone(),
                note: note.clone(),
            }),
            Stmt::Return => out.push(Instr::Ret),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{System, Ty, VarId};

    fn compile_body(body: Vec<Stmt>) -> Vec<Instr> {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let _x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(b).body = body;
        Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone()
    }

    #[test]
    fn straight_line_lowered_in_order_with_ret() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![
            assign(var(x), int_const(1, 16)),
            Stmt::compute(4, "w"),
        ]);
        assert!(matches!(instrs[0], Instr::Assign { cost: 1, .. }));
        assert!(matches!(instrs[1], Instr::Consume { cycles: 4 }));
        assert!(matches!(instrs[2], Instr::Ret));
        assert_eq!(instrs.len(), 3);
    }

    #[test]
    fn if_without_else_branches_past_then() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_then(
            bit_const(true),
            vec![assign(var(x), int_const(1, 16))],
        )]);
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 2),
            other => panic!("expected JumpIfNot, got {other:?}"),
        }
    }

    #[test]
    fn if_else_jump_targets_are_consistent() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_else(
            bit_const(true),
            vec![assign(var(x), int_const(1, 16))],
            vec![assign(var(x), int_const(2, 16))],
        )]);
        // 0: JumpIfNot -> 3 ; 1: then-assign ; 2: Jump -> 4 ; 3: else-assign ; 4: Ret
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        match &instrs[2] {
            Instr::Jump(t) => assert_eq!(*t, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(instrs[4], Instr::Ret));
    }

    #[test]
    fn for_loop_shape() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![for_loop(
            var(x),
            int_const(0, 16),
            int_const(3, 16),
            vec![Stmt::compute(1, "w")],
        )]);
        // 0: LoopInit ; 1: LoopTest -> 4 ; 2: Consume ; 3: LoopIncr -> 1 ; 4: Ret
        assert!(matches!(instrs[0], Instr::LoopInit { .. }));
        match &instrs[1] {
            Instr::LoopTest { exit, .. } => assert_eq!(*exit, 4),
            other => panic!("unexpected {other:?}"),
        }
        match &instrs[3] {
            Instr::LoopIncr { back, .. } => assert_eq!(*back, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_loop_shape() {
        let instrs = compile_body(vec![while_loop(
            bit_const(false),
            vec![Stmt::compute(1, "w")],
        )]);
        // 0: JumpIfNot -> 3 ; 1: Consume ; 2: Jump -> 0 ; 3: Ret
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(instrs[2], Instr::Jump(0)));
    }

    #[test]
    fn explicit_costs_override_model() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign_cost(var(x), int_const(1, 16), 9)]);
        assert!(matches!(instrs[0], Instr::Assign { cost: 9, .. }));
    }

    #[test]
    fn nested_ifs_terminate_with_single_ret() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_then(
            bit_const(true),
            vec![if_else(
                bit_const(false),
                vec![assign(var(x), int_const(1, 16))],
                vec![assign(var(x), int_const(2, 16))],
            )],
        )]);
        let rets = instrs.iter().filter(|i| matches!(i, Instr::Ret)).count();
        assert_eq!(rets, 1);
        // All jump targets must be in range.
        for i in &instrs {
            match i {
                Instr::Jump(t) | Instr::JumpIfNot { target: t, .. } => {
                    assert!(*t <= instrs.len())
                }
                Instr::LoopTest { exit, .. } => assert!(*exit <= instrs.len()),
                Instr::LoopIncr { back, .. } => assert!(*back < instrs.len()),
                _ => {}
            }
        }
    }
}

//! Lowering of statement trees into flat instruction sequences.
//!
//! Structured control flow becomes jumps; `for` loops become
//! init/test/increment triples with the (once-evaluated) bound kept on a
//! per-frame loop stack. Every behavior and procedure compiles to one
//! [`Code`] block ending in [`Instr::Ret`].
//!
//! Lowering performs all the compile-time work that keeps the
//! interpreter's hot path flat and allocation-free:
//!
//! * **constant folding** — literal subtrees (`Unary`/`Binary`/slices/
//!   resizes over constants) evaluate once here;
//! * **bytecode compilation** — every folded expression compiles to an
//!   [`ExprCode`] micro-op sequence over a reusable register file (see
//!   [`crate::exec`]), with leaf loads flattened into operand slots and
//!   the `sig = const` idiom fused into one compare superinstruction;
//! * **place compilation** — assignment targets become [`CPlace`], with
//!   whole-variable/local writes reduced to a bare index and deeper
//!   paths carrying their target type resolved at compile time;
//! * **wait compilation** — `wait until` conditions lower to a
//!   [`WaitSpec::Until`] carrying a [`CompiledCond`] (bytecode plus the
//!   display expression and signal sensitivity) behind an `Arc`, with
//!   the single-signal handshake idioms specialized to a stored-value
//!   compare ([`WaitSpec::UntilSignalIs`]);
//! * **loop fusion** — the loop back-edge is one fused
//!   increment-test-branch instruction ([`Instr::LoopIncr`]) instead of
//!   an increment, a jump and a separate guard dispatch.
//!
//! Compiled blocks are plain data behind `Arc`s, so a [`CodeCache`] can
//! share them between simulator instances: batch sweeps compile each
//! block once, keyed by a content hash of the block body and everything
//! lowering reads from its environment — the declared types of the
//! signals and variables *that block references* plus the cost model, so
//! even systems refined to different bus widths share their
//! width-independent blocks.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use ifsyn_estimate::CostModel;
use ifsyn_spec::{
    Arg, BinOp, ChannelId, Expr, ParamMode, Place, SignalId, Stmt, System, Ty, UnaryOp, Value,
    WaitCond,
};

use crate::eval::{coerce, eval_binary, eval_unary, place_ty};
use crate::exec::{CArg, CPath, CPathStep, CPlace, CRoot, ExprCode, MicroOp, Src};
use crate::process::CodeRef;

/// A compiled `wait until` condition: the bytecode to test it, the folded
/// source expression for diagnostics, and the signals it is sensitive to.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCond {
    /// The condition compiled to micro-ops.
    pub code: ExprCode,
    /// The folded expression, kept only for diagnosis rendering.
    pub display: Expr,
    /// Signals appearing in the condition, collected at compile time.
    pub sensitivity: Vec<SignalId>,
}

/// A compiled wait condition.
///
/// The run-time shape of [`WaitCond`]: `until` conditions carry their
/// compiled form behind an `Arc` so a suspending process can hold the
/// condition without cloning anything.
#[derive(Debug, Clone, PartialEq)]
pub enum WaitSpec {
    /// Suspend for a fixed number of cycles.
    ForCycles(u64),
    /// Suspend until an event on any of the listed signals.
    OnSignals(Vec<SignalId>),
    /// Suspend until an event makes the condition true (level-sensitive).
    Until(Arc<CompiledCond>),
    /// Suspend until `signal` holds exactly `value` (level-sensitive).
    ///
    /// The compiled form of the generated-handshake idiom
    /// `wait until sig = const` (and of `wait until sig` /
    /// `wait until not sig` on bit signals): checking it is one stored
    /// value compare, with no expression evaluation at all.
    UntilSignalIs {
        /// The watched signal.
        signal: SignalId,
        /// The value, pre-coerced to the signal's type so equal stored
        /// representations mean equal logical values.
        value: Value,
    },
    /// [`WaitSpec::Until`] with a watchdog: resume when the condition
    /// becomes true *or* after `cycles` cycles, whichever comes first.
    ///
    /// The code after the wait re-tests the condition to tell a satisfied
    /// wait from an expired one — exactly the VHDL `wait until ... for N`
    /// contract the hardened protocols rely on.
    UntilTimeout {
        /// The compiled condition, shared with suspended processes.
        cond: Arc<CompiledCond>,
        /// Watchdog bound in cycles.
        cycles: u64,
    },
    /// [`WaitSpec::UntilSignalIs`] with a watchdog bound.
    UntilSignalIsTimeout {
        /// The watched signal.
        signal: SignalId,
        /// The value, pre-coerced to the signal's type.
        value: Value,
        /// Watchdog bound in cycles.
        cycles: u64,
    },
}

/// One lowered instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `place := value`, consuming `cost` cycles.
    Assign {
        /// Assignment target.
        place: CPlace,
        /// Assigned value.
        value: ExprCode,
        /// Cycles consumed.
        cost: u32,
    },
    /// `signal <= value`; the new value becomes visible `cost` cycles
    /// later (next delta when `cost` is zero). Constant values are
    /// pre-coerced to the signal's type at compile time.
    SignalWrite {
        /// Driven signal.
        signal: SignalId,
        /// Driven value.
        value: ExprCode,
        /// Cycles consumed (and write visibility delay).
        cost: u32,
    },
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Jump to `target` when `cond` evaluates false.
    JumpIfNot {
        /// Branch condition.
        cond: ExprCode,
        /// Destination when false.
        target: usize,
    },
    /// `for` prologue: assign `var := from`, push `to`'s value on the
    /// frame's loop-bound stack.
    LoopInit {
        /// Loop variable.
        var: CPlace,
        /// Initial value expression.
        from: ExprCode,
        /// Final (inclusive) value expression, evaluated once.
        to: ExprCode,
    },
    /// `for` guard (loop entry only): exit (popping the bound) when
    /// `var` exceeds the bound.
    LoopTest {
        /// Loop variable.
        var: CPlace,
        /// Destination when the loop is done.
        exit: usize,
    },
    /// Fused `for` back-edge superinstruction: `var := var + 1`, then
    /// branch straight to the loop body or (popping the bound) to the
    /// exit — one dispatch instead of increment + jump + guard.
    LoopIncr {
        /// Loop variable.
        var: CPlace,
        /// First body instruction (the guard's fall-through).
        body: usize,
        /// Destination when the loop is done.
        exit: usize,
    },
    /// Suspend on a compiled wait condition.
    Wait(WaitSpec),
    /// Call a procedure by index into [`Program::procedures`].
    Call {
        /// Callee index.
        procedure: usize,
        /// Actual arguments, compiled.
        args: Vec<CArg>,
    },
    /// Abstract (ideal) channel send: writes directly into the remote
    /// variable's storage.
    ChannelSend {
        /// The channel.
        channel: ChannelId,
        /// Element address for arrays.
        addr: Option<ExprCode>,
        /// Transferred value.
        data: ExprCode,
        /// Cycles consumed.
        cost: u32,
    },
    /// Abstract (ideal) channel receive.
    ChannelReceive {
        /// The channel.
        channel: ChannelId,
        /// Element address for arrays.
        addr: Option<ExprCode>,
        /// Destination.
        target: CPlace,
        /// Cycles consumed.
        cost: u32,
    },
    /// Consume cycles without side effects (lowered [`Stmt::Compute`]).
    Consume {
        /// Cycles consumed.
        cycles: u64,
    },
    /// Runtime check; fails the simulation when false.
    Assert {
        /// The checked condition.
        cond: ExprCode,
        /// Failure diagnostic.
        note: String,
    },
    /// Return from the current frame. In a behavior's root frame this
    /// finishes (or restarts) the behavior.
    Ret,
}

/// A lowered code block.
#[derive(Debug, Clone, PartialEq)]
pub struct Code {
    /// Source name (behavior or procedure name) for diagnostics.
    pub name: String,
    /// Flat instruction sequence; always ends with [`Instr::Ret`].
    pub instrs: Vec<Instr>,
    /// Registers needed by the widest [`ExprCode`] in this block; the
    /// simulator sizes its shared register file to the maximum over all
    /// blocks.
    pub max_regs: u16,
}

/// A fully lowered system: one code block per behavior and per procedure.
///
/// Blocks are behind `Arc`s so a [`CodeCache`] can share identical
/// compilations between simulator instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Code per behavior, indexed like `System::behaviors`.
    pub behaviors: Vec<Arc<Code>>,
    /// Code per procedure, indexed like `System::procedures`.
    pub procedures: Vec<Arc<Code>>,
}

/// A content-hash cache of compiled [`Code`] blocks, shared between
/// simulator instances.
///
/// The key covers everything lowering reads for the block: its body, the
/// declared types of the signals and variables the body references, the
/// scope procedure's signature, and the cost model — so a hit is
/// guaranteed to be the block this system would have compiled, while
/// declarations the block never names stay out of the key. A width sweep
/// therefore compiles each width-independent block (application
/// behaviors, control-only server loops) once for the whole sweep.
#[derive(Debug, Default)]
pub struct CodeCache {
    blocks: Mutex<HashMap<u64, Arc<Code>>>,
}

impl CodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled blocks held.
    pub fn len(&self) -> usize {
        self.blocks.lock().expect("cache lock").len()
    }

    /// `true` when no block has been compiled into the cache yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_build(&self, key: u64, build: impl FnOnce() -> Code) -> Arc<Code> {
        if let Some(hit) = self.blocks.lock().expect("cache lock").get(&key) {
            return Arc::clone(hit);
        }
        // Built outside the lock: a racing builder costs one duplicate
        // compilation, never a stall of every other worker.
        let built = Arc::new(build());
        let mut blocks = self.blocks.lock().expect("cache lock");
        Arc::clone(blocks.entry(key).or_insert(built))
    }
}

/// The signals and variables a block body actually references —
/// everything whose declared type lowering can read for that block.
#[derive(Default)]
struct EnvRefs {
    signals: std::collections::BTreeSet<usize>,
    vars: std::collections::BTreeSet<usize>,
}

impl EnvRefs {
    fn block(&mut self, body: &[Stmt]) {
        for stmt in body {
            match stmt {
                Stmt::Assign { place, value, .. } => {
                    self.place(place);
                    self.expr(value);
                }
                Stmt::SignalAssign { signal, value, .. } => {
                    self.signals.insert(signal.index());
                    self.expr(value);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.expr(cond);
                    self.block(then_body);
                    self.block(else_body);
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    self.place(var);
                    self.expr(from);
                    self.expr(to);
                    self.block(body);
                }
                Stmt::While { cond, body } => {
                    self.expr(cond);
                    self.block(body);
                }
                Stmt::Wait(cond) => match cond {
                    WaitCond::ForCycles(_) => {}
                    WaitCond::OnSignals(signals) => {
                        self.signals.extend(signals.iter().map(|s| s.index()));
                    }
                    WaitCond::Until(e) => self.expr(e),
                    WaitCond::UntilTimeout { cond, .. } => self.expr(cond),
                },
                Stmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            Arg::In(e) => self.expr(e),
                            Arg::Out(p) | Arg::InOut(p) => self.place(p),
                        }
                    }
                }
                Stmt::ChannelSend { addr, data, .. } => {
                    if let Some(a) = addr {
                        self.expr(a);
                    }
                    self.expr(data);
                }
                Stmt::ChannelReceive { addr, target, .. } => {
                    if let Some(a) = addr {
                        self.expr(a);
                    }
                    self.place(target);
                }
                Stmt::Compute { .. } | Stmt::Return => {}
                Stmt::Assert { cond, .. } => self.expr(cond),
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(_) => {}
            Expr::Signal(s) => {
                self.signals.insert(s.index());
            }
            Expr::Load(place) => self.place(place),
            Expr::Unary { arg, .. } => self.expr(arg),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::SliceOf { base, .. } | Expr::Resize { base, .. } => self.expr(base),
            Expr::DynSliceOf { base, offset, .. } => {
                self.expr(base);
                self.expr(offset);
            }
        }
    }

    fn place(&mut self, p: &Place) {
        match p {
            Place::Var(v) => {
                self.vars.insert(v.index());
            }
            // Local slot types come from the scope procedure's signature,
            // hashed wholesale in `block_env_hash`.
            Place::Local(_) => {}
            Place::Index { base, index } => {
                self.place(base);
                self.expr(index);
            }
            Place::Slice { base, .. } => self.place(base),
            Place::DynSlice { base, offset, .. } => {
                self.place(base);
                self.expr(offset);
            }
        }
    }
}

/// Hashes everything lowering reads from the environment for one block
/// besides its body: the declared types of the signals and variables the
/// body references, the scope procedure's signature (local slot types),
/// and the cost model.
///
/// Hashing only the *referenced* declarations is what lets refinements
/// that differ in data width share their width-independent blocks — an
/// application behavior that only calls procedures and touches its own
/// fixed-width variables compiles once for the whole sweep, no matter
/// what width the bus signals it never names were refined to.
fn block_env_hash(system: &System, scope: CodeRef, body: &[Stmt], costs: &CostModel) -> u64 {
    let mut refs = EnvRefs::default();
    refs.block(body);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    // The referenced indices are already covered by the body hash in
    // `block_key`; pairing each with its declared type (or its absence)
    // pins down exactly what lowering resolves.
    for &s in &refs.signals {
        system.signals.get(s).map(|d| &d.ty).hash(&mut h);
    }
    0xaau8.hash(&mut h);
    for &v in &refs.vars {
        system.variables.get(v).map(|d| &d.ty).hash(&mut h);
    }
    if let CodeRef::Procedure(idx) = scope {
        if let Some(p) = system.procedures.get(idx) {
            for param in &p.params {
                let mode = match param.mode {
                    ParamMode::In => 0u8,
                    ParamMode::Out => 1,
                    ParamMode::InOut => 2,
                };
                mode.hash(&mut h);
                param.ty.hash(&mut h);
            }
            0xffu8.hash(&mut h);
            for l in &p.locals {
                l.ty.hash(&mut h);
            }
        }
    }
    (
        costs.assign_cycles,
        costs.signal_assign_cycles,
        costs.abstract_channel_cycles,
        costs.call_overhead_cycles,
        costs.loop_overhead_cycles,
    )
        .hash(&mut h);
    h.finish()
}

fn block_key(env: u64, kind: u8, name: &str, body: &[Stmt]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    env.hash(&mut h);
    kind.hash(&mut h);
    name.hash(&mut h);
    body.hash(&mut h);
    h.finish()
}

impl Program {
    /// Lowers every behavior and procedure of `system`.
    ///
    /// Statement costs default to the given [`CostModel`] when the
    /// statement's explicit `cost` is absent.
    pub fn compile(system: &System, costs: &CostModel) -> Self {
        Self::compile_cached(system, costs, None)
    }

    /// Lowers `system`, sharing identical blocks through `cache`.
    ///
    /// The cache key is per block and covers only what lowering reads for
    /// that block (see [`block_env_hash`]), so systems that differ only
    /// in declarations a block never references still share it.
    pub fn compile_cached(system: &System, costs: &CostModel, cache: Option<&CodeCache>) -> Self {
        let build = |kind: u8, idx: usize, name: &str, body: &[Stmt]| -> Arc<Code> {
            let scope = if kind == 0 {
                CodeRef::Behavior(idx)
            } else {
                CodeRef::Procedure(idx)
            };
            let make = || lower_block(system, scope, name, body, costs);
            match cache {
                Some(c) => {
                    let env = block_env_hash(system, scope, body, costs);
                    c.get_or_build(block_key(env, kind, name, body), make)
                }
                None => Arc::new(make()),
            }
        };
        let behaviors = system
            .behaviors
            .iter()
            .enumerate()
            .map(|(i, b)| build(0, i, &b.name, &b.body))
            .collect();
        let procedures = system
            .procedures
            .iter()
            .enumerate()
            .map(|(i, p)| build(1, i, &p.name, &p.body))
            .collect();
        Self {
            behaviors,
            procedures,
        }
    }
}

fn lower_block(
    system: &System,
    scope: CodeRef,
    name: &str,
    body: &[Stmt],
    costs: &CostModel,
) -> Code {
    let mut lowerer = Lowerer {
        system,
        scope,
        costs,
        out: Vec::new(),
        max_regs: 0,
    };
    lowerer.block(body);
    lowerer.out.push(Instr::Ret);
    Code {
        name: name.to_string(),
        instrs: lowerer.out,
        max_regs: lowerer.max_regs,
    }
}

/// Compiles one (already folded) expression into micro-ops.
///
/// Exposed to the crate for the differential test harness.
pub(crate) fn compile_expr(system: &System, expr: &Expr) -> ExprCode {
    let mut c = ExprCompiler {
        system,
        ops: Vec::new(),
        pool: Vec::new(),
        next_reg: 0,
    };
    let result = c.expr(expr);
    ExprCode {
        ops: c.ops.into_boxed_slice(),
        result,
        pool: c.pool.into_boxed_slice(),
        nregs: c.next_reg,
    }
}

struct ExprCompiler<'a> {
    system: &'a System,
    ops: Vec<MicroOp>,
    pool: Vec<Value>,
    next_reg: u16,
}

impl ExprCompiler<'_> {
    fn intern(&mut self, v: &Value) -> u16 {
        if let Some(i) = self.pool.iter().position(|p| p == v) {
            return u16::try_from(i).expect("constant pool overflow");
        }
        self.pool.push(v.clone());
        u16::try_from(self.pool.len() - 1).expect("constant pool overflow")
    }

    fn alloc(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register file overflow");
        r
    }

    fn expr(&mut self, e: &Expr) -> Src {
        match e {
            Expr::Const(v) => Src::Const(self.intern(v)),
            Expr::Signal(s) => Src::Signal(s.index() as u32),
            Expr::Load(place) => self.place_read(place),
            Expr::Unary { op, arg } => {
                let a = self.expr(arg);
                // Peephole: `not (sig = const)` flips the fused compare
                // instead of spending a dispatch on the negation. Safe
                // because expression results are single-use (trees).
                if *op == UnaryOp::Not {
                    if let Some(MicroOp::CmpSignalIs { ne, dst, .. }) = self.ops.last_mut() {
                        if Src::Reg(*dst) == a {
                            *ne = !*ne;
                            return a;
                        }
                    }
                }
                let dst = self.alloc();
                self.ops.push(MicroOp::Unary { op: *op, a, dst });
                Src::Reg(dst)
            }
            Expr::Binary { op, lhs, rhs } => {
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    if let Some(src) = self.try_cmp_signal(*op, lhs, rhs) {
                        return src;
                    }
                }
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let dst = self.alloc();
                self.ops.push(MicroOp::Binary { op: *op, a, b, dst });
                Src::Reg(dst)
            }
            Expr::SliceOf { base, hi, lo } => {
                let a = self.expr(base);
                let dst = self.alloc();
                self.ops.push(MicroOp::Slice {
                    a,
                    hi: *hi,
                    lo: *lo,
                    dst,
                });
                Src::Reg(dst)
            }
            Expr::Resize { base, width } => {
                let a = self.expr(base);
                let dst = self.alloc();
                self.ops.push(MicroOp::Resize {
                    a,
                    width: *width,
                    dst,
                });
                Src::Reg(dst)
            }
            Expr::DynSliceOf {
                base,
                offset,
                width,
            } => {
                let a = self.expr(base);
                let offset = self.expr(offset);
                let dst = self.alloc();
                self.ops.push(MicroOp::DynSlice {
                    a,
                    offset,
                    width: *width,
                    dst,
                });
                Src::Reg(dst)
            }
        }
    }

    /// Fuses `sig = const` / `sig /= const` into [`MicroOp::CmpSignalIs`]
    /// when the comparison is provably a stored-value equality (the same
    /// shapes [`WaitSpec::UntilSignalIs`] specializes).
    fn try_cmp_signal(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Option<Src> {
        let (s, v) = match (lhs, rhs) {
            (Expr::Signal(s), Expr::Const(v)) | (Expr::Const(v), Expr::Signal(s)) => (s, v),
            _ => return None,
        };
        let value = precoerced_eq_const(self.system, *s, v)?;
        let pool = self.intern(&value);
        let dst = self.alloc();
        self.ops.push(MicroOp::CmpSignalIs {
            signal: s.index() as u32,
            pool,
            ne: matches!(op, BinOp::Ne),
            dst,
        });
        Some(Src::Reg(dst))
    }

    fn place_read(&mut self, place: &Place) -> Src {
        match place {
            Place::Var(v) => Src::Var(v.index() as u32),
            Place::Local(slot) => Src::Local(u16::try_from(*slot).expect("local slot overflow")),
            Place::Index { base, index } => {
                let b = self.place_read(base);
                let i = self.expr(index);
                let dst = self.alloc();
                self.ops.push(MicroOp::Elem {
                    base: b,
                    index: i,
                    dst,
                });
                Src::Reg(dst)
            }
            Place::Slice { base, hi, lo } => {
                let a = self.place_read(base);
                let dst = self.alloc();
                self.ops.push(MicroOp::Slice {
                    a,
                    hi: *hi,
                    lo: *lo,
                    dst,
                });
                Src::Reg(dst)
            }
            Place::DynSlice {
                base,
                offset,
                width,
            } => {
                let a = self.place_read(base);
                let offset = self.expr(offset);
                let dst = self.alloc();
                self.ops.push(MicroOp::DynSlice {
                    a,
                    offset,
                    width: *width,
                    dst,
                });
                Src::Reg(dst)
            }
        }
    }
}

/// Pre-coerces `v` for an equality against `signal`'s stored value, or
/// `None` when the general comparison semantics are wider than a stored
/// value compare (mixed widths with truncated bits, non-Bit/Bits types).
fn precoerced_eq_const(system: &System, signal: SignalId, v: &Value) -> Option<Value> {
    let ty = &system.signals.get(signal.index())?.ty;
    match (ty, v) {
        (Ty::Bit, Value::Bit(_)) => Some(v.clone()),
        (Ty::Bits(w), Value::Bits(bv)) if bv.width() <= *w => {
            // Zero-extending the constant to the signal's width is exactly
            // the runtime resize-and-compare semantics.
            Some(Value::Bits(bv.resized(*w)))
        }
        _ => None,
    }
}

struct Lowerer<'a> {
    system: &'a System,
    scope: CodeRef,
    costs: &'a CostModel,
    out: Vec<Instr>,
    max_regs: u16,
}

impl Lowerer<'_> {
    /// Folds and compiles an expression, tracking register demand.
    fn expr(&mut self, e: &Expr) -> ExprCode {
        let code = compile_expr(self.system, &fold_expr(e));
        self.max_regs = self.max_regs.max(code.nregs);
        code
    }

    /// Compiles a pre-folded expression (used for place sub-expressions
    /// that `fold_place` already folded).
    fn folded_expr(&mut self, e: &Expr) -> ExprCode {
        let code = compile_expr(self.system, e);
        self.max_regs = self.max_regs.max(code.nregs);
        code
    }

    fn place(&mut self, p: &Place) -> CPlace {
        let folded = fold_place(p);
        match &folded {
            Place::Var(v) => CPlace::Var(v.index() as u32),
            Place::Local(slot) => CPlace::Local(u16::try_from(*slot).expect("local slot overflow")),
            _ => {
                let ty = place_ty(self.system, self.scope, &folded).ok();
                let mut steps = Vec::new();
                let root = self.flatten_place(&folded, &mut steps);
                CPlace::Path(Box::new(CPath {
                    root,
                    steps: steps.into_boxed_slice(),
                    ty,
                }))
            }
        }
    }

    fn flatten_place(&mut self, p: &Place, steps: &mut Vec<CPathStep>) -> CRoot {
        match p {
            Place::Var(v) => CRoot::Var(v.index() as u32),
            Place::Local(slot) => CRoot::Local(u16::try_from(*slot).expect("local slot overflow")),
            Place::Index { base, index } => {
                let root = self.flatten_place(base, steps);
                let idx = self.folded_expr(index);
                steps.push(CPathStep::Elem(idx));
                root
            }
            Place::Slice { base, hi, lo } => {
                let root = self.flatten_place(base, steps);
                steps.push(CPathStep::Slice(*hi, *lo));
                root
            }
            Place::DynSlice {
                base,
                offset,
                width,
            } => {
                let root = self.flatten_place(base, steps);
                let off = self.folded_expr(offset);
                steps.push(CPathStep::DynSlice(off, *width));
                root
            }
        }
    }

    fn arg(&mut self, a: &Arg) -> CArg {
        match a {
            Arg::In(e) => CArg::In(self.expr(e)),
            Arg::Out(p) => CArg::Out(self.place(p)),
            Arg::InOut(p) => CArg::InOut(self.place(p)),
        }
    }

    fn compile_wait(&mut self, cond: &WaitCond) -> WaitSpec {
        match cond {
            WaitCond::ForCycles(n) => WaitSpec::ForCycles(*n),
            WaitCond::OnSignals(signals) => WaitSpec::OnSignals(signals.clone()),
            WaitCond::Until(expr) => {
                let folded = fold_expr(expr);
                if let Some(spec) = specialize_wait(self.system, &folded) {
                    return spec;
                }
                WaitSpec::Until(Arc::new(self.compiled_cond(folded)))
            }
            WaitCond::UntilTimeout { cond, cycles } => {
                let folded = fold_expr(cond);
                if let Some(WaitSpec::UntilSignalIs { signal, value }) =
                    specialize_wait(self.system, &folded)
                {
                    return WaitSpec::UntilSignalIsTimeout {
                        signal,
                        value,
                        cycles: *cycles,
                    };
                }
                WaitSpec::UntilTimeout {
                    cond: Arc::new(self.compiled_cond(folded)),
                    cycles: *cycles,
                }
            }
        }
    }

    fn compiled_cond(&mut self, folded: Expr) -> CompiledCond {
        let code = self.folded_expr(&folded);
        let mut sensitivity = Vec::new();
        folded.collect_signals(&mut sensitivity);
        CompiledCond {
            code,
            display: folded,
            sensitivity,
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        for stmt in body {
            match stmt {
                Stmt::Assign { place, value, cost } => {
                    let instr = Instr::Assign {
                        place: self.place(place),
                        value: self.expr(value),
                        cost: cost.unwrap_or(self.costs.assign_cycles),
                    };
                    self.out.push(instr);
                }
                Stmt::SignalAssign {
                    signal,
                    value,
                    cost,
                } => {
                    let mut value = self.expr(value);
                    // Constant drives are pre-coerced to the signal's type
                    // so the runtime coercion hits its identity fast path.
                    if value.ops.is_empty() {
                        if let (Src::Const(i), Some(decl)) =
                            (value.result, self.system.signals.get(signal.index()))
                        {
                            let v = coerce(value.pool[i as usize].clone(), &decl.ty);
                            value.pool[i as usize] = v;
                        }
                    }
                    self.out.push(Instr::SignalWrite {
                        signal: *signal,
                        value,
                        cost: cost.unwrap_or(self.costs.signal_assign_cycles),
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let branch_at = self.out.len();
                    self.out.push(Instr::Jump(0)); // placeholder for JumpIfNot
                    self.block(then_body);
                    if else_body.is_empty() {
                        let end = self.out.len();
                        let cond = self.expr(cond);
                        self.out[branch_at] = Instr::JumpIfNot { cond, target: end };
                    } else {
                        let jump_end_at = self.out.len();
                        self.out.push(Instr::Jump(0)); // placeholder
                        let else_start = self.out.len();
                        let cond = self.expr(cond);
                        self.out[branch_at] = Instr::JumpIfNot {
                            cond,
                            target: else_start,
                        };
                        self.block(else_body);
                        let end = self.out.len();
                        self.out[jump_end_at] = Instr::Jump(end);
                    }
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let init = Instr::LoopInit {
                        var: self.place(var),
                        from: self.expr(from),
                        to: self.expr(to),
                    };
                    self.out.push(init);
                    let test_at = self.out.len();
                    self.out.push(Instr::Jump(0)); // placeholder for LoopTest
                    self.block(body);
                    let incr_at = self.out.len();
                    let incr_var = self.place(var);
                    self.out.push(Instr::LoopIncr {
                        var: incr_var,
                        body: test_at + 1,
                        exit: 0, // patched below
                    });
                    let exit = self.out.len();
                    let test_var = self.place(var);
                    self.out[test_at] = Instr::LoopTest {
                        var: test_var,
                        exit,
                    };
                    if let Instr::LoopIncr { exit: e, .. } = &mut self.out[incr_at] {
                        *e = exit;
                    }
                }
                Stmt::While { cond, body } => {
                    let test_at = self.out.len();
                    self.out.push(Instr::Jump(0)); // placeholder
                    self.block(body);
                    self.out.push(Instr::Jump(test_at));
                    let exit = self.out.len();
                    let cond = self.expr(cond);
                    self.out[test_at] = Instr::JumpIfNot { cond, target: exit };
                }
                Stmt::Wait(cond) => {
                    let spec = self.compile_wait(cond);
                    self.out.push(Instr::Wait(spec));
                }
                Stmt::Call { procedure, args } => {
                    let args = args.iter().map(|a| self.arg(a)).collect();
                    self.out.push(Instr::Call {
                        procedure: procedure.index(),
                        args,
                    });
                }
                Stmt::ChannelSend {
                    channel,
                    addr,
                    data,
                } => {
                    let instr = Instr::ChannelSend {
                        channel: *channel,
                        addr: addr.as_ref().map(|a| self.expr(a)),
                        data: self.expr(data),
                        cost: self.costs.abstract_channel_cycles,
                    };
                    self.out.push(instr);
                }
                Stmt::ChannelReceive {
                    channel,
                    addr,
                    target,
                } => {
                    let instr = Instr::ChannelReceive {
                        channel: *channel,
                        addr: addr.as_ref().map(|a| self.expr(a)),
                        target: self.place(target),
                        cost: self.costs.abstract_channel_cycles,
                    };
                    self.out.push(instr);
                }
                Stmt::Compute { cycles, .. } => self.out.push(Instr::Consume { cycles: *cycles }),
                Stmt::Assert { cond, note } => {
                    let cond = self.expr(cond);
                    self.out.push(Instr::Assert {
                        cond,
                        note: note.clone(),
                    });
                }
                Stmt::Return => self.out.push(Instr::Ret),
            }
        }
    }
}

/// Folds literal subtrees into [`Expr::Const`].
///
/// Folding only happens where the run-time evaluation would succeed with
/// the same result (e.g. an out-of-range constant slice is left in place
/// so it still fails at run time, not at compile time).
fn fold_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Signal(_) => expr.clone(),
        Expr::Load(place) => Expr::Load(fold_place(place)),
        Expr::Unary { op, arg } => {
            let arg = fold_expr(arg);
            if let Expr::Const(v) = &arg {
                if let Ok(res) = eval_unary(*op, v) {
                    return Expr::Const(res);
                }
            }
            Expr::Unary {
                op: *op,
                arg: Box::new(arg),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs = fold_expr(lhs);
            let rhs = fold_expr(rhs);
            if let (Expr::Const(a), Expr::Const(b)) = (&lhs, &rhs) {
                if let Ok(res) = eval_binary(*op, a, b) {
                    return Expr::Const(res);
                }
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        }
        Expr::SliceOf { base, hi, lo } => {
            let base = fold_expr(base);
            if let Expr::Const(v) = &base {
                let bits = v.to_bits();
                if *hi >= *lo && *hi < bits.width() {
                    return Expr::Const(ifsyn_spec::Value::Bits(bits.slice(*hi, *lo)));
                }
            }
            Expr::SliceOf {
                base: Box::new(base),
                hi: *hi,
                lo: *lo,
            }
        }
        Expr::Resize { base, width } => {
            let base = fold_expr(base);
            if let Expr::Const(v) = &base {
                return Expr::Const(ifsyn_spec::Value::Bits(v.to_bits().resized(*width)));
            }
            Expr::Resize {
                base: Box::new(base),
                width: *width,
            }
        }
        Expr::DynSliceOf {
            base,
            offset,
            width,
        } => {
            let base = fold_expr(base);
            let offset = fold_expr(offset);
            if let (Expr::Const(bv), Expr::Const(ov)) = (&base, &offset) {
                if let Some(lo) = ov.as_i64().ok().and_then(|i| u32::try_from(i).ok()) {
                    let bits = bv.to_bits();
                    let hi = lo + width - 1;
                    if *width > 0 && hi < bits.width() {
                        return Expr::Const(ifsyn_spec::Value::Bits(bits.slice(hi, lo)));
                    }
                }
            }
            Expr::DynSliceOf {
                base: Box::new(base),
                offset: Box::new(offset),
                width: *width,
            }
        }
    }
}

/// Folds index and offset expressions inside a place.
fn fold_place(place: &Place) -> Place {
    match place {
        Place::Var(_) | Place::Local(_) => place.clone(),
        Place::Index { base, index } => Place::Index {
            base: Box::new(fold_place(base)),
            index: Box::new(fold_expr(index)),
        },
        Place::Slice { base, hi, lo } => Place::Slice {
            base: Box::new(fold_place(base)),
            hi: *hi,
            lo: *lo,
        },
        Place::DynSlice {
            base,
            offset,
            width,
        } => Place::DynSlice {
            base: Box::new(fold_place(base)),
            offset: Box::new(fold_expr(offset)),
            width: *width,
        },
    }
}

/// Folds an expression then compiles it — the exact pipeline production
/// lowering applies. Exposed to the crate for the differential tests.
pub(crate) fn fold_and_compile(system: &System, expr: &Expr) -> ExprCode {
    compile_expr(system, &fold_expr(expr))
}

/// Recognizes the single-signal wait idioms of generated handshake code
/// (`sig`, `not sig`, `sig = const`) and compiles them to
/// [`WaitSpec::UntilSignalIs`].
///
/// Only shapes whose runtime comparison is exactly a stored-value
/// equality are specialized; anything wider (mixed widths with nonzero
/// truncated bits, non-literal operands) keeps the general path.
fn specialize_wait(system: &System, expr: &Expr) -> Option<WaitSpec> {
    let bit_signal_is = |s: &SignalId, b: bool| -> Option<WaitSpec> {
        matches!(system.signal(*s).ty, Ty::Bit).then(|| WaitSpec::UntilSignalIs {
            signal: *s,
            value: Value::Bit(b),
        })
    };
    match expr {
        Expr::Signal(s) => bit_signal_is(s, true),
        Expr::Unary {
            op: UnaryOp::Not,
            arg,
        } => match &**arg {
            Expr::Signal(s) => bit_signal_is(s, false),
            _ => None,
        },
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let (s, v) = match (&**lhs, &**rhs) {
                (Expr::Signal(s), Expr::Const(v)) | (Expr::Const(v), Expr::Signal(s)) => (s, v),
                _ => None?,
            };
            let value = precoerced_eq_const(system, *s, v)?;
            Some(WaitSpec::UntilSignalIs { signal: *s, value })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{System, Ty, VarId};

    fn compile_body(body: Vec<Stmt>) -> Vec<Instr> {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let _x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(b).body = body;
        Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone()
    }

    #[test]
    fn straight_line_lowered_in_order_with_ret() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![
            assign(var(x), int_const(1, 16)),
            Stmt::compute(4, "w"),
        ]);
        assert!(matches!(instrs[0], Instr::Assign { cost: 1, .. }));
        assert!(matches!(instrs[1], Instr::Consume { cycles: 4 }));
        assert!(matches!(instrs[2], Instr::Ret));
        assert_eq!(instrs.len(), 3);
    }

    #[test]
    fn if_without_else_branches_past_then() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_then(
            bit_const(true),
            vec![assign(var(x), int_const(1, 16))],
        )]);
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 2),
            other => panic!("expected JumpIfNot, got {other:?}"),
        }
    }

    #[test]
    fn if_else_jump_targets_are_consistent() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_else(
            bit_const(true),
            vec![assign(var(x), int_const(1, 16))],
            vec![assign(var(x), int_const(2, 16))],
        )]);
        // 0: JumpIfNot -> 3 ; 1: then-assign ; 2: Jump -> 4 ; 3: else-assign ; 4: Ret
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        match &instrs[2] {
            Instr::Jump(t) => assert_eq!(*t, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(instrs[4], Instr::Ret));
    }

    #[test]
    fn for_loop_shape_is_fused() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![for_loop(
            var(x),
            int_const(0, 16),
            int_const(3, 16),
            vec![Stmt::compute(1, "w")],
        )]);
        // 0: LoopInit ; 1: LoopTest -> 4 ; 2: Consume ; 3: LoopIncr {body: 2, exit: 4} ; 4: Ret
        assert!(matches!(instrs[0], Instr::LoopInit { .. }));
        match &instrs[1] {
            Instr::LoopTest { exit, .. } => assert_eq!(*exit, 4),
            other => panic!("unexpected {other:?}"),
        }
        match &instrs[3] {
            Instr::LoopIncr { body, exit, .. } => {
                assert_eq!(*body, 2);
                assert_eq!(*exit, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_loop_shape() {
        let instrs = compile_body(vec![while_loop(
            bit_const(false),
            vec![Stmt::compute(1, "w")],
        )]);
        // 0: JumpIfNot -> 3 ; 1: Consume ; 2: Jump -> 0 ; 3: Ret
        match &instrs[0] {
            Instr::JumpIfNot { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(instrs[2], Instr::Jump(0)));
    }

    #[test]
    fn explicit_costs_override_model() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign_cost(var(x), int_const(1, 16), 9)]);
        assert!(matches!(instrs[0], Instr::Assign { cost: 9, .. }));
    }

    #[test]
    fn constant_subtrees_fold_to_zero_op_code() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign(
            var(x),
            add(int_const(2, 16), int_const(3, 16)),
        )]);
        match &instrs[0] {
            Instr::Assign { value, .. } => {
                let v = value.const_value().expect("folded to a pooled const");
                assert_eq!(v.as_i64().unwrap(), 5);
                assert_eq!(value.nregs, 0);
            }
            other => panic!("expected folded const, got {other:?}"),
        }
    }

    #[test]
    fn non_constant_subtrees_compile_to_micro_ops() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![assign(var(x), add(load(var(x)), int_const(3, 16)))]);
        match &instrs[0] {
            Instr::Assign { value, .. } => {
                // One binary op with both leaf operands flattened in.
                assert_eq!(value.ops.len(), 1);
                assert!(matches!(
                    value.ops[0],
                    MicroOp::Binary {
                        op: BinOp::Add,
                        a: Src::Var(0),
                        b: Src::Const(0),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_range_const_slice_is_left_for_runtime() {
        let x = VarId::new(0);
        let bad = Expr::SliceOf {
            base: Box::new(bits_const(0b11, 2)),
            hi: 5,
            lo: 0,
        };
        let instrs = compile_body(vec![assign(var(x), bad)]);
        match &instrs[0] {
            Instr::Assign { value, .. } => {
                assert!(matches!(value.ops[0], MicroOp::Slice { hi: 5, lo: 0, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signal_eq_const_compiles_to_compare_superinstruction() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("addr", Ty::Bits(8));
        let x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![if_then(
            eq(signal(s), bits_const(0b101, 3)),
            vec![assign(var(x), int_const(1, 16))],
        )];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::JumpIfNot { cond, .. } => {
                assert_eq!(cond.ops.len(), 1);
                match &cond.ops[0] {
                    MicroOp::CmpSignalIs {
                        signal, pool, ne, ..
                    } => {
                        assert_eq!(*signal, s.index() as u32);
                        assert!(!*ne);
                        // Pre-resized to the signal's width.
                        match &cond.pool[*pool as usize] {
                            Value::Bits(bv) => assert_eq!(bv.width(), 8),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    other => panic!("expected CmpSignalIs, got {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn word_slice_and_drive_is_one_micro_op() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let bus = sys.add_signal("DATA", Ty::Bits(8));
        let word = sys.add_variable("word", Ty::Bits(32), b);
        let off = sys.add_variable("off", Ty::Int(8), b);
        sys.behavior_mut(b).body = vec![drive(
            bus,
            Expr::DynSliceOf {
                base: Box::new(load(var(word))),
                offset: Box::new(load(var(off))),
                width: 8,
            },
        )];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::SignalWrite { value, .. } => {
                // Both the word and the offset are flattened operands.
                assert_eq!(value.ops.len(), 1);
                assert!(matches!(
                    value.ops[0],
                    MicroOp::DynSlice {
                        a: Src::Var(_),
                        offset: Src::Var(_),
                        width: 8,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wait_until_signal_eq_const_specializes_after_folding() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("start", Ty::Bit);
        // `not(false)` folds to the constant `true`, exposing the
        // signal-vs-const shape to the wait specializer.
        sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), not(bit_const(false))))];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::Wait(WaitSpec::UntilSignalIs { signal, value }) => {
                assert_eq!(*signal, s);
                assert_eq!(*value, Value::Bit(true));
            }
            other => panic!("expected specialized wait, got {other:?}"),
        }
    }

    #[test]
    fn wait_until_bits_const_is_resized_to_signal_width() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("addr", Ty::Bits(8));
        sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), bits_const(0b101, 3)))];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::Wait(WaitSpec::UntilSignalIs { signal, value }) => {
                assert_eq!(*signal, s);
                // Pre-resized so the runtime compare needs no coercion.
                match value {
                    Value::Bits(bv) => {
                        assert_eq!(bv.width(), 8);
                        assert_eq!(bv.to_u64(), 0b101);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("expected specialized wait, got {other:?}"),
        }
    }

    #[test]
    fn wait_until_general_expr_keeps_compiled_form_and_sensitivity() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let s = sys.add_signal("start", Ty::Bit);
        let t = sys.add_signal("stop", Ty::Bit);
        // Signal-vs-signal comparison cannot specialize; it must keep the
        // compiled form with both signals in the sensitivity list.
        sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), signal(t)))];
        let instrs = Program::compile(&sys, &CostModel::new()).behaviors[0]
            .instrs
            .clone();
        match &instrs[0] {
            Instr::Wait(WaitSpec::Until(cond)) => {
                assert_eq!(cond.sensitivity, vec![s, t]);
                assert!(!cond.code.ops.is_empty());
            }
            other => panic!("expected general wait, got {other:?}"),
        }
    }

    #[test]
    fn nested_ifs_terminate_with_single_ret() {
        let x = VarId::new(0);
        let instrs = compile_body(vec![if_then(
            bit_const(true),
            vec![if_else(
                bit_const(false),
                vec![assign(var(x), int_const(1, 16))],
                vec![assign(var(x), int_const(2, 16))],
            )],
        )]);
        let rets = instrs.iter().filter(|i| matches!(i, Instr::Ret)).count();
        assert_eq!(rets, 1);
        // All jump targets must be in range.
        for i in &instrs {
            match i {
                Instr::Jump(t) | Instr::JumpIfNot { target: t, .. } => {
                    assert!(*t <= instrs.len())
                }
                Instr::LoopTest { exit, .. } => assert!(*exit <= instrs.len()),
                Instr::LoopIncr { body, exit, .. } => {
                    assert!(*body < instrs.len());
                    assert!(*exit <= instrs.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn code_cache_shares_identical_blocks() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![assign(var(x), int_const(1, 16))];
        let cache = CodeCache::new();
        let p1 = Program::compile_cached(&sys, &CostModel::new(), Some(&cache));
        let p2 = Program::compile_cached(&sys, &CostModel::new(), Some(&cache));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&p1.behaviors[0], &p2.behaviors[0]));
    }

    #[test]
    fn code_cache_shares_blocks_across_unreferenced_decl_changes() {
        // The same behavior body in two systems whose only difference is
        // the width of a signal the body never references — exactly the
        // shape of a width sweep's application behaviors.
        let build = |data_width: u32| {
            let mut sys = System::new("t");
            let m = sys.add_module("chip");
            let b = sys.add_behavior("P", m);
            let _data = sys.add_signal("DATA", Ty::Bits(data_width));
            let x = sys.add_variable("x", Ty::Int(16), b);
            sys.behavior_mut(b).body = vec![assign(var(x), int_const(1, 16))];
            sys
        };
        let cache = CodeCache::new();
        let p8 = Program::compile_cached(&build(8), &CostModel::new(), Some(&cache));
        let p16 = Program::compile_cached(&build(16), &CostModel::new(), Some(&cache));
        assert_eq!(cache.len(), 1, "unreferenced width must not split the key");
        assert!(Arc::ptr_eq(&p8.behaviors[0], &p16.behaviors[0]));
    }

    #[test]
    fn code_cache_misses_on_referenced_signal_type_change() {
        // Same body, but the driven signal's declared type differs —
        // lowering pre-coerces the constant to it, so the key must split.
        let build = |data_width: u32| {
            let mut sys = System::new("t");
            let m = sys.add_module("chip");
            let b = sys.add_behavior("P", m);
            let data = sys.add_signal("DATA", Ty::Bits(data_width));
            sys.behavior_mut(b).body = vec![drive(data, bits_const(1, 4))];
            sys
        };
        let cache = CodeCache::new();
        let p8 = Program::compile_cached(&build(8), &CostModel::new(), Some(&cache));
        let p16 = Program::compile_cached(&build(16), &CostModel::new(), Some(&cache));
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&p8.behaviors[0], &p16.behaviors[0]));
    }

    #[test]
    fn code_cache_misses_on_different_cost_model() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![assign(var(x), int_const(1, 16))];
        let cache = CodeCache::new();
        let _ = Program::compile_cached(&sys, &CostModel::new(), Some(&cache));
        let mut other = CostModel::new();
        other.assign_cycles = 7;
        let _ = Program::compile_cached(&sys, &other, Some(&cache));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn constant_pool_is_deduplicated() {
        let mut sys = System::new("t");
        let _ = sys.add_module("chip");
        let e = add(
            mul(int_const(7, 8), load(var(VarId::new(0)))),
            mul(int_const(7, 8), load(var(VarId::new(0)))),
        );
        let code = compile_expr(&sys, &e);
        assert_eq!(code.pool.len(), 1);
    }
}

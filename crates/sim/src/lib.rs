//! # ifsyn-sim — discrete-event simulation of specification IR
//!
//! The DAC'94 paper's headline property is that protocol generation yields
//! a *simulatable* refined specification. This crate provides the
//! simulator: a deterministic discrete-event kernel with VHDL-style
//! semantics —
//!
//! * **signals** update at delta boundaries; an *event* is a value change;
//! * **processes** execute sequentially and suspend on `wait` statements;
//! * **time** advances in integer clock cycles; statements carry cycle
//!   costs (from the shared [`ifsyn_estimate::CostModel`]) so the measured
//!   finish time of a process is its execution time in clocks — directly
//!   comparable to the paper's Fig. 7 y-axis.
//!
//! One deliberate deviation from strict VHDL: `wait until` is
//! *level-sensitive* (if the condition already holds, execution continues
//! without waiting for an edge). This removes the lost-wakeup hazard of
//! edge-triggered waits in generated handshake code and matches
//! system-level languages like SpecCharts.
//!
//! ## Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use ifsyn_sim::Simulator;
//! use ifsyn_spec::{System, Stmt, Ty, dsl::*};
//!
//! let mut sys = System::new("demo");
//! let m = sys.add_module("chip");
//! let b = sys.add_behavior("P", m);
//! let x = sys.add_variable("X", Ty::Int(16), b);
//! sys.behavior_mut(b).body = vec![
//!     assign(var(x), int_const(5, 16)),
//!     Stmt::compute(9, "work"),
//! ];
//!
//! let report = Simulator::new(&sys)?.run_to_quiescence()?;
//! assert_eq!(report.finish_time(b), Some(10)); // 1 assign + 9 compute
//! assert_eq!(report.final_variable(x).as_i64()?, 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod config;
mod diagnose;
mod error;
mod eval;
mod exec;
mod fault;
mod kernel;
mod lockstep;
mod process;
mod program;
mod report;
mod shard;

pub mod analysis;
pub mod trace;
pub mod vcd;

pub use check::{
    BoundedInfo, CheckConfig, CheckStats, Checker, Counterexample, EnvFault, PropertyReport,
    StateSpace, StateView, Verdict,
};
pub use config::SimConfig;
pub use diagnose::{BlockedWait, DeadlockDiagnosis};
pub use error::SimError;
pub use exec::{ExprCode, MicroOp, Src};
pub use fault::{Fault, FaultKind, FaultPlan, InjectedFault};
pub use kernel::Simulator;
pub use lockstep::{LockstepSim, LockstepStats};
pub use program::{Code, CodeCache, CompiledCond, Instr, Program, WaitSpec};
pub use report::{SimReport, TraceEvent};
pub use shard::ParallelStats;

/// Test-support surface: evaluate one expression through each engine.
///
/// Exists so the differential property test in `tests/` can compare the
/// production bytecode pipeline against the reference tree-walker without
/// the crate exposing its evaluation internals as real API.
#[doc(hidden)]
pub mod testing {
    use ifsyn_spec::{Expr, System, Value};

    use crate::error::SimError;
    use crate::eval::{self, EvalCtx};
    use crate::exec::{self, RegFile};
    use crate::program;

    /// Evaluates `expr` with the reference tree-walking interpreter in a
    /// frameless (behavior-scope) context over the given storage.
    pub fn eval_tree(
        system: &System,
        vars: &[Value],
        signals: &[Value],
        expr: &Expr,
    ) -> Result<Value, SimError> {
        let _ = system;
        let ctx = EvalCtx {
            vars,
            signals,
            locals: &[],
        };
        eval::eval(&ctx, expr).map(|e| e.into_owned())
    }

    /// Evaluates `expr` through the production pipeline: constant fold,
    /// compile to register bytecode, execute with a fresh register file.
    pub fn eval_bytecode(
        system: &System,
        vars: &[Value],
        signals: &[Value],
        expr: &Expr,
    ) -> Result<Value, SimError> {
        let code = program::fold_and_compile(system, expr);
        let ctx = EvalCtx {
            vars,
            signals,
            locals: &[],
        };
        let mut regs = RegFile::new();
        exec::eval_code(&ctx, &code, &mut regs).cloned()
    }
}

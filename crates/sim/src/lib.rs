//! # ifsyn-sim — discrete-event simulation of specification IR
//!
//! The DAC'94 paper's headline property is that protocol generation yields
//! a *simulatable* refined specification. This crate provides the
//! simulator: a deterministic discrete-event kernel with VHDL-style
//! semantics —
//!
//! * **signals** update at delta boundaries; an *event* is a value change;
//! * **processes** execute sequentially and suspend on `wait` statements;
//! * **time** advances in integer clock cycles; statements carry cycle
//!   costs (from the shared [`ifsyn_estimate::CostModel`]) so the measured
//!   finish time of a process is its execution time in clocks — directly
//!   comparable to the paper's Fig. 7 y-axis.
//!
//! One deliberate deviation from strict VHDL: `wait until` is
//! *level-sensitive* (if the condition already holds, execution continues
//! without waiting for an edge). This removes the lost-wakeup hazard of
//! edge-triggered waits in generated handshake code and matches
//! system-level languages like SpecCharts.
//!
//! ## Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use ifsyn_sim::Simulator;
//! use ifsyn_spec::{System, Stmt, Ty, dsl::*};
//!
//! let mut sys = System::new("demo");
//! let m = sys.add_module("chip");
//! let b = sys.add_behavior("P", m);
//! let x = sys.add_variable("X", Ty::Int(16), b);
//! sys.behavior_mut(b).body = vec![
//!     assign(var(x), int_const(5, 16)),
//!     Stmt::compute(9, "work"),
//! ];
//!
//! let report = Simulator::new(&sys)?.run_to_quiescence()?;
//! assert_eq!(report.finish_time(b), Some(10)); // 1 assign + 9 compute
//! assert_eq!(report.final_variable(x).as_i64()?, 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod diagnose;
mod error;
mod eval;
mod fault;
mod kernel;
mod process;
mod program;
mod report;

pub mod analysis;
pub mod vcd;

pub use config::SimConfig;
pub use diagnose::{BlockedWait, DeadlockDiagnosis};
pub use error::SimError;
pub use fault::{Fault, FaultKind, FaultPlan, InjectedFault};
pub use kernel::Simulator;
pub use program::{Instr, Program, WaitSpec};
pub use report::{SimReport, TraceEvent};

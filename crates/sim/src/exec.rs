//! The register-bytecode expression engine.
//!
//! Lowering (see [`crate::program`]) compiles every constant-folded
//! [`ifsyn_spec::Expr`] into an [`ExprCode`]: a flat sequence of
//! [`MicroOp`]s over a small virtual register file, executed by the
//! non-recursive loop in [`eval_code`]. Three properties make this the
//! hot-path winner over the tree walker it replaced:
//!
//! * **operand flattening** — every micro-op operand is a [`Src`] slot
//!   that can name a register, a pooled constant, a signal, a variable or
//!   a frame local directly, so leaf loads cost *zero* micro-ops and the
//!   generated-protocol idiom `DATA_BUS(offset, w)` (word slice-and-drive
//!   from a variable) is a single [`MicroOp::DynSlice`];
//! * **no recursion, no Cow** — the dispatch loop steps through a boxed
//!   slice; each op writes one owned [`Value`] into its destination
//!   register of a per-simulator register file that is reused across all
//!   evaluations (no per-eval allocation);
//! * **superinstructions** — the handshake idiom `sig = const` (and its
//!   negation) compiles to [`MicroOp::CmpSignalIs`] with the constant
//!   pre-coerced to the signal's type at compile time, so the run-time
//!   check is one stored-value comparison.
//!
//! The old tree walker ([`crate::eval`]) is kept as the semantic oracle
//! for the differential test suite.

use std::borrow::Cow;

use ifsyn_spec::{BinOp, BitVec, Ty, UnaryOp, Value};

use crate::error::SimError;
use crate::eval::{eval_binary, eval_unary, EvalCtx};

/// A micro-op operand: where a value is read from.
///
/// Leaf loads are folded into the consuming op, so an operand names
/// storage directly instead of requiring a separate load instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A virtual register written by an earlier micro-op.
    Reg(u16),
    /// An entry of the owning [`ExprCode`]'s constant pool.
    Const(u16),
    /// The current value of a signal, by index.
    Signal(u32),
    /// A system variable, by index.
    Var(u32),
    /// A local slot of the evaluating process's top frame.
    Local(u16),
}

/// One register micro-op. Every op reads its [`Src`] operands and writes
/// one owned [`Value`] into register `dst`.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// `dst := op a`.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        a: Src,
        /// Destination register.
        dst: u16,
    },
    /// `dst := a op b`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Destination register.
        dst: u16,
    },
    /// Superinstruction for `sig = const` / `sig /= const`: one stored
    /// value comparison against a pool constant pre-coerced to the
    /// signal's type at compile time.
    CmpSignalIs {
        /// The compared signal, by index.
        signal: u32,
        /// Pool index of the pre-coerced constant.
        pool: u16,
        /// `true` compiles `/=` (negated comparison).
        ne: bool,
        /// Destination register.
        dst: u16,
    },
    /// `dst := a(hi downto lo)`.
    Slice {
        /// Sliced operand.
        a: Src,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
        /// Destination register.
        dst: u16,
    },
    /// `dst := a(offset + width - 1 downto offset)` with a computed
    /// offset — the word slice-and-drive idiom of generated protocols.
    DynSlice {
        /// Sliced operand.
        a: Src,
        /// Computed low-bit offset.
        offset: Src,
        /// Slice width in bits.
        width: u32,
        /// Destination register.
        dst: u16,
    },
    /// `dst := resize(a, width)` (zero-extend or truncate).
    Resize {
        /// Resized operand.
        a: Src,
        /// Target width in bits.
        width: u32,
        /// Destination register.
        dst: u16,
    },
    /// `dst := base[index]` (array element read).
    Elem {
        /// The array operand.
        base: Src,
        /// Computed element index.
        index: Src,
        /// Destination register.
        dst: u16,
    },
}

/// A compiled expression: a flat micro-op sequence plus the slot holding
/// the final result.
///
/// A plain load (constant, signal, variable, local) compiles to *zero*
/// ops with `result` naming the storage directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprCode {
    /// The micro-op sequence, executed in order.
    pub ops: Box<[MicroOp]>,
    /// Where the final value lives after the last op.
    pub result: Src,
    /// Interned constants referenced by [`Src::Const`].
    pub pool: Box<[Value]>,
    /// Registers used (1 + highest `dst`); 0 for pure loads.
    pub nregs: u16,
}

impl ExprCode {
    /// `true` when this code is a pure constant (no ops, const result).
    pub fn const_value(&self) -> Option<&Value> {
        match self.result {
            Src::Const(i) if self.ops.is_empty() => self.pool.get(i as usize),
            _ => None,
        }
    }
}

/// The reusable register file. One instance lives in the simulator,
/// sized at compile time to the widest [`ExprCode`], so evaluation never
/// allocates registers.
#[derive(Debug, Default)]
pub(crate) struct RegFile {
    regs: Vec<Value>,
}

impl RegFile {
    /// An empty register file (grown on first use).
    pub fn new() -> Self {
        Self { regs: Vec::new() }
    }

    /// A register file pre-sized for code needing `n` registers.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            regs: vec![Value::Bit(false); n],
        }
    }
}

fn missing(kind: &str, idx: usize) -> SimError {
    SimError::eval(format!("missing {kind} {idx}"))
}

/// Reads an operand. Register and pool slots are compiler-generated and
/// always in range; context slots are bounds-checked so invalid systems
/// fail with an evaluation error, exactly like the tree walker.
#[inline]
fn fetch<'s>(
    ctx: &EvalCtx<'s>,
    code: &'s ExprCode,
    regs: &'s [Value],
    s: Src,
) -> Result<&'s Value, SimError> {
    match s {
        Src::Reg(r) => Ok(&regs[r as usize]),
        Src::Const(c) => Ok(&code.pool[c as usize]),
        Src::Signal(i) => ctx
            .signals
            .get(i as usize)
            .ok_or_else(|| missing("signal s", i as usize)),
        Src::Var(i) => ctx
            .vars
            .get(i as usize)
            .ok_or_else(|| missing("variable v", i as usize)),
        Src::Local(i) => ctx
            .locals
            .get(i as usize)
            .ok_or_else(|| missing("local slot", i as usize)),
    }
}

/// Views a value's packed bits without cloning `Bits` payloads.
#[inline]
fn bits_of(v: &Value) -> Cow<'_, BitVec> {
    match v {
        Value::Bits(b) => Cow::Borrowed(b),
        other => Cow::Owned(other.to_bits()),
    }
}

fn wrap(e: ifsyn_spec::SpecError) -> SimError {
    SimError::eval(e.to_string())
}

fn slice_checked(bits: &BitVec, hi: u32, lo: u32) -> Result<Value, SimError> {
    if hi >= bits.width() {
        return Err(SimError::eval(format!(
            "slice {hi} downto {lo} out of range for width {}",
            bits.width()
        )));
    }
    Ok(Value::Bits(bits.slice(hi, lo)))
}

/// Executes one micro-op, returning `(dst, value)`.
#[inline]
fn step<'s>(
    ctx: &EvalCtx<'s>,
    code: &'s ExprCode,
    regs: &'s [Value],
    op: &MicroOp,
) -> Result<(u16, Value), SimError> {
    match op {
        MicroOp::Unary { op, a, dst } => {
            let a = fetch(ctx, code, regs, *a)?;
            Ok((*dst, eval_unary(*op, a)?))
        }
        MicroOp::Binary { op, a, b, dst } => {
            let a = fetch(ctx, code, regs, *a)?;
            let b = fetch(ctx, code, regs, *b)?;
            Ok((*dst, eval_binary(*op, a, b)?))
        }
        MicroOp::CmpSignalIs {
            signal,
            pool,
            ne,
            dst,
        } => {
            let cur = ctx
                .signals
                .get(*signal as usize)
                .ok_or_else(|| missing("signal s", *signal as usize))?;
            let eq = *cur == code.pool[*pool as usize];
            Ok((*dst, Value::Bit(eq != *ne)))
        }
        MicroOp::Slice { a, hi, lo, dst } => {
            let a = fetch(ctx, code, regs, *a)?;
            Ok((*dst, slice_checked(&bits_of(a), *hi, *lo)?))
        }
        MicroOp::DynSlice {
            a,
            offset,
            width,
            dst,
        } => {
            let lo = fetch(ctx, code, regs, *offset)?.as_i64().map_err(wrap)?;
            let lo = u32::try_from(lo)
                .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
            let a = fetch(ctx, code, regs, *a)?;
            let bits = bits_of(a);
            let hi = lo + width - 1;
            if hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "dynamic slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            Ok((*dst, Value::Bits(bits.slice(hi, lo))))
        }
        MicroOp::Resize { a, width, dst } => {
            let a = fetch(ctx, code, regs, *a)?;
            Ok((*dst, Value::Bits(bits_of(a).resized(*width))))
        }
        MicroOp::Elem { base, index, dst } => {
            let i = fetch(ctx, code, regs, *index)?.as_i64().map_err(wrap)?;
            let i = usize::try_from(i)
                .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
            let base = fetch(ctx, code, regs, *base)?;
            match base {
                Value::Array(items) => items
                    .get(i)
                    .cloned()
                    .map(|v| (*dst, v))
                    .ok_or_else(|| SimError::eval(format!("array index {i} out of range"))),
                other => Err(SimError::eval(format!("indexing non-array value {other}"))),
            }
        }
    }
}

/// Runs an [`ExprCode`] to completion and returns a reference to the
/// result — which may live in the register file, the constant pool, or
/// the evaluation context (pure loads never touch a register).
pub(crate) fn eval_code<'a>(
    ctx: &EvalCtx<'a>,
    code: &'a ExprCode,
    regs: &'a mut RegFile,
) -> Result<&'a Value, SimError> {
    if !code.ops.is_empty() {
        if regs.regs.len() < code.nregs as usize {
            regs.regs.resize(code.nregs as usize, Value::Bit(false));
        }
        for op in code.ops.iter() {
            let (dst, v) = step(ctx, code, &regs.regs, op)?;
            regs.regs[dst as usize] = v;
        }
    }
    fetch(ctx, code, &regs.regs, code.result)
}

/// The storage root of a compiled place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CRoot {
    /// A system variable, by index.
    Var(u32),
    /// A local slot of the executing frame.
    Local(u16),
}

/// One navigation step of a compiled place path.
#[derive(Debug, Clone, PartialEq)]
pub enum CPathStep {
    /// Array element with a computed index.
    Elem(ExprCode),
    /// Static bit slice `hi downto lo`.
    Slice(u32, u32),
    /// Dynamic bit slice with computed offset and static width.
    DynSlice(ExprCode, u32),
}

/// A compiled non-trivial place: root storage, navigation steps and the
/// target's type, resolved at compile time where the scope allows it.
#[derive(Debug, Clone, PartialEq)]
pub struct CPath {
    /// Root storage.
    pub root: CRoot,
    /// Navigation from the root (outermost first).
    pub steps: Box<[CPathStep]>,
    /// The written location's type; `None` when the scope could not be
    /// typed at compile time (reported as an evaluation error if such a
    /// write ever executes).
    pub ty: Option<Ty>,
}

/// A compiled assignment target.
///
/// Whole-variable and whole-local writes — the overwhelmingly common
/// case — carry the bare storage index so the interpreter takes its
/// fast path without touching the path machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CPlace {
    /// Whole system variable.
    Var(u32),
    /// Whole local slot.
    Local(u16),
    /// Anything deeper: array elements, bit slices.
    Path(Box<CPath>),
}

/// A compiled procedure-call argument.
#[derive(Debug, Clone, PartialEq)]
pub enum CArg {
    /// By-value input.
    In(ExprCode),
    /// Output copied back on return.
    Out(CPlace),
    /// Input copied in at the call, copied back on return.
    InOut(CPlace),
}

//! Structured deadlock diagnosis.
//!
//! When a run ends with processes suspended on waits that can never be
//! satisfied, a bare "timeout" or a silently quiescent report hides the
//! actual failure. The diagnosis records, per blocked process, the wait
//! it is suspended on and the signal values it observed, and detects
//! wait-for cycles (process A waits on a signal only process B writes,
//! and vice versa — the classic handshake deadlock shape).

use std::fmt;

/// One blocked process and what it is waiting for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedWait {
    /// Name of the blocked behavior.
    pub behavior: String,
    /// Human-readable form of the wait it is suspended on
    /// (e.g. `wait until B_DONE = '1'`).
    pub wait: String,
    /// `(signal name, current value)` for every signal in the wait's
    /// sensitivity list, as observed when the diagnosis was taken.
    pub observed: Vec<(String, String)>,
}

impl fmt::Display for BlockedWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` suspended on {}", self.behavior, self.wait)?;
        if !self.observed.is_empty() {
            let vals: Vec<String> = self
                .observed
                .iter()
                .map(|(n, v)| format!("{n} = {v}"))
                .collect();
            write!(f, " (observed {})", vals.join(", "))?;
        }
        Ok(())
    }
}

/// A full deadlock diagnosis: every blocked process plus any wait-for
/// cycles among them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockDiagnosis {
    /// Time at which the diagnosis was taken.
    pub time: u64,
    /// Every process suspended on a wait, servers included.
    pub blocked: Vec<BlockedWait>,
    /// Wait-for cycles among the blocked processes: each entry lists the
    /// behavior names around one cycle (`A -> B -> ... -> A`).
    pub cycles: Vec<Vec<String>>,
}

impl DeadlockDiagnosis {
    /// The blocked entry of a behavior, if it is blocked.
    pub fn blocked_behavior(&self, name: &str) -> Option<&BlockedWait> {
        self.blocked.iter().find(|b| b.behavior == name)
    }
}

impl fmt::Display for DeadlockDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "deadlock at t = {}:", self.time)?;
        for b in &self.blocked {
            writeln!(f, "  {b}")?;
        }
        for cycle in &self.cycles {
            writeln!(f, "  wait-for cycle: {}", cycle.join(" -> "))?;
        }
        Ok(())
    }
}

/// Finds elementary cycles in a wait-for graph given as adjacency lists
/// (`edges[i]` = processes that `i` waits for). Returns each cycle once,
/// as the list of node indices in cycle order.
///
/// The graphs here are tiny (blocked processes of one simulation), so a
/// simple DFS with a recursion stack suffices.
pub(crate) fn find_cycles(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        v: usize,
        edges: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
        cycles: &mut Vec<Vec<usize>>,
    ) {
        color[v] = 1;
        stack.push(v);
        for &w in &edges[v] {
            if color[w] == 0 {
                dfs(w, edges, color, stack, cycles);
            } else if color[w] == 1 {
                // Found a back edge: the cycle is the stack suffix from w.
                let pos = stack.iter().position(|&x| x == w).expect("on stack");
                let cyc: Vec<usize> = stack[pos..].to_vec();
                // Report each cycle once, keyed by its smallest rotation.
                let canonical = canonical_rotation(&cyc);
                if !cycles.iter().any(|c| canonical_rotation(c) == canonical) {
                    cycles.push(cyc);
                }
            }
        }
        stack.pop();
        color[v] = 2;
    }

    for v in 0..n {
        if color[v] == 0 {
            dfs(v, edges, &mut color, &mut stack, &mut cycles);
        }
    }
    cycles
}

/// Rotates a cycle so its smallest element comes first (canonical form
/// for deduplication).
fn canonical_rotation(cycle: &[usize]) -> Vec<usize> {
    if cycle.is_empty() {
        return Vec::new();
    }
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_cycle_found() {
        // 0 waits for 1, 1 waits for 0.
        let cycles = find_cycles(2, &[vec![1], vec![0]]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(canonical_rotation(&cycles[0]), vec![0, 1]);
    }

    #[test]
    fn self_loop_found() {
        let cycles = find_cycles(1, &[vec![0]]);
        assert_eq!(cycles, vec![vec![0]]);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let cycles = find_cycles(3, &[vec![1], vec![2], vec![]]);
        assert!(cycles.is_empty());
    }

    #[test]
    fn duplicate_cycles_are_reported_once() {
        // Two entry points into the same 2-cycle.
        let cycles = find_cycles(3, &[vec![1], vec![2], vec![1]]);
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn disjoint_cycles_are_both_found() {
        // 0 <-> 1 and 2 -> 3 -> 4 -> 2, connected only by a stray edge
        // out of the first cycle.
        let cycles = find_cycles(5, &[vec![1], vec![0, 2], vec![3], vec![4], vec![2]]);
        let canon: Vec<Vec<usize>> = cycles.iter().map(|c| canonical_rotation(c)).collect();
        assert_eq!(cycles.len(), 2, "{canon:?}");
        assert!(canon.contains(&vec![0, 1]), "{canon:?}");
        assert!(canon.contains(&vec![2, 3, 4]), "{canon:?}");
    }

    #[test]
    fn overlapping_cycles_through_a_shared_node_are_distinct() {
        // Figure-eight: 0 -> 1 -> 0 and 0 -> 2 -> 0 share node 0. Both
        // are elementary cycles and must be reported separately (the
        // simulator prints one `wait-for cycle:` line per cycle).
        let cycles = find_cycles(3, &[vec![1, 2], vec![0], vec![0]]);
        let canon: Vec<Vec<usize>> = cycles.iter().map(|c| canonical_rotation(c)).collect();
        assert_eq!(cycles.len(), 2, "{canon:?}");
        assert!(canon.contains(&vec![0, 1]), "{canon:?}");
        assert!(canon.contains(&vec![0, 2]), "{canon:?}");
    }

    #[test]
    fn self_wait_coexists_with_a_longer_cycle() {
        // Node 1 waits on itself (a process whose wakeup signal only its
        // own code writes) while also sitting on a 2-cycle with node 0.
        let cycles = find_cycles(2, &[vec![1], vec![0, 1]]);
        let canon: Vec<Vec<usize>> = cycles.iter().map(|c| canonical_rotation(c)).collect();
        assert_eq!(cycles.len(), 2, "{canon:?}");
        assert!(canon.contains(&vec![1]), "self-wait missing: {canon:?}");
        assert!(canon.contains(&vec![0, 1]), "{canon:?}");
    }

    #[test]
    fn chorded_cycle_reports_both_elementary_cycles() {
        // 0 -> 1 -> 2 -> 0 with a chord 1 -> 0: the chord closes a second
        // elementary cycle [0, 1] inside the triangle.
        let cycles = find_cycles(3, &[vec![1], vec![2, 0], vec![0]]);
        let canon: Vec<Vec<usize>> = cycles.iter().map(|c| canonical_rotation(c)).collect();
        assert_eq!(cycles.len(), 2, "{canon:?}");
        assert!(canon.contains(&vec![0, 1, 2]), "{canon:?}");
        assert!(canon.contains(&vec![0, 1]), "{canon:?}");
    }

    #[test]
    fn display_names_the_blocked_process() {
        let d = DeadlockDiagnosis {
            time: 42,
            blocked: vec![BlockedWait {
                behavior: "CONV_R2".into(),
                wait: "wait until B_DONE = '1'".into(),
                observed: vec![("B_DONE".into(), "'0'".into())],
            }],
            cycles: vec![vec!["CONV_R2".into(), "trru2proc".into()]],
        };
        let s = d.to_string();
        assert!(s.contains("CONV_R2"));
        assert!(s.contains("B_DONE = '0'"));
        assert!(s.contains("wait-for cycle"));
    }
}

//! Fault injection: deterministic schedules of signal-level faults.
//!
//! A [`FaultPlan`] names bus signals (by their declared name, so plans can
//! be written before refinement assigns ids) and attaches [`FaultKind`]s
//! to them. The kernel applies the plan in the signal-update phase:
//!
//! * [`FaultKind::StuckAt`] — during the active window every process
//!   write to the signal is discarded, and at the window start the signal
//!   is forced to the stuck value;
//! * [`FaultKind::FlipBit`] — a one-shot transient: at the given time the
//!   named bit of the signal's current value inverts;
//! * [`FaultKind::DelayWrites`] — writes landing inside the window take
//!   effect `cycles` later instead of immediately;
//! * [`FaultKind::DropWrites`] — writes landing inside the window are
//!   silently discarded (the value already on the wire persists).
//!
//! Every applied fault is recorded as an [`InjectedFault`] in the
//! [`crate::SimReport`], so campaigns can correlate observed failures
//! with the exact injections that caused them.

use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::Value;

/// What a fault does to its signal.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Force the signal to `value` at `from`; discard all writes while
    /// the window is active (`until` = `None` means forever).
    StuckAt {
        /// The forced value.
        value: Value,
        /// Window start (inclusive), in clock cycles.
        from: u64,
        /// Window end (exclusive); `None` keeps the fault active forever.
        until: Option<u64>,
    },
    /// Invert bit `bit` of the signal's current value at time `at`
    /// (a single-event transient).
    FlipBit {
        /// Bit position (0 = LSB). For `Ty::Bit` signals use 0.
        bit: u32,
        /// Injection time in clock cycles.
        at: u64,
    },
    /// Writes taking effect inside the window land `cycles` later.
    DelayWrites {
        /// Added delay in clock cycles (must be > 0 to have any effect).
        cycles: u64,
        /// Window start (inclusive).
        from: u64,
        /// Window end (exclusive); `None` = forever.
        until: Option<u64>,
    },
    /// Writes taking effect inside the window are discarded.
    DropWrites {
        /// Window start (inclusive).
        from: u64,
        /// Window end (exclusive); `None` = forever.
        until: Option<u64>,
    },
}

impl FaultKind {
    /// `true` when a write applied at `time` falls in this fault's
    /// interference window.
    pub(crate) fn window_contains(&self, time: u64) -> bool {
        let (from, until) = match self {
            FaultKind::StuckAt { from, until, .. }
            | FaultKind::DelayWrites { from, until, .. }
            | FaultKind::DropWrites { from, until } => (*from, *until),
            FaultKind::FlipBit { .. } => return false,
        };
        time >= from && until.is_none_or(|u| time < u)
    }
}

/// One fault on one named signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Name of the signal (as declared in the system).
    pub signal: String,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// The default plan is empty (no faults); an empty plan adds no
/// per-write work to the kernel's hot path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a stuck-at-0 fault on a bit signal over `[from, until)`.
    pub fn stuck_at_0(mut self, signal: impl Into<String>, from: u64, until: Option<u64>) -> Self {
        self.faults.push(Fault {
            signal: signal.into(),
            kind: FaultKind::StuckAt {
                value: Value::Bit(false),
                from,
                until,
            },
        });
        self
    }

    /// Adds a stuck-at-1 fault on a bit signal over `[from, until)`.
    pub fn stuck_at_1(mut self, signal: impl Into<String>, from: u64, until: Option<u64>) -> Self {
        self.faults.push(Fault {
            signal: signal.into(),
            kind: FaultKind::StuckAt {
                value: Value::Bit(true),
                from,
                until,
            },
        });
        self
    }

    /// Adds a one-shot bit flip at time `at`.
    pub fn flip_bit(mut self, signal: impl Into<String>, bit: u32, at: u64) -> Self {
        self.faults.push(Fault {
            signal: signal.into(),
            kind: FaultKind::FlipBit { bit, at },
        });
        self
    }

    /// Adds a write-delay fault over `[from, until)`.
    pub fn delay_writes(
        mut self,
        signal: impl Into<String>,
        cycles: u64,
        from: u64,
        until: Option<u64>,
    ) -> Self {
        self.faults.push(Fault {
            signal: signal.into(),
            kind: FaultKind::DelayWrites {
                cycles,
                from,
                until,
            },
        });
        self
    }

    /// Adds a write-drop fault over `[from, until)`.
    pub fn drop_writes(mut self, signal: impl Into<String>, from: u64, until: Option<u64>) -> Self {
        self.faults.push(Fault {
            signal: signal.into(),
            kind: FaultKind::DropWrites { from, until },
        });
        self
    }

    /// Adds `count` seeded transient single-bit flips on `signal`,
    /// uniformly over `[window_from, window_to)` and over bit positions
    /// `0..bit_width`. Equal seeds give equal schedules, so campaigns are
    /// reproducible by construction.
    pub fn seeded_flips(
        mut self,
        signal: impl Into<String>,
        bit_width: u32,
        count: usize,
        window_from: u64,
        window_to: u64,
        seed: u64,
    ) -> Self {
        let name = signal.into();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..count {
            let at = if window_to > window_from {
                window_from + rng.below(window_to - window_from)
            } else {
                window_from
            };
            let bit = rng.below(u64::from(bit_width.max(1))) as u32;
            self.faults.push(Fault {
                signal: name.clone(),
                kind: FaultKind::FlipBit { bit, at },
            });
        }
        self
    }
}

/// One fault the kernel actually applied, as recorded in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// Time of the injection.
    pub time: u64,
    /// Name of the affected signal.
    pub signal: String,
    /// What happened (`"forced stuck value"`, `"write dropped"`, ...).
    pub effect: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let k = FaultKind::DropWrites {
            from: 5,
            until: Some(9),
        };
        assert!(!k.window_contains(4));
        assert!(k.window_contains(5));
        assert!(k.window_contains(8));
        assert!(!k.window_contains(9));
    }

    #[test]
    fn open_window_is_forever() {
        let k = FaultKind::StuckAt {
            value: Value::Bit(false),
            from: 2,
            until: None,
        };
        assert!(!k.window_contains(0));
        assert!(k.window_contains(u64::MAX));
    }

    #[test]
    fn seeded_flips_are_reproducible() {
        let a = FaultPlan::new().seeded_flips("D", 8, 4, 10, 50, 7);
        let b = FaultPlan::new().seeded_flips("D", 8, 4, 10, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 4);
        for f in &a.faults {
            match f.kind {
                FaultKind::FlipBit { bit, at } => {
                    assert!(bit < 8);
                    assert!((10..50).contains(&at));
                }
                ref other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::new()
            .stuck_at_0("DONE", 0, None)
            .flip_bit("DATA", 3, 17)
            .delay_writes("START", 2, 5, Some(50))
            .drop_writes("DONE", 1, Some(2));
        assert_eq!(p.faults.len(), 4);
        assert!(!p.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}

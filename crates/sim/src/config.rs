//! Simulation configuration.

use ifsyn_estimate::CostModel;

use crate::fault::FaultPlan;

/// Configuration knobs of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Hard limit on simulated time (clock cycles).
    pub max_time: u64,
    /// Maximum delta cycles at one time instant before reporting a
    /// combinational oscillation.
    pub max_deltas_per_instant: u32,
    /// Maximum zero-time instructions one process may execute in a single
    /// activation before reporting a zero-delay loop.
    pub max_steps_per_activation: u64,
    /// Statement cost model used when lowering statements whose `cost`
    /// field is `None`. Must match the estimator's model for analytic and
    /// measured timings to agree.
    pub cost_model: CostModel,
    /// Record signal-change trace events (bounded by
    /// [`SimConfig::max_trace_events`]).
    pub trace: bool,
    /// Maximum number of recorded trace events; recording stops (but the
    /// simulation continues) when the bound is reached.
    pub max_trace_events: usize,
    /// Scheduled signal faults (default: empty, no faults).
    pub fault_plan: FaultPlan,
    /// Treat a quiescent end state with blocked *non-repeating* processes
    /// as a [`crate::SimError::Deadlock`] carrying a structured diagnosis.
    ///
    /// Off by default: a refined system's servers idle on their bus at
    /// quiescence by design, and some specifications intentionally leave
    /// a process parked forever. Fault campaigns and the CLI turn this on
    /// to convert silent hangs into diagnosable failures.
    pub fail_on_deadlock: bool,
    /// Worker threads for the parallel delta-cycle kernel. `1` (the
    /// default) runs the scalar kernel. With `N > 1` the processes are
    /// partitioned across at most `N` variable-disjoint shards and every
    /// multi-process delta round runs as a fork/join phase; results are
    /// byte-identical to the scalar kernel at any thread count.
    pub sim_threads: usize,
}

impl SimConfig {
    /// The default configuration: 100M-cycle horizon, tracing off.
    pub fn new() -> Self {
        Self {
            max_time: 100_000_000,
            max_deltas_per_instant: 10_000,
            max_steps_per_activation: 10_000_000,
            cost_model: CostModel::new(),
            trace: false,
            max_trace_events: 100_000,
            fault_plan: FaultPlan::new(),
            fail_on_deadlock: false,
            sim_threads: 1,
        }
    }

    /// Builder-style setter for [`SimConfig::max_time`].
    pub fn with_max_time(mut self, max_time: u64) -> Self {
        self.max_time = max_time;
        self
    }

    /// Builder-style switch enabling signal tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style setter for [`SimConfig::max_trace_events`] — traced
    /// analytics runs over long sweeps need more than the default bound.
    pub fn with_max_trace_events(mut self, max: usize) -> Self {
        self.max_trace_events = max;
        self
    }

    /// Builder-style setter for the cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Builder-style setter for the fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builder-style switch turning blocked-at-quiescence non-repeating
    /// processes into a [`crate::SimError::Deadlock`].
    pub fn with_deadlock_detection(mut self) -> Self {
        self.fail_on_deadlock = true;
        self
    }

    /// Builder-style setter for [`SimConfig::sim_threads`]. Values below 1
    /// are clamped to 1 (the scalar kernel).
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads.max(1);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_new() {
        assert_eq!(SimConfig::new(), SimConfig::default());
    }

    #[test]
    fn builders_chain() {
        let c = SimConfig::new().with_max_time(10).with_trace();
        assert_eq!(c.max_time, 10);
        assert!(c.trace);
    }

    #[test]
    fn sim_threads_clamps_to_scalar() {
        assert_eq!(SimConfig::new().sim_threads, 1);
        assert_eq!(SimConfig::new().with_sim_threads(0).sim_threads, 1);
        assert_eq!(SimConfig::new().with_sim_threads(4).sim_threads, 4);
    }
}

//! The staged per-shard interpreter of the parallel delta-cycle kernel.
//!
//! A parallel round forks one job per shard: each worker executes its
//! runnable processes against a **read-only snapshot** of signal state
//! and its shard's **exclusively owned slice** of variable storage (the
//! partitioner's hard constraint, [`ifsyn_partition::plan_shards`]).
//! Everything that would touch shared scheduler state — pending signal
//! writes, sleeps, wait registrations, watchdogs — is *staged* as a
//! [`Staged`] op instead of applied.
//!
//! At the barrier the kernel replays every process's staged ops **in the
//! scalar ready-queue pop order**. Because a delta round never makes a
//! staged write visible mid-round (two-phase signal update) and never
//! lets two shards share a variable, the replay reconstructs the exact
//! scalar execution: identical pending-write order (so identical
//! conflict resolution and trace), identical `event_seq` assignment (so
//! identical heap tie-breaking and `heap_peak`), identical error choice
//! (first in pop order wins). The result is byte-identical to the
//! scalar kernel at any thread count — the correctness bar the
//! differential suite (`tests/parallel_differential.rs`) enforces.
//!
//! The interpreter below mirrors `kernel.rs`'s `run_steps` arm for arm;
//! the two are kept honest by that same differential suite.

use std::sync::Arc;

use ifsyn_spec::{ParamMode, SignalId, System, Ty, Value};

use crate::error::SimError;
use crate::eval::{coerce, EvalCtx};
use crate::exec::{self, CArg, CPath, CPathStep, CPlace, CRoot, ExprCode, RegFile};
use crate::kernel::{untyped_place_error, write_steps};
use crate::process::{CodeRef, Frame, Process, ResolvedPlace, Root, Status, Step};
use crate::program::{Code, CompiledCond, Instr, WaitSpec};

/// Aggregate counters of the parallel engine.
///
/// Deliberately a **side channel** (returned next to the report by
/// [`crate::Simulator::run_to_quiescence_with_stats`], never inside it):
/// [`crate::SimReport`] must stay byte-identical across thread counts,
/// and these numbers genuinely depend on the shard plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelStats {
    /// Configured worker thread count ([`crate::SimConfig::sim_threads`]).
    pub sim_threads: usize,
    /// Shards the partitioner actually produced (≤ `sim_threads`).
    pub shards: usize,
    /// Fork/join rounds dispatched across workers.
    pub parallel_rounds: u64,
    /// Delta rounds run inline on the scalar path (sole-runnable
    /// process, or every runnable process on one shard).
    pub scalar_rounds: u64,
    /// Instructions executed per shard inside parallel rounds.
    pub shard_instrs: Vec<u64>,
    /// Instruction-weighted barrier idle time: per round, each shard
    /// contributes the gap between its instruction count and the
    /// slowest shard's. High values mean the partition is unbalanced.
    pub barrier_stall_instrs: u64,
}

impl ParallelStats {
    /// Stats of a run that never forked (scalar kernel or one shard).
    pub fn scalar(sim_threads: usize, shards: usize) -> Self {
        Self {
            sim_threads,
            shards,
            parallel_rounds: 0,
            scalar_rounds: 0,
            shard_instrs: vec![0; shards],
            barrier_stall_instrs: 0,
        }
    }
}

/// One scheduler effect staged by a worker, replayed at the barrier.
///
/// The terminal suspension of a process (everything except `Pending`)
/// is always the last op of its list; a process that ran into an error
/// or finished its body stages no terminal.
#[derive(Debug)]
pub(crate) enum Staged {
    /// Zero-delay signal write awaiting the next delta.
    Pending { signal: usize, value: Value },
    /// Timed sleep (costed instruction or `wait for`).
    Sleep { wake: u64 },
    /// Costed signal write: schedule at `wake`, sleep until then.
    TimedWrite {
        wake: u64,
        signal: usize,
        value: Value,
    },
    /// `wait on ...` registration.
    WaitOn { signals: Vec<SignalId> },
    /// `wait until <expr>` registration, with an optional watchdog.
    WaitUntil {
        cond: Arc<CompiledCond>,
        deadline: Option<u64>,
    },
    /// `wait until <signal> = <const>` registration, with an optional
    /// watchdog.
    WaitIs {
        signal: usize,
        value: Value,
        deadline: Option<u64>,
    },
}

/// One shard's work for one parallel round.
pub(crate) struct Job {
    pub shard: usize,
    pub time: u64,
    /// Signal state at round start, shared read-only by every worker.
    pub snapshot: Arc<Vec<Value>>,
    /// Full-length variable storage; only this shard's indices hold
    /// live values (the rest are placeholders).
    pub vars: Vec<Value>,
    /// `(pid, process)` pairs in ready-queue pop order.
    pub procs: Vec<(usize, Process)>,
}

/// What one process did during its shard's round.
pub(crate) struct Outcome {
    pub pid: usize,
    pub process: Process,
    pub ops: Vec<Staged>,
    pub steps: u64,
    pub asserts: u64,
    pub error: Option<SimError>,
}

/// A completed [`Job`].
pub(crate) struct JobResult {
    pub shard: usize,
    pub vars: Vec<Value>,
    pub outcomes: Vec<Outcome>,
}

/// Runs every process of `job` through the staged interpreter.
///
/// Errors don't stop the shard — whether an error is *the* simulation
/// error is decided by ready-order at the barrier, and a worker cannot
/// know its position there.
pub(crate) fn run_job(
    system: &System,
    behavior_code: &[Arc<Code>],
    procedure_code: &[Arc<Code>],
    max_steps: u64,
    regs: &mut RegFile,
    job: Job,
) -> JobResult {
    let Job {
        shard,
        time,
        snapshot,
        mut vars,
        procs,
    } = job;
    let mut outcomes = Vec::with_capacity(procs.len());
    for (pid, mut process) in procs {
        let mut ex = Exec {
            system,
            behavior_code,
            procedure_code,
            max_steps,
            time,
            snapshot: &snapshot,
            vars: &mut vars,
            regs: &mut *regs,
        };
        let (ops, steps, asserts, error) = ex.run_one(&mut process);
        outcomes.push(Outcome {
            pid,
            process,
            ops,
            steps,
            asserts,
            error,
        });
    }
    JobResult {
        shard,
        vars,
        outcomes,
    }
}

/// Evaluates compiled expression code against a worker's split storage
/// (shard variables, the signal snapshot, the process's top frame).
fn eval_shard<'s>(
    vars: &'s [Value],
    signals: &'s [Value],
    locals: &'s [Value],
    regs: &'s mut RegFile,
    code: &'s ExprCode,
) -> Result<&'s Value, SimError> {
    let ctx = EvalCtx {
        vars,
        signals,
        locals,
    };
    exec::eval_code(&ctx, code, regs)
}

/// The per-shard execution context: everything a worker may touch.
struct Exec<'w> {
    system: &'w System,
    behavior_code: &'w [Arc<Code>],
    procedure_code: &'w [Arc<Code>],
    max_steps: u64,
    time: u64,
    snapshot: &'w [Value],
    vars: &'w mut [Value],
    regs: &'w mut RegFile,
}

impl Exec<'_> {
    /// Runs one process to its first suspension, finish or error,
    /// mirroring the flush discipline of the kernel's `run_process`.
    fn run_one(&mut self, proc: &mut Process) -> (Vec<Staged>, u64, u64, Option<SimError>) {
        let mut ops = Vec::new();
        let mut steps = 0u64;
        let mut asserts = 0u64;
        let error = self
            .step_process(proc, &mut ops, &mut steps, &mut asserts)
            .err();
        proc.instrs_executed += steps;
        (ops, steps, asserts, error)
    }

    fn block(&self, code: CodeRef) -> Arc<Code> {
        match code {
            CodeRef::Behavior(i) => Arc::clone(&self.behavior_code[i]),
            CodeRef::Procedure(i) => Arc::clone(&self.procedure_code[i]),
        }
    }

    fn eval_in(&mut self, proc: &Process, code: &ExprCode) -> Result<Value, SimError> {
        let frame = proc
            .frames
            .last()
            .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
        Ok(eval_shard(self.vars, self.snapshot, &frame.locals, self.regs, code)?.clone())
    }

    fn eval_bool_in(&mut self, proc: &Process, code: &ExprCode) -> Result<bool, SimError> {
        let frame = proc
            .frames
            .last()
            .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
        eval_shard(self.vars, self.snapshot, &frame.locals, self.regs, code)?
            .as_bool()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    fn eval_i64_in(&mut self, proc: &Process, code: &ExprCode) -> Result<i64, SimError> {
        let frame = proc
            .frames
            .last()
            .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
        eval_shard(self.vars, self.snapshot, &frame.locals, self.regs, code)?
            .as_i64()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    fn resolve_cpath(
        &mut self,
        proc: &Process,
        path: &CPath,
        frame_abs: usize,
    ) -> Result<ResolvedPlace, SimError> {
        let root = match path.root {
            CRoot::Var(i) => Root::Var(i as usize),
            CRoot::Local(s) => Root::Local {
                frame: frame_abs,
                slot: s as usize,
            },
        };
        let mut steps = Vec::with_capacity(path.steps.len());
        for st in path.steps.iter() {
            match st {
                CPathStep::Elem(code) => {
                    let i = self.eval_i64_in(proc, code)?;
                    let i = usize::try_from(i)
                        .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                    steps.push(Step::Elem(i));
                }
                CPathStep::Slice(hi, lo) => steps.push(Step::Slice(*hi, *lo)),
                CPathStep::DynSlice(code, width) => {
                    let lo = self.eval_i64_in(proc, code)?;
                    let lo = u32::try_from(lo)
                        .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
                    steps.push(Step::Slice(lo + width - 1, lo));
                }
            }
        }
        Ok(ResolvedPlace { root, steps })
    }

    fn resolve_cplace(
        &mut self,
        proc: &Process,
        place: &CPlace,
        frame_abs: usize,
    ) -> Result<(ResolvedPlace, Ty), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                Ok((
                    ResolvedPlace {
                        root: Root::Var(*i as usize),
                        steps: Vec::new(),
                    },
                    decl.ty.clone(),
                ))
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let ty = self.local_ty(proc, frame_abs, slot)?;
                Ok((
                    ResolvedPlace {
                        root: Root::Local {
                            frame: frame_abs,
                            slot,
                        },
                        steps: Vec::new(),
                    },
                    ty,
                ))
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let rp = self.resolve_cpath(proc, path, frame_abs)?;
                Ok((rp, ty))
            }
        }
    }

    fn local_ty(&self, proc: &Process, frame_abs: usize, slot: usize) -> Result<Ty, SimError> {
        match proc.frames[frame_abs].code {
            CodeRef::Procedure(p) => {
                let pr = &self.system.procedures[p];
                if slot < pr.slot_count() {
                    Ok(pr.slot_ty(slot).clone())
                } else {
                    Err(SimError::eval(format!("missing local slot {slot}")))
                }
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        }
    }

    fn read_cplace(&mut self, proc: &Process, place: &CPlace) -> Result<Value, SimError> {
        match place {
            CPlace::Var(i) => self
                .vars
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}"))),
            CPlace::Local(slot) => {
                let frame = proc
                    .frames
                    .last()
                    .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
                frame
                    .locals
                    .get(*slot as usize)
                    .cloned()
                    .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))
            }
            CPlace::Path(path) => {
                let frame_abs = proc.frames.len() - 1;
                let rp = self.resolve_cpath(proc, path, frame_abs)?;
                self.read_resolved(proc, &rp)
            }
        }
    }

    fn read_resolved(&self, proc: &Process, rp: &ResolvedPlace) -> Result<Value, SimError> {
        let mut cur: &Value = match rp.root {
            Root::Var(i) => self
                .vars
                .get(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => proc
                .frames
                .get(frame)
                .and_then(|f| f.locals.get(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        for (i, step) in rp.steps.iter().enumerate() {
            match step {
                Step::Elem(idx) => match cur {
                    Value::Array(items) => {
                        cur = items.get(*idx).ok_or_else(|| {
                            SimError::eval(format!("array index {idx} out of range"))
                        })?;
                    }
                    other => {
                        return Err(SimError::eval(format!("indexing non-array value {other}")))
                    }
                },
                Step::Slice(hi, lo) => {
                    if i + 1 != rp.steps.len() {
                        return Err(SimError::eval(
                            "slice must be the last projection of a write target".to_string(),
                        ));
                    }
                    let bits = cur.to_bits();
                    if *hi >= bits.width() {
                        return Err(SimError::eval(format!(
                            "slice {hi} downto {lo} out of range for width {}",
                            bits.width()
                        )));
                    }
                    return Ok(Value::Bits(bits.slice(*hi, *lo)));
                }
            }
        }
        Ok(cur.clone())
    }

    fn write_resolved(
        &mut self,
        proc: &mut Process,
        rp: &ResolvedPlace,
        value: Value,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => self
                .vars
                .get_mut(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => proc
                .frames
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    fn write_cplace(
        &mut self,
        proc: &mut Process,
        place: &CPlace,
        value: Value,
    ) -> Result<(), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                self.vars[*i as usize] = coerce(value, &decl.ty);
                Ok(())
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let frame_abs = proc.frames.len() - 1;
                let ty = self.local_ty(proc, frame_abs, slot)?;
                let v = coerce(value, &ty);
                proc.frames[frame_abs].locals[slot] = v;
                Ok(())
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let frame_abs = proc.frames.len() - 1;
                let rp = self.resolve_cpath(proc, path, frame_abs)?;
                self.write_resolved(proc, &rp, coerce(value, &ty))
            }
        }
    }

    fn enter_procedure(
        &mut self,
        proc: &mut Process,
        procedure: usize,
        args: &[CArg],
    ) -> Result<(), SimError> {
        let pr = &self.system.procedures[procedure];
        let caller_frame_abs = proc.frames.len() - 1;
        let mut locals = Vec::with_capacity(pr.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&pr.params).enumerate() {
            match (arg, param.mode) {
                (CArg::In(e), ParamMode::In) => {
                    locals.push(coerce(self.eval_in(proc, e)?, &param.ty));
                }
                (CArg::Out(place), ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    copyback.push({
                        let (rp, ty) = self.resolve_cplace(proc, place, caller_frame_abs)?;
                        (i, rp, ty)
                    });
                }
                (CArg::InOut(place), ParamMode::InOut) => {
                    locals.push(coerce(self.read_cplace(proc, place)?, &param.ty));
                    copyback.push({
                        let (rp, ty) = self.resolve_cplace(proc, place, caller_frame_abs)?;
                        (i, rp, ty)
                    });
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        pr.name
                    )))
                }
            }
        }
        for l in &pr.locals {
            locals.push(Value::default_of(&l.ty));
        }
        let mut frame = Frame::new(CodeRef::Procedure(procedure), locals);
        frame.copyback = copyback;
        proc.frames.push(frame);
        Ok(())
    }

    fn leave_frame(&mut self, proc: &mut Process) -> Result<bool, SimError> {
        let frame = proc.frames.pop().expect("frame");
        for (slot, rp, ty) in &frame.copyback {
            let v = coerce(frame.locals[*slot].clone(), ty);
            self.write_resolved(proc, rp, v)?;
        }
        if proc.frames.is_empty() {
            let bidx = proc.behavior;
            if self.system.behaviors[bidx].repeats {
                proc.iterations += 1;
                proc.frames
                    .push(Frame::new(CodeRef::Behavior(bidx), Vec::new()));
                Ok(false)
            } else {
                proc.status = Status::Finished;
                proc.finish_time = Some(self.time);
                Ok(true)
            }
        } else {
            Ok(false)
        }
    }

    fn channel_write(
        &mut self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
    ) -> Result<(), SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        let ty = &self.system.variables[var_idx].ty;
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match ty {
                    Ty::Array { elem, .. } => &**elem,
                    other => other,
                };
                match &mut self.vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => self.vars[var_idx] = coerce(data, ty),
        }
        Ok(())
    }

    fn channel_read(
        &self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &self.vars[var_idx] {
                    Value::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::eval(format!("channel address {i} out of range"))),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(self.vars[var_idx].clone()),
        }
    }

    fn store_pc(proc: &mut Process, pc: usize) {
        proc.frames.last_mut().expect("frame").pc = pc;
    }

    /// The staged interpreter loop, instruction-for-instruction the
    /// kernel's `run_steps` minus the fast-forward paths: every
    /// suspension stages an op and returns, because only the barrier
    /// (knowing the full round) can decide whether time may jump.
    fn step_process(
        &mut self,
        proc: &mut Process,
        ops: &mut Vec<Staged>,
        steps: &mut u64,
        asserts: &mut u64,
    ) -> Result<(), SimError> {
        let (mut code_ref, mut pc) = {
            let frame = proc
                .frames
                .last()
                .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
            (frame.code, frame.pc)
        };
        let mut block = self.block(code_ref);
        // Zero-delay-loop budget: a worker never advances time, so the
        // count never resets — identical to a scalar activation, which
        // could only reset at its first suspension (where we stop).
        let mut instant_steps = 0u64;
        loop {
            *steps += 1;
            instant_steps += 1;
            if instant_steps > self.max_steps {
                return Err(SimError::ZeroDelayLoop {
                    behavior: self.system.behaviors[proc.behavior].name.clone(),
                    time: self.time,
                });
            }
            let instr = &block.instrs[pc];
            match instr {
                Instr::Assign { place, value, cost } => {
                    let v = match value.const_value() {
                        Some(c) => c.clone(),
                        None => self.eval_in(proc, value)?,
                    };
                    self.write_cplace(proc, place, v)?;
                    pc += 1;
                    if *cost > 0 {
                        proc.active_cycles += u64::from(*cost);
                        Self::store_pc(proc, pc);
                        ops.push(Staged::Sleep {
                            wake: self.time + u64::from(*cost),
                        });
                        return Ok(());
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost,
                } => {
                    let v = match value.const_value() {
                        Some(c) => c.clone(),
                        None => {
                            let raw = self.eval_in(proc, value)?;
                            coerce(raw, &self.system.signal(*signal).ty)
                        }
                    };
                    pc += 1;
                    if *cost == 0 {
                        ops.push(Staged::Pending {
                            signal: signal.index(),
                            value: v,
                        });
                    } else {
                        proc.active_cycles += u64::from(*cost);
                        Self::store_pc(proc, pc);
                        ops.push(Staged::TimedWrite {
                            wake: self.time + u64::from(*cost),
                            signal: signal.index(),
                            value: v,
                        });
                        return Ok(());
                    }
                }
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfNot { cond, target } => {
                    if self.eval_bool_in(proc, cond)? {
                        pc += 1;
                    } else {
                        pc = *target;
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let bound = self.eval_i64_in(proc, to)?;
                    let start = self.eval_in(proc, from)?;
                    self.write_cplace(proc, var, start)?;
                    proc.frames
                        .last_mut()
                        .expect("frame")
                        .loop_bounds
                        .push(bound);
                    pc += 1;
                }
                Instr::LoopTest { var, exit } => {
                    let fast = match var {
                        CPlace::Var(v) => match self.vars.get(*v as usize) {
                            Some(Value::Int { value, .. }) => Some(*value),
                            _ => None,
                        },
                        CPlace::Local(slot) => {
                            let frame = proc.frames.last().expect("frame");
                            match frame.locals.get(*slot as usize) {
                                Some(Value::Int { value, .. }) => Some(*value),
                                _ => None,
                            }
                        }
                        CPlace::Path(_) => None,
                    };
                    let v = match fast {
                        Some(v) => v,
                        None => self
                            .read_cplace(proc, var)?
                            .as_i64()
                            .map_err(|e| SimError::eval(e.to_string()))?,
                    };
                    let frame = proc.frames.last_mut().expect("frame");
                    let bound = *frame
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        frame.loop_bounds.pop();
                        pc = *exit;
                    } else {
                        pc += 1;
                    }
                }
                Instr::LoopIncr { var, body, exit } => {
                    let fast = match var {
                        CPlace::Var(v) => match self.vars.get_mut(*v as usize) {
                            Some(Value::Int { value, width }) if *width > 0 => {
                                *value += 1;
                                Some(*value)
                            }
                            _ => None,
                        },
                        CPlace::Local(slot) => {
                            let frame = proc.frames.last_mut().expect("frame");
                            match frame.locals.get_mut(*slot as usize) {
                                Some(Value::Int { value, width }) if *width > 0 => {
                                    *value += 1;
                                    Some(*value)
                                }
                                _ => None,
                            }
                        }
                        CPlace::Path(_) => None,
                    };
                    let v = match fast {
                        Some(v) => v,
                        None => {
                            let (v, width) = {
                                let cur = self.read_cplace(proc, var)?;
                                let v = cur.as_i64().map_err(|e| SimError::eval(e.to_string()))?;
                                let width = match &cur {
                                    Value::Int { width, .. } => *width,
                                    other => other.ty().bit_width(),
                                };
                                (v, width)
                            };
                            self.write_cplace(proc, var, Value::int(v + 1, width.max(1)))?;
                            v + 1
                        }
                    };
                    let frame = proc.frames.last_mut().expect("frame");
                    let bound = *frame
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        frame.loop_bounds.pop();
                        pc = *exit;
                    } else {
                        pc = *body;
                    }
                }
                Instr::Wait(cond) => {
                    pc += 1;
                    match cond {
                        WaitSpec::ForCycles(n) => {
                            if *n > 0 {
                                Self::store_pc(proc, pc);
                                ops.push(Staged::Sleep {
                                    wake: self.time + n,
                                });
                                return Ok(());
                            }
                        }
                        WaitSpec::OnSignals(signals) => {
                            Self::store_pc(proc, pc);
                            ops.push(Staged::WaitOn {
                                signals: signals.clone(),
                            });
                            return Ok(());
                        }
                        WaitSpec::Until(cond) => {
                            let sat = self.eval_bool_in(proc, &cond.code)?;
                            if !sat {
                                Self::store_pc(proc, pc);
                                ops.push(Staged::WaitUntil {
                                    cond: Arc::clone(cond),
                                    deadline: None,
                                });
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIs { signal, value } => {
                            if self.snapshot[signal.index()] != *value {
                                Self::store_pc(proc, pc);
                                ops.push(Staged::WaitIs {
                                    signal: signal.index(),
                                    value: value.clone(),
                                    deadline: None,
                                });
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilTimeout { cond, cycles } => {
                            let sat = self.eval_bool_in(proc, &cond.code)?;
                            if !sat {
                                Self::store_pc(proc, pc);
                                ops.push(Staged::WaitUntil {
                                    cond: Arc::clone(cond),
                                    deadline: Some(self.time + cycles),
                                });
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIsTimeout {
                            signal,
                            value,
                            cycles,
                        } => {
                            if self.snapshot[signal.index()] != *value {
                                Self::store_pc(proc, pc);
                                ops.push(Staged::WaitIs {
                                    signal: signal.index(),
                                    value: value.clone(),
                                    deadline: Some(self.time + cycles),
                                });
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Call { procedure, args } => {
                    let procedure = *procedure;
                    Self::store_pc(proc, pc + 1);
                    self.enter_procedure(proc, procedure, args)?;
                    code_ref = CodeRef::Procedure(procedure);
                    block = self.block(code_ref);
                    pc = 0;
                }
                Instr::Ret => {
                    if self.leave_frame(proc)? {
                        return Ok(());
                    }
                    let (new_code, new_pc) = {
                        let frame = proc.frames.last().expect("frame");
                        (frame.code, frame.pc)
                    };
                    if new_code != code_ref {
                        block = self.block(new_code);
                        code_ref = new_code;
                    }
                    pc = new_pc;
                }
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost,
                } => {
                    let data_v = self.eval_in(proc, data)?;
                    let addr_v = match addr {
                        Some(a) => Some(self.eval_i64_in(proc, a)?),
                        None => None,
                    };
                    self.channel_write(*channel, addr_v, data_v)?;
                    pc += 1;
                    if *cost > 0 {
                        proc.active_cycles += u64::from(*cost);
                        Self::store_pc(proc, pc);
                        ops.push(Staged::Sleep {
                            wake: self.time + u64::from(*cost),
                        });
                        return Ok(());
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost,
                } => {
                    let addr_v = match addr {
                        Some(a) => Some(self.eval_i64_in(proc, a)?),
                        None => None,
                    };
                    let v = self.channel_read(*channel, addr_v)?;
                    self.write_cplace(proc, target, v)?;
                    pc += 1;
                    if *cost > 0 {
                        proc.active_cycles += u64::from(*cost);
                        Self::store_pc(proc, pc);
                        ops.push(Staged::Sleep {
                            wake: self.time + u64::from(*cost),
                        });
                        return Ok(());
                    }
                }
                Instr::Assert { cond, note } => {
                    let ok = self.eval_bool_in(proc, cond)?;
                    if !ok {
                        return Err(SimError::AssertionFailed {
                            behavior: self.system.behaviors[proc.behavior].name.clone(),
                            note: note.clone(),
                            time: self.time,
                        });
                    }
                    *asserts += 1;
                    pc += 1;
                }
                Instr::Consume { cycles } => {
                    pc += 1;
                    if *cycles > 0 {
                        proc.active_cycles += *cycles;
                        Self::store_pc(proc, pc);
                        ops.push(Staged::Sleep {
                            wake: self.time + *cycles,
                        });
                        return Ok(());
                    }
                }
            }
        }
    }
}

//! The discrete-event simulation kernel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{mpsc, Arc};

use ifsyn_partition::{plan_shards, ShardPlan};
use ifsyn_spec::{BitVec, Expr, ParamMode, SignalId, System, Ty, Value};

use crate::config::SimConfig;
use crate::diagnose::{find_cycles, BlockedWait, DeadlockDiagnosis};
use crate::error::SimError;
use crate::eval::{coerce, EvalCtx};
use crate::exec::{self, CArg, CPath, CPathStep, CPlace, CRoot, ExprCode, RegFile};
use crate::fault::{FaultKind, InjectedFault};
use crate::process::{CodeRef, Frame, Process, ResolvedPlace, Root, Status, Step, WaitKind};
use crate::program::{Code, CodeCache, Instr, Program, WaitSpec};
use crate::report::{BehaviorOutcome, SimReport, TraceEvent};
use crate::shard::{self, Job, JobResult, Outcome, ParallelStats, Staged};

/// Upper bound on recorded [`InjectedFault`] entries, so a stuck line on
/// a long run cannot grow the report without bound.
const MAX_RECORDED_INJECTIONS: usize = 10_000;

/// A scheduled future signal write.
///
/// Ordered by `(time, seq)` so the event heap pops writes in schedule
/// order within an instant, reproducing the FIFO semantics of the old
/// per-time bucket lists.
#[derive(Debug)]
struct TimedWrite {
    time: u64,
    seq: u64,
    signal: usize,
    value: Value,
    /// Forced writes (fault injections and already-delayed writes) bypass
    /// the fault filter when they take effect.
    forced: bool,
}

impl PartialEq for TimedWrite {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for TimedWrite {}

impl PartialOrd for TimedWrite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimedWrite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A fault from the configured plan with its signal resolved to an index.
#[derive(Debug)]
struct ResolvedFault {
    signal: usize,
    kind: FaultKind,
}

/// What the fault filter decides about a write in the update phase.
enum Disposition {
    Keep,
    Drop(&'static str),
    Delay(u64),
}

/// One process's contribution to a parallel round, re-ordered into
/// scalar pop order for the barrier replay (its `Process` state has
/// already been moved home by then).
struct Replay {
    pid: usize,
    ops: Vec<Staged>,
    steps: u64,
    asserts: u64,
    error: Option<SimError>,
}

/// Round-persistent state of the parallel delta-cycle engine: the shard
/// plan, the worker channels, the shared signal snapshot and reusable
/// scratch. Lives on `run_events_parallel`'s stack inside the worker
/// thread scope, never in the `Simulator` itself.
struct ParEngine<'e> {
    plan: ShardPlan,
    /// Variable indices owned by each shard.
    shard_vars: Vec<Vec<usize>>,
    /// Parked full-length variable buffers per shard: placeholders while
    /// the shard is idle, swapped against the master copy for a round so
    /// the master's `vars` stays authoritative between rounds.
    var_bufs: Vec<Option<Vec<Value>>>,
    /// Signal state shared read-only with the workers; refreshed in
    /// place (`Arc::make_mut` plus the master's dirty list) each round,
    /// because the workers drop their handles at the barrier.
    snapshot: Arc<Vec<Value>>,
    behavior_code: &'e [Arc<Code>],
    procedure_code: &'e [Arc<Code>],
    max_steps: u64,
    /// Register file for the job the main thread runs inline.
    inline_regs: RegFile,
    /// Job channels per shard; index 0 is `None` (shard 0, when active,
    /// always runs inline on the main thread).
    job_txs: Vec<Option<mpsc::Sender<Job>>>,
    res_rx: mpsc::Receiver<JobResult>,
    /// Scratch: the current round in scalar pop order.
    round: Vec<usize>,
    /// Scratch: pid → position in `round` (stale outside the round).
    round_pos: Vec<usize>,
    /// Scratch: round pids grouped by shard, pop order within a shard.
    shard_pids: Vec<Vec<usize>>,
    /// Scratch: per-shard instruction count of the current round.
    shard_round_instrs: Vec<u64>,
    /// Scratch: outcomes re-ordered into round order for replay.
    ordered: Vec<Option<Replay>>,
    stats: ParallelStats,
}

/// Evaluates compiled expression code for one process, splitting the
/// simulator's storage fields so the shared context borrows (variables,
/// signals, the frame) coexist with the mutable register-file borrow.
fn eval_split<'s>(
    vars: &'s [Value],
    signals: &'s [Value],
    processes: &'s [Process],
    regs: &'s mut RegFile,
    pid: usize,
    code: &'s ExprCode,
) -> Result<&'s Value, SimError> {
    let frame = processes[pid]
        .frames
        .last()
        .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
    let ctx = EvalCtx {
        vars,
        signals,
        locals: &frame.locals,
    };
    exec::eval_code(&ctx, code, regs)
}

/// A deterministic discrete-event simulator over a [`System`].
///
/// Semantics (see the crate docs for the rationale):
///
/// * time advances in integer clock cycles; instructions carry cycle
///   costs; a zero-cost signal write becomes visible at the next *delta*
///   (same time instant), a cost-`c` write becomes visible at `t + c`;
/// * an event is a signal *value change*;
/// * `wait until` is level-sensitive: if the condition already holds the
///   process continues without suspending.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_sim::Simulator;
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("handshake");
/// let m = sys.add_module("chip");
/// let req = sys.add_signal("REQ", Ty::Bit);
/// let ack = sys.add_signal("ACK", Ty::Bit);
/// let a = sys.add_behavior("producer", m);
/// sys.behavior_mut(a).body = vec![
///     drive_cost(req, bit_const(true), 1),
///     wait_until(eq(signal(ack), bit_const(true))),
/// ];
/// let b = sys.add_behavior("consumer", m);
/// sys.behavior_mut(b).body = vec![
///     wait_until(eq(signal(req), bit_const(true))),
///     drive_cost(ack, bit_const(true), 1),
/// ];
///
/// let report = Simulator::new(&sys)?.run_to_quiescence()?;
/// assert_eq!(report.finish_time(a), Some(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    system: &'a System,
    config: SimConfig,
    /// Shared handles to each compiled code block. `Arc` (not `Rc`) keeps
    /// the simulator `Send` for the parallel sweep driver, and lets a
    /// [`CodeCache`] share identical blocks between simulator instances.
    ///
    /// Each slot is an `Option` so the interpreter can *move* the running
    /// block out (`take_block`) and hold it across `&mut self` calls,
    /// then move it back at the next block switch or suspension — no
    /// per-activation reference-count traffic. A slot is only ever `None`
    /// while its block is executing (or after a terminal error, when the
    /// simulator is dropped without further use).
    behavior_code: Vec<Option<Arc<Code>>>,
    procedure_code: Vec<Option<Arc<Code>>>,
    /// The reusable micro-op register file, pre-sized at compile time to
    /// the widest expression in the program.
    regs: RegFile,
    time: u64,
    signals: Vec<Value>,
    vars: Vec<Value>,
    processes: Vec<Process>,
    ready: VecDeque<usize>,
    /// Zero-delay signal writes awaiting the next delta; the flag marks
    /// forced writes that bypass the fault filter.
    pending: Vec<(usize, Value, bool)>,
    /// Future signal writes: a min-heap on `(time, seq)`.
    timed_writes: BinaryHeap<Reverse<TimedWrite>>,
    /// Sleeping processes: a min-heap on `(time, seq, pid)`. Entries are
    /// lazily invalidated — a pop whose process is no longer `Sleeping`
    /// is skipped rather than eagerly removed.
    sleepers: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Watchdog deadlines of timeout waits: a min-heap on
    /// `(time, seq, pid, wait_gen)`. An entry is stale — skipped, never
    /// advancing time — unless its process is still `Waiting` with the
    /// same `wait_gen` it suspended with.
    wait_timeouts: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    /// The configured fault plan, signal names resolved to indices.
    faults: Vec<ResolvedFault>,
    /// Per signal: indices into `faults` (empty without a plan).
    signal_faults: Vec<Vec<usize>>,
    /// Scheduled one-shot injections (stuck-value forcings, bit flips):
    /// a min-heap on `(time, seq, fault index)`.
    injections: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Faults actually applied, for the report (bounded).
    injected: Vec<InjectedFault>,
    /// Fast-path flag: the plan was non-empty.
    has_faults: bool,
    /// Monotonic tiebreaker giving heap entries FIFO order per instant.
    event_seq: u64,
    /// Deadline of the current `run_events` call, mirrored into a field
    /// so the interpreter's fast-forward path can respect it.
    run_deadline: Option<u64>,
    /// Per signal: processes registered as waiters (swap-remove lists;
    /// order is irrelevant because wake order flows from `ready`).
    waiters: Vec<Vec<usize>>,
    /// Monotonic counter identifying one `register_wait` call; paired
    /// with `sig_mark` to deduplicate a sensitivity list in O(1) per
    /// signal instead of scanning the waiter list.
    reg_epoch: u64,
    /// Per signal: the `reg_epoch` that last touched it. Equal to the
    /// current epoch means this registration already covered the signal.
    sig_mark: Vec<u64>,
    /// Scratch: per-signal index of the last pending write in the batch
    /// being applied (`usize::MAX` = none); reset on use.
    last_write: Vec<usize>,
    /// Scratch: signals changed in the current delta.
    changed: Vec<usize>,
    /// Scratch: waiter snapshot while waking (reused across deltas).
    signal_events: Vec<u64>,
    /// Signals changed since the parallel engine last refreshed its
    /// shared snapshot; only tracked while `snap_track` is on.
    snap_dirty: Vec<usize>,
    /// Dirty tracking switch — on only inside a parallel run, so scalar
    /// runs pay one dead branch per signal change and no memory.
    snap_track: bool,
    trace: Vec<TraceEvent>,
    total_deltas: u64,
    total_instrs: u64,
    assertions_checked: u64,
    /// Peak combined size of the two scheduler heaps.
    heap_peak: usize,
    /// Distinct time instants the scheduler advanced through.
    time_steps: u64,
}

impl<'a> Simulator<'a> {
    /// Compiles `system` for simulation with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn new(system: &'a System) -> Result<Self, SimError> {
        Self::with_config(system, SimConfig::new())
    }

    /// Compiles `system` with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn with_config(system: &'a System, config: SimConfig) -> Result<Self, SimError> {
        Self::with_config_cached(system, config, None)
    }

    /// Compiles `system`, sharing compiled code blocks through `cache`.
    ///
    /// Batch drivers that simulate many identical (or near-identical)
    /// refined systems pass one shared [`CodeCache`] so each distinct
    /// behavior or procedure body is lowered to bytecode only once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn with_config_cached(
        system: &'a System,
        config: SimConfig,
        cache: Option<&CodeCache>,
    ) -> Result<Self, SimError> {
        system.check().map_err(|e| SimError::InvalidSystem {
            message: e.to_string(),
        })?;
        let program = Program::compile_cached(system, &config.cost_model, cache);
        let max_regs = program
            .behaviors
            .iter()
            .chain(&program.procedures)
            .map(|c| c.max_regs)
            .max()
            .unwrap_or(0);
        let behavior_code = program.behaviors.into_iter().map(Some).collect();
        let procedure_code = program.procedures.into_iter().map(Some).collect();
        let signals = system
            .signals
            .iter()
            .map(|s| s.initial_value())
            .collect::<Vec<_>>();
        let vars = system
            .variables
            .iter()
            .map(|v| v.initial_value())
            .collect::<Vec<_>>();
        let processes: Vec<Process> = (0..system.behaviors.len()).map(Process::new).collect();
        let ready = (0..processes.len()).collect();
        let n_signals = signals.len();
        // Resolve fault-plan signal names once; unknown names are a
        // configuration error, not something to discover mid-run.
        let mut faults = Vec::with_capacity(config.fault_plan.faults.len());
        let mut signal_faults = vec![Vec::new(); n_signals];
        let mut injections = BinaryHeap::new();
        for f in &config.fault_plan.faults {
            let idx = system
                .signals
                .iter()
                .position(|s| s.name == f.signal)
                .ok_or_else(|| SimError::InvalidSystem {
                    message: format!("fault plan names unknown signal `{}`", f.signal),
                })?;
            let fi = faults.len();
            match f.kind {
                FaultKind::StuckAt { from, .. } => {
                    injections.push(Reverse((from, fi as u64, fi)));
                }
                FaultKind::FlipBit { at, .. } => {
                    injections.push(Reverse((at, fi as u64, fi)));
                }
                FaultKind::DelayWrites { .. } | FaultKind::DropWrites { .. } => {}
            }
            signal_faults[idx].push(fi);
            faults.push(ResolvedFault {
                signal: idx,
                kind: f.kind.clone(),
            });
        }
        let has_faults = !faults.is_empty();
        Ok(Self {
            system,
            config,
            behavior_code,
            procedure_code,
            regs: RegFile::with_capacity(max_regs as usize),
            time: 0,
            signals,
            vars,
            processes,
            ready,
            pending: Vec::new(),
            timed_writes: BinaryHeap::new(),
            sleepers: BinaryHeap::new(),
            wait_timeouts: BinaryHeap::new(),
            faults,
            signal_faults,
            injections,
            injected: Vec::new(),
            has_faults,
            event_seq: 0,
            run_deadline: None,
            waiters: vec![Vec::new(); n_signals],
            reg_epoch: 0,
            sig_mark: vec![0; n_signals],
            last_write: vec![usize::MAX; n_signals],
            changed: Vec::new(),
            signal_events: vec![0; n_signals],
            snap_dirty: Vec::new(),
            snap_track: false,
            trace: Vec::new(),
            total_deltas: 0,
            total_instrs: 0,
            assertions_checked: 0,
            heap_peak: 0,
            time_steps: 0,
        })
    }

    /// Runs until no further event can occur, then reports.
    ///
    /// Quiescence means: every process is finished, or suspended on a wait
    /// that nothing pending can satisfy. Server processes idling on their
    /// bus is the expected quiescent state of a refined system.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] — simulated time passed the configured cap.
    /// * [`SimError::DeltaOverflow`] / [`SimError::ZeroDelayLoop`] —
    ///   zero-time oscillation.
    /// * [`SimError::Eval`] — a runtime type or bounds violation.
    pub fn run_to_quiescence(self) -> Result<SimReport, SimError> {
        self.run_to_quiescence_with_stats().map(|(r, _)| r)
    }

    /// Like [`Simulator::run_to_quiescence`], additionally returning the
    /// parallel engine's counters ([`ParallelStats`]).
    ///
    /// The stats are a side channel on purpose: the report itself is
    /// byte-identical at any [`SimConfig::sim_threads`] value, while the
    /// stats describe how the work was actually spread.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_to_quiescence`].
    pub fn run_to_quiescence_with_stats(mut self) -> Result<(SimReport, ParallelStats), SimError> {
        let stats = self.run_all(None)?;
        if self.config.fail_on_deadlock {
            let stuck = self.processes.iter().any(|p| {
                matches!(p.status, Status::Waiting(_)) && !self.system.behaviors[p.behavior].repeats
            });
            if stuck {
                let diagnosis = self.diagnosis().expect("a blocked process exists");
                return Err(SimError::Deadlock {
                    diagnosis: Box::new(diagnosis),
                });
            }
        }
        Ok((self.into_report(), stats))
    }

    /// Runs until time `deadline` (inclusive) or quiescence, whichever
    /// comes first, then reports.
    ///
    /// Unlike [`Simulator::run_to_quiescence`] this terminates cleanly
    /// for free-running systems (periodic producers, servers fed by
    /// repeating clients) that never become quiescent.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_to_quiescence`], except
    /// that reaching the deadline is success, not a timeout.
    pub fn run_until(self, deadline: u64) -> Result<SimReport, SimError> {
        self.run_until_with_stats(deadline).map(|(r, _)| r)
    }

    /// Like [`Simulator::run_until`], additionally returning the
    /// parallel engine's counters ([`ParallelStats`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_until`].
    pub fn run_until_with_stats(
        mut self,
        deadline: u64,
    ) -> Result<(SimReport, ParallelStats), SimError> {
        let stats = self.run_all(Some(deadline))?;
        Ok((self.into_report(), stats))
    }

    /// Dispatches to the scalar or parallel event loop according to
    /// [`SimConfig::sim_threads`] and the shard plan.
    fn run_all(&mut self, deadline: Option<u64>) -> Result<ParallelStats, SimError> {
        let threads = self.config.sim_threads.max(1);
        if threads <= 1 {
            self.run_events(deadline)?;
            return Ok(ParallelStats::scalar(threads, 1.min(self.processes.len())));
        }
        let plan = plan_shards(self.system, threads);
        if plan.shards <= 1 {
            // One atomic group: the partitioner proved a fork can never
            // have two shards to feed, so skip the pool entirely.
            self.run_events(deadline)?;
            return Ok(ParallelStats::scalar(threads, plan.shards));
        }
        self.run_events_parallel(deadline, plan, threads)
    }

    /// The main event loop; stops at quiescence, or past `deadline`.
    fn run_events(&mut self, deadline: Option<u64>) -> Result<(), SimError> {
        self.run_deadline = deadline;
        loop {
            self.settle_instant()?;
            if !self.advance_time(deadline)? {
                return Ok(());
            }
        }
    }

    /// Advances to the next scheduled instant and moves its events into
    /// `pending`/`ready`. Returns `false` at quiescence or the deadline.
    fn advance_time(&mut self, deadline: Option<u64>) -> Result<bool, SimError> {
        let next_write = self.timed_writes.peek().map(|Reverse(w)| w.time);
        let next_sleep = self.sleepers.peek().map(|&Reverse((t, _, _))| t);
        // Stale watchdog entries must be pruned *before* choosing the
        // next instant — a satisfied wait's leftover deadline must not
        // drag simulated time forward.
        let next_timeout = self.next_live_wait_timeout();
        let next_injection = self.injections.peek().map(|&Reverse((t, _, _))| t);
        let next = [next_write, next_sleep, next_timeout, next_injection]
            .into_iter()
            .flatten()
            .min();
        let Some(next) = next else { return Ok(false) };
        if let Some(deadline) = deadline {
            if next > deadline {
                self.time = deadline;
                return Ok(false);
            }
        }
        if next > self.config.max_time {
            return Err(SimError::Timeout {
                max_time: self.config.max_time,
                diagnosis: self.diagnosis().map(Box::new),
            });
        }
        self.time = next;
        self.time_steps += 1;
        while self
            .timed_writes
            .peek()
            .is_some_and(|Reverse(w)| w.time == next)
        {
            let Reverse(w) = self.timed_writes.pop().expect("peeked");
            self.pending.push((w.signal, w.value, w.forced));
        }
        while self
            .sleepers
            .peek()
            .is_some_and(|&Reverse((t, _, _))| t == next)
        {
            let Reverse((_, _, pid)) = self.sleepers.pop().expect("peeked");
            // Lazy invalidation: skip entries whose process moved on.
            if matches!(self.processes[pid].status, Status::Sleeping) {
                self.processes[pid].status = Status::Ready;
                self.ready.push_back(pid);
            }
        }
        while self
            .wait_timeouts
            .peek()
            .is_some_and(|&Reverse((t, _, _, _))| t == next)
        {
            let Reverse((_, _, pid, gen)) = self.wait_timeouts.pop().expect("peeked");
            // Same lazy invalidation as sleepers: only a process still
            // suspended on the *same* wait expires.
            let p = &self.processes[pid];
            if matches!(p.status, Status::Waiting(_)) && p.wait_gen == gen {
                self.make_ready(pid);
            }
        }
        while self
            .injections
            .peek()
            .is_some_and(|&Reverse((t, _, _))| t == next)
        {
            let Reverse((_, _, fi)) = self.injections.pop().expect("peeked");
            self.apply_injection(fi);
        }
        Ok(true)
    }

    /// Earliest watchdog deadline still attached to a live suspension,
    /// popping stale entries on the way.
    fn next_live_wait_timeout(&mut self) -> Option<u64> {
        while let Some(&Reverse((t, _, pid, gen))) = self.wait_timeouts.peek() {
            let p = &self.processes[pid];
            if matches!(p.status, Status::Waiting(_)) && p.wait_gen == gen {
                return Some(t);
            }
            self.wait_timeouts.pop();
        }
        None
    }

    /// Applies a scheduled one-shot injection (stuck-value forcing or bit
    /// flip) as a forced zero-delay write, bypassing the fault filter.
    fn apply_injection(&mut self, fi: usize) {
        let sig = self.faults[fi].signal;
        match &self.faults[fi].kind {
            FaultKind::StuckAt { value, .. } => {
                let system: &'a System = self.system;
                let v = coerce(value.clone(), &system.signals[sig].ty);
                self.pending.push((sig, v, true));
                self.record_injection(sig, "forced stuck value".to_string());
            }
            FaultKind::FlipBit { bit, .. } => {
                let bit = *bit;
                let cur = &self.signals[sig];
                let ty = cur.ty();
                let mut bits = cur.to_bits();
                if bit < bits.width() {
                    let inverted = BitVec::from_u64(u64::from(!bits.bit(bit)), 1);
                    bits.write_slice(bit, bit, &inverted);
                    let v = Value::from_bits(&ty, &bits);
                    self.pending.push((sig, v, true));
                    self.record_injection(sig, format!("bit {bit} flipped"));
                }
            }
            FaultKind::DelayWrites { .. } | FaultKind::DropWrites { .. } => {}
        }
    }

    /// Records an applied fault for the report, up to the cap.
    fn record_injection(&mut self, sig: usize, effect: String) {
        if self.injected.len() < MAX_RECORDED_INJECTIONS {
            self.injected.push(InjectedFault {
                time: self.time,
                signal: self.system.signals[sig].name.clone(),
                effect,
            });
        }
    }

    /// Decides what happens to an ordinary write to `sig` landing now.
    fn write_disposition(&self, sig: usize) -> Disposition {
        for &fi in &self.signal_faults[sig] {
            let kind = &self.faults[fi].kind;
            if !kind.window_contains(self.time) {
                continue;
            }
            match kind {
                FaultKind::StuckAt { .. } => {
                    return Disposition::Drop("write dropped (stuck line)")
                }
                FaultKind::DropWrites { .. } => return Disposition::Drop("write dropped"),
                FaultKind::DelayWrites { cycles, .. } if *cycles > 0 => {
                    return Disposition::Delay(*cycles)
                }
                _ => {}
            }
        }
        Disposition::Keep
    }

    /// Executes all delta cycles of the current time instant.
    fn settle_instant(&mut self) -> Result<(), SimError> {
        let mut deltas = 0u32;
        loop {
            if !self.pending.is_empty() {
                self.apply_pending();
                self.wake_on()?;
                deltas += 1;
                self.total_deltas += 1;
                if deltas > self.config.max_deltas_per_instant {
                    return Err(SimError::DeltaOverflow { time: self.time });
                }
            }
            if self.ready.is_empty() {
                if self.pending.is_empty() {
                    return Ok(());
                }
                continue;
            }
            while let Some(pid) = self.ready.pop_front() {
                if matches!(self.processes[pid].status, Status::Ready) {
                    self.run_process(pid)?;
                }
            }
        }
    }

    /// Spawns the worker pool and runs the event loop with fork/join
    /// delta rounds. `threads - 1` workers are spawned (the main thread
    /// executes one shard of every round itself), bounding the run to
    /// `threads` busy threads as [`SimConfig::sim_threads`] promises.
    fn run_events_parallel(
        &mut self,
        deadline: Option<u64>,
        plan: ShardPlan,
        threads: usize,
    ) -> Result<ParallelStats, SimError> {
        let shards = plan.shards;
        let mut shard_vars: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (v, owner) in plan.var_shard.iter().enumerate() {
            if let Some(s) = *owner {
                shard_vars[s].push(v);
            }
        }
        // The workers get their own code handles: the slots in `self`
        // keep the take/put discipline for the inline scalar rounds.
        let behavior_code: Vec<Arc<Code>> = self
            .behavior_code
            .iter()
            .map(|c| Arc::clone(c.as_ref().expect("no block executing between rounds")))
            .collect();
        let procedure_code: Vec<Arc<Code>> = self
            .procedure_code
            .iter()
            .map(|c| Arc::clone(c.as_ref().expect("no block executing between rounds")))
            .collect();
        let max_regs = behavior_code
            .iter()
            .chain(&procedure_code)
            .map(|c| c.max_regs)
            .max()
            .unwrap_or(0) as usize;
        let system = self.system;
        let max_steps = self.config.max_steps_per_activation;
        let n_vars = self.vars.len();
        self.snap_dirty.clear();
        self.snap_track = true;
        let result = std::thread::scope(|scope| -> Result<ParallelStats, SimError> {
            let (res_tx, res_rx) = mpsc::channel::<JobResult>();
            let mut job_txs: Vec<Option<mpsc::Sender<Job>>> = Vec::with_capacity(shards);
            job_txs.push(None);
            for _ in 1..shards {
                let (tx, rx) = mpsc::channel::<Job>();
                job_txs.push(Some(tx));
                let res_tx = res_tx.clone();
                let bc = behavior_code.clone();
                let prc = procedure_code.clone();
                scope.spawn(move || {
                    let mut regs = RegFile::with_capacity(max_regs);
                    while let Ok(job) = rx.recv() {
                        let out = shard::run_job(system, &bc, &prc, max_steps, &mut regs, job);
                        if res_tx.send(out).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            let mut eng = ParEngine {
                plan,
                shard_vars,
                var_bufs: (0..shards)
                    .map(|_| Some(vec![Value::Bit(false); n_vars]))
                    .collect(),
                snapshot: Arc::new(self.signals.clone()),
                behavior_code: &behavior_code,
                procedure_code: &procedure_code,
                max_steps,
                inline_regs: RegFile::with_capacity(max_regs),
                job_txs,
                res_rx,
                round: Vec::new(),
                round_pos: vec![usize::MAX; self.processes.len()],
                shard_pids: vec![Vec::new(); shards],
                shard_round_instrs: vec![0; shards],
                ordered: Vec::new(),
                stats: ParallelStats::scalar(threads, shards),
            };
            self.run_events_par(deadline, &mut eng)?;
            Ok(eng.stats)
            // `eng` (and with it every job sender) drops here, so the
            // workers' `recv` fails and the scope joins them — on the
            // error path too.
        });
        self.snap_track = false;
        self.snap_dirty.clear();
        result
    }

    /// The parallel twin of [`Simulator::run_events`].
    fn run_events_par(
        &mut self,
        deadline: Option<u64>,
        eng: &mut ParEngine<'_>,
    ) -> Result<(), SimError> {
        self.run_deadline = deadline;
        loop {
            self.settle_instant_par(eng)?;
            if !self.advance_time(deadline)? {
                return Ok(());
            }
        }
    }

    /// The parallel twin of [`Simulator::settle_instant`]: drains the
    /// ready queue round by round. A round whose runnable processes span
    /// multiple shards forks across the pool; anything else (one
    /// runnable process, or all on one shard) runs the unmodified scalar
    /// path, keeping the fast-forward time jumps.
    fn settle_instant_par(&mut self, eng: &mut ParEngine<'_>) -> Result<(), SimError> {
        let mut deltas = 0u32;
        loop {
            if !self.pending.is_empty() {
                self.apply_pending();
                self.wake_on()?;
                deltas += 1;
                self.total_deltas += 1;
                if deltas > self.config.max_deltas_per_instant {
                    return Err(SimError::DeltaOverflow { time: self.time });
                }
            }
            if self.ready.is_empty() {
                if self.pending.is_empty() {
                    return Ok(());
                }
                continue;
            }
            // Like the scalar drain, processes woken mid-drain (by a
            // fast-forwarded write) join before the next pending batch
            // applies — each pass re-inspects what is left.
            while !self.ready.is_empty() {
                let mut runnable = 0usize;
                let mut first_shard = usize::MAX;
                let mut multi = false;
                for &pid in &self.ready {
                    if matches!(self.processes[pid].status, Status::Ready) {
                        runnable += 1;
                        let s = eng.plan.shard_of[pid];
                        if first_shard == usize::MAX {
                            first_shard = s;
                        } else if s != first_shard {
                            multi = true;
                        }
                    }
                }
                if !multi {
                    if runnable > 0 {
                        eng.stats.scalar_rounds += 1;
                    }
                    while let Some(pid) = self.ready.pop_front() {
                        if matches!(self.processes[pid].status, Status::Ready) {
                            self.run_process(pid)?;
                        }
                    }
                } else {
                    self.run_round_parallel(eng)?;
                }
            }
        }
    }

    /// One fork/join round: dispatch the runnable processes to their
    /// shards, run one shard inline, then replay every staged effect in
    /// scalar pop order at the barrier (see `shard.rs` for why the
    /// replay reconstructs the scalar execution exactly).
    fn run_round_parallel(&mut self, eng: &mut ParEngine<'_>) -> Result<(), SimError> {
        // Capture the round in scalar pop order.
        eng.round.clear();
        while let Some(pid) = self.ready.pop_front() {
            if matches!(self.processes[pid].status, Status::Ready) {
                eng.round.push(pid);
            }
        }
        for (i, &pid) in eng.round.iter().enumerate() {
            eng.round_pos[pid] = i;
        }
        // Refresh the shared snapshot in place: the workers dropped
        // their handles at the previous barrier, so the Arc is unique
        // and only signals that actually changed are cloned.
        {
            let snap = Arc::make_mut(&mut eng.snapshot);
            for &sig in &self.snap_dirty {
                snap[sig] = self.signals[sig].clone();
            }
            self.snap_dirty.clear();
        }
        // Build one job per active shard: move the shard's variable
        // values and processes out of the master (placeholders stay
        // behind), pop order preserved within each shard.
        for pids in &mut eng.shard_pids {
            pids.clear();
        }
        for &pid in &eng.round {
            eng.shard_pids[eng.plan.shard_of[pid]].push(pid);
        }
        let mut inline_job: Option<Job> = None;
        let mut dispatched = 0usize;
        for s in 0..eng.shard_pids.len() {
            if eng.shard_pids[s].is_empty() {
                continue;
            }
            let mut vars = eng.var_bufs[s].take().expect("buffer parked at barrier");
            for &v in &eng.shard_vars[s] {
                std::mem::swap(&mut self.vars[v], &mut vars[v]);
            }
            let procs = eng.shard_pids[s]
                .iter()
                .map(|&pid| {
                    let placeholder = Process {
                        behavior: self.processes[pid].behavior,
                        frames: Vec::new(),
                        status: Status::Finished,
                        registered: Vec::new(),
                        wait_gen: 0,
                        finish_time: None,
                        iterations: 0,
                        active_cycles: 0,
                        instrs_executed: 0,
                    };
                    (
                        pid,
                        std::mem::replace(&mut self.processes[pid], placeholder),
                    )
                })
                .collect();
            let job = Job {
                shard: s,
                time: self.time,
                snapshot: Arc::clone(&eng.snapshot),
                vars,
                procs,
            };
            match &eng.job_txs[s] {
                // The first active shard (shard 0 when present — it has
                // no worker) runs inline so the main thread pulls its
                // weight instead of idling at the barrier.
                Some(tx) if inline_job.is_some() => {
                    tx.send(job).expect("worker alive inside the scope");
                    dispatched += 1;
                }
                _ => inline_job = Some(job),
            }
        }
        for n in &mut eng.shard_round_instrs {
            *n = 0;
        }
        eng.ordered.clear();
        eng.ordered.resize_with(eng.round.len(), || None);
        let inline_job = inline_job.expect("a multi-shard round has at least two active shards");
        let inline_res = shard::run_job(
            self.system,
            eng.behavior_code,
            eng.procedure_code,
            eng.max_steps,
            &mut eng.inline_regs,
            inline_job,
        );
        self.integrate_result(eng, inline_res);
        for _ in 0..dispatched {
            let res = eng
                .res_rx
                .recv()
                .expect("a worker disappeared mid-round (panic in shard executor)");
            self.integrate_result(eng, res);
        }
        let round_max = eng.shard_round_instrs.iter().copied().max().unwrap_or(0);
        for (s, &n) in eng.shard_round_instrs.iter().enumerate() {
            eng.stats.shard_instrs[s] += n;
            eng.stats.barrier_stall_instrs += round_max - n;
        }
        eng.stats.parallel_rounds += 1;
        // Barrier replay in scalar pop order. Only the round's last
        // process may fast-forward time — exactly the scalar condition
        // (the ready queue is empty when it suspends) — and on success
        // it simply keeps running on the scalar path.
        let last = eng.round.len() - 1;
        for i in 0..eng.round.len() {
            let rep = eng.ordered[i].take().expect("every round member reported");
            let pid = rep.pid;
            self.total_instrs += rep.steps;
            self.assertions_checked += rep.asserts;
            for op in rep.ops {
                match op {
                    Staged::Pending { signal, value } => {
                        self.pending.push((signal, value, false));
                    }
                    Staged::Sleep { wake } => {
                        if i == last && self.try_fast_advance(wake)? {
                            self.run_process(pid)?;
                        } else {
                            self.sleep_until(pid, wake);
                        }
                    }
                    Staged::TimedWrite {
                        wake,
                        signal,
                        value,
                    } => {
                        if i == last {
                            match self.try_fast_advance_write(wake, signal, value)? {
                                None => self.run_process(pid)?,
                                Some(v) => {
                                    self.schedule_write(wake, signal, v, false);
                                    self.sleep_until(pid, wake);
                                }
                            }
                        } else {
                            self.schedule_write(wake, signal, value, false);
                            self.sleep_until(pid, wake);
                        }
                    }
                    Staged::WaitOn { signals } => {
                        self.register_wait(pid, WaitKind::Signals, &signals);
                    }
                    Staged::WaitUntil { cond, deadline } => {
                        self.register_wait(
                            pid,
                            WaitKind::Until(Arc::clone(&cond)),
                            &cond.sensitivity,
                        );
                        if let Some(d) = deadline {
                            self.arm_watchdog(pid, d);
                        }
                    }
                    Staged::WaitIs {
                        signal,
                        value,
                        deadline,
                    } => {
                        self.register_wait_one(pid, WaitKind::SignalIs(signal, value), signal);
                        if let Some(d) = deadline {
                            self.arm_watchdog(pid, d);
                        }
                    }
                }
            }
            // First error in pop order wins; the staged effects of every
            // later process are discarded, exactly as the scalar kernel
            // would never have run them.
            if let Some(e) = rep.error {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Integrates one shard's result at the barrier: variables swap back
    /// (master copy authoritative again), processes move home, outcomes
    /// line up in scalar pop order for the replay.
    fn integrate_result(&mut self, eng: &mut ParEngine<'_>, res: JobResult) {
        let JobResult {
            shard,
            mut vars,
            outcomes,
        } = res;
        for &v in &eng.shard_vars[shard] {
            std::mem::swap(&mut self.vars[v], &mut vars[v]);
        }
        eng.var_bufs[shard] = Some(vars);
        for out in outcomes {
            let Outcome {
                pid,
                process,
                ops,
                steps,
                asserts,
                error,
            } = out;
            eng.shard_round_instrs[shard] += steps;
            self.processes[pid] = process;
            eng.ordered[eng.round_pos[pid]] = Some(Replay {
                pid,
                ops,
                steps,
                asserts,
                error,
            });
        }
    }

    /// Applies zero-delay writes, recording changed signals in the
    /// `changed` scratch buffer.
    ///
    /// Multiple writes to one signal within the same delta collapse to the
    /// last one (VHDL projected-waveform semantics), producing at most one
    /// event per signal per delta. Runs allocation-free: the pending batch
    /// and all bookkeeping live in reusable buffers.
    fn apply_pending(&mut self) {
        self.changed.clear();
        if self.pending.len() == 1 {
            // Single write: no collision bookkeeping needed.
            let (sig, value, forced) = self.pending.pop().expect("len checked");
            self.apply_one(sig, value, forced);
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        // Pass 1: last write per signal wins.
        for (i, (sig, _, _)) in pending.iter().enumerate() {
            self.last_write[*sig] = i;
        }
        // Pass 2: apply winners in first-write order, resetting scratch.
        for (i, entry) in pending.iter_mut().enumerate() {
            let sig = entry.0;
            if self.last_write[sig] != i {
                continue;
            }
            self.last_write[sig] = usize::MAX;
            let value = std::mem::replace(&mut entry.1, Value::Bit(false));
            let forced = entry.2;
            self.apply_one(sig, value, forced);
        }
        pending.clear();
        // Processes may have queued new writes only after this returns,
        // so the swap back cannot clobber anything.
        self.pending = pending;
    }

    /// Applies one winning write (first through the fault filter, unless
    /// forced), recording the event if it changed.
    fn apply_one(&mut self, sig: usize, value: Value, forced: bool) {
        if self.has_faults && !forced {
            match self.write_disposition(sig) {
                Disposition::Keep => {}
                Disposition::Drop(effect) => {
                    self.record_injection(sig, effect.to_string());
                    return;
                }
                Disposition::Delay(cycles) => {
                    self.record_injection(sig, format!("write delayed {cycles} cycles"));
                    // Re-queued as forced so it cannot be delayed again.
                    self.schedule_write(self.time + cycles, sig, value, true);
                    return;
                }
            }
        }
        if self.signals[sig] != value {
            self.signals[sig] = value;
            self.signal_events[sig] += 1;
            self.changed.push(sig);
            if self.snap_track {
                self.snap_dirty.push(sig);
            }
            if self.config.trace && self.trace.len() < self.config.max_trace_events {
                self.trace.push(TraceEvent {
                    time: self.time,
                    signal: ifsyn_spec::SignalId::new(sig as u32),
                    value: self.signals[sig].clone(),
                });
            }
        }
    }

    /// Wakes processes sensitive to the signals in the `changed` buffer.
    fn wake_on(&mut self) -> Result<(), SimError> {
        for ci in 0..self.changed.len() {
            let sig = self.changed[ci];
            // Iterate the waiter list in place: when a process wakes,
            // `make_ready` swap-removes its entry, so the slot at `i` is
            // refilled and the index only advances past survivors. No
            // process can suspend during a wake sweep, so no new entries
            // appear behind us.
            let mut i = 0;
            while i < self.waiters[sig].len() {
                let pid = self.waiters[sig][i];
                let sat = match &self.processes[pid].status {
                    Status::Waiting(WaitKind::Signals) => true,
                    Status::Waiting(WaitKind::Until(cond)) => {
                        // Split borrows: the condition lives in `processes`
                        // (shared), the register file is the only mutable
                        // field touched — no Arc clone on the wake path.
                        eval_split(
                            &self.vars,
                            &self.signals,
                            &self.processes,
                            &mut self.regs,
                            pid,
                            &cond.code,
                        )?
                        .as_bool()
                        .map_err(|e| SimError::eval(e.to_string()))?
                    }
                    Status::Waiting(WaitKind::SignalIs(idx, v)) => self.signals[*idx] == *v,
                    _ => false,
                };
                if sat {
                    self.make_ready(pid);
                } else {
                    i += 1;
                }
            }
        }
        Ok(())
    }

    fn make_ready(&mut self, pid: usize) {
        let mut registered = std::mem::take(&mut self.processes[pid].registered);
        for &sig in &registered {
            // Waiter lists are unordered: swap-remove instead of retain.
            if let Some(pos) = self.waiters[sig].iter().position(|&p| p == pid) {
                self.waiters[sig].swap_remove(pos);
            }
        }
        registered.clear();
        // Hand the emptied buffer back so its capacity is reused.
        self.processes[pid].registered = registered;
        self.processes[pid].status = Status::Ready;
        self.ready.push_back(pid);
    }

    fn sleep_until(&mut self, pid: usize, until: u64) {
        self.processes[pid].status = Status::Sleeping;
        self.sleepers.push(Reverse((until, self.event_seq, pid)));
        self.event_seq += 1;
        self.note_heap_size();
    }

    fn schedule_write(&mut self, time: u64, signal: usize, value: Value, forced: bool) {
        self.timed_writes.push(Reverse(TimedWrite {
            time,
            seq: self.event_seq,
            signal,
            value,
            forced,
        }));
        self.event_seq += 1;
        self.note_heap_size();
    }

    fn note_heap_size(&mut self) {
        let size = self.timed_writes.len() + self.sleepers.len();
        if size > self.heap_peak {
            self.heap_peak = size;
        }
    }

    fn register_wait(&mut self, pid: usize, kind: WaitKind, sensitivity: &[SignalId]) {
        // A fresh generation invalidates any watchdog entry left over from
        // an earlier suspension of this process.
        self.processes[pid].wait_gen += 1;
        // A fresh epoch makes every `sig_mark` entry stale at once, so
        // deduplicating a wide sensitivity list is O(1) per signal instead
        // of a scan of the waiter list. A process can never already be in
        // a waiter list here (make_ready clears its registrations before
        // it runs again), so only same-list duplicates need catching.
        self.reg_epoch += 1;
        let epoch = self.reg_epoch;
        let mut registered = std::mem::take(&mut self.processes[pid].registered);
        registered.clear();
        for s in sensitivity {
            let idx = s.index();
            if self.sig_mark[idx] != epoch {
                self.sig_mark[idx] = epoch;
                self.waiters[idx].push(pid);
                registered.push(idx);
            }
        }
        self.processes[pid].registered = registered;
        self.processes[pid].status = Status::Waiting(kind);
    }

    /// Single-signal fast path of [`register_wait`]: no epoch bump and no
    /// dedup pass — a one-element sensitivity list cannot contain
    /// duplicates. This is the shape of every generated handshake wait.
    fn register_wait_one(&mut self, pid: usize, kind: WaitKind, idx: usize) {
        self.processes[pid].wait_gen += 1;
        self.waiters[idx].push(pid);
        let registered = &mut self.processes[pid].registered;
        registered.clear();
        registered.push(idx);
        self.processes[pid].status = Status::Waiting(kind);
    }

    /// Arms a watchdog for the suspension the process just entered (must
    /// be called directly after `register_wait`).
    fn arm_watchdog(&mut self, pid: usize, deadline: u64) {
        let gen = self.processes[pid].wait_gen;
        self.wait_timeouts
            .push(Reverse((deadline, self.event_seq, pid, gen)));
        self.event_seq += 1;
    }

    /// Evaluates compiled code in a process's current scope, cloning the
    /// result out of wherever it lives (register, pool, storage).
    fn eval_in(&mut self, pid: usize, code: &ExprCode) -> Result<Value, SimError> {
        Ok(eval_split(
            &self.vars,
            &self.signals,
            &self.processes,
            &mut self.regs,
            pid,
            code,
        )?
        .clone())
    }

    /// Evaluates compiled code to a boolean without materializing an
    /// owned value — the wake/branch/assert hot path.
    fn eval_bool_in(&mut self, pid: usize, code: &ExprCode) -> Result<bool, SimError> {
        eval_split(
            &self.vars,
            &self.signals,
            &self.processes,
            &mut self.regs,
            pid,
            code,
        )?
        .as_bool()
        .map_err(|e| SimError::eval(e.to_string()))
    }

    /// Evaluates compiled code to an integer without materializing an
    /// owned value (loop bounds, addresses, slice offsets).
    fn eval_i64_in(&mut self, pid: usize, code: &ExprCode) -> Result<i64, SimError> {
        eval_split(
            &self.vars,
            &self.signals,
            &self.processes,
            &mut self.regs,
            pid,
            code,
        )?
        .as_i64()
        .map_err(|e| SimError::eval(e.to_string()))
    }

    /// Resolves a compiled path to concrete storage steps; index and
    /// offset code evaluates in the process's current (top) frame.
    fn resolve_cpath(
        &mut self,
        pid: usize,
        path: &CPath,
        frame_abs: usize,
    ) -> Result<ResolvedPlace, SimError> {
        let root = match path.root {
            CRoot::Var(i) => Root::Var(i as usize),
            CRoot::Local(s) => Root::Local {
                frame: frame_abs,
                slot: s as usize,
            },
        };
        let mut steps = Vec::with_capacity(path.steps.len());
        for st in path.steps.iter() {
            match st {
                CPathStep::Elem(code) => {
                    let i = self.eval_i64_in(pid, code)?;
                    let i = usize::try_from(i)
                        .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                    steps.push(Step::Elem(i));
                }
                CPathStep::Slice(hi, lo) => steps.push(Step::Slice(*hi, *lo)),
                CPathStep::DynSlice(code, width) => {
                    // The offset evaluates once at resolution time, turning
                    // the dynamic slice into a concrete one.
                    let lo = self.eval_i64_in(pid, code)?;
                    let lo = u32::try_from(lo)
                        .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
                    steps.push(Step::Slice(lo + width - 1, lo));
                }
            }
        }
        Ok(ResolvedPlace { root, steps })
    }

    /// Resolves a compiled place for copy-back, returning the concrete
    /// destination and its type (captured at call time, VHDL-style).
    fn resolve_cplace(
        &mut self,
        pid: usize,
        place: &CPlace,
        frame_abs: usize,
    ) -> Result<(ResolvedPlace, Ty), SimError> {
        let system: &'a System = self.system;
        match place {
            CPlace::Var(i) => {
                let decl = system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                Ok((
                    ResolvedPlace {
                        root: Root::Var(*i as usize),
                        steps: Vec::new(),
                    },
                    decl.ty.clone(),
                ))
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let ty = self.local_ty(pid, frame_abs, slot)?;
                Ok((
                    ResolvedPlace {
                        root: Root::Local {
                            frame: frame_abs,
                            slot,
                        },
                        steps: Vec::new(),
                    },
                    ty,
                ))
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let rp = self.resolve_cpath(pid, path, frame_abs)?;
                Ok((rp, ty))
            }
        }
    }

    /// The declared type of a frame's local slot.
    fn local_ty(&self, pid: usize, frame_abs: usize, slot: usize) -> Result<Ty, SimError> {
        match self.processes[pid].frames[frame_abs].code {
            CodeRef::Procedure(p) => {
                let proc = &self.system.procedures[p];
                if slot < proc.slot_count() {
                    Ok(proc.slot_ty(slot).clone())
                } else {
                    Err(SimError::eval(format!("missing local slot {slot}")))
                }
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        }
    }

    /// Reads a compiled place's current value.
    fn read_cplace(&mut self, pid: usize, place: &CPlace) -> Result<Value, SimError> {
        match place {
            CPlace::Var(i) => self
                .vars
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}"))),
            CPlace::Local(slot) => {
                let frame = self.processes[pid]
                    .frames
                    .last()
                    .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
                frame
                    .locals
                    .get(*slot as usize)
                    .cloned()
                    .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))
            }
            CPlace::Path(path) => {
                let frame_abs = self.processes[pid].frames.len() - 1;
                let rp = self.resolve_cpath(pid, path, frame_abs)?;
                self.read_resolved(pid, &rp)
            }
        }
    }

    /// Reads the value at a resolved path.
    fn read_resolved(&self, pid: usize, rp: &ResolvedPlace) -> Result<Value, SimError> {
        let mut cur: &Value = match rp.root {
            Root::Var(i) => self
                .vars
                .get(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => self.processes[pid]
                .frames
                .get(frame)
                .and_then(|f| f.locals.get(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        for (i, step) in rp.steps.iter().enumerate() {
            match step {
                Step::Elem(idx) => match cur {
                    Value::Array(items) => {
                        cur = items.get(*idx).ok_or_else(|| {
                            SimError::eval(format!("array index {idx} out of range"))
                        })?;
                    }
                    other => {
                        return Err(SimError::eval(format!("indexing non-array value {other}")))
                    }
                },
                Step::Slice(hi, lo) => {
                    if i + 1 != rp.steps.len() {
                        return Err(SimError::eval(
                            "slice must be the last projection of a write target".to_string(),
                        ));
                    }
                    let bits = cur.to_bits();
                    if *hi >= bits.width() {
                        return Err(SimError::eval(format!(
                            "slice {hi} downto {lo} out of range for width {}",
                            bits.width()
                        )));
                    }
                    return Ok(Value::Bits(bits.slice(*hi, *lo)));
                }
            }
        }
        Ok(cur.clone())
    }

    fn write_resolved(
        &mut self,
        pid: usize,
        rp: &ResolvedPlace,
        value: Value,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => self
                .vars
                .get_mut(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => self.processes[pid]
                .frames
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    /// Writes `value` (coerced to the target's type) into a place.
    fn write_cplace(&mut self, pid: usize, place: &CPlace, value: Value) -> Result<(), SimError> {
        // Whole-variable and whole-local writes (the overwhelmingly common
        // case) skip place resolution entirely.
        let system: &'a System = self.system;
        match place {
            CPlace::Var(i) => {
                let decl = system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                self.vars[*i as usize] = coerce(value, &decl.ty);
                Ok(())
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let frame_abs = self.processes[pid].frames.len() - 1;
                let ty = self.local_ty(pid, frame_abs, slot)?;
                let v = coerce(value, &ty);
                self.processes[pid].frames[frame_abs].locals[slot] = v;
                Ok(())
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let frame_abs = self.processes[pid].frames.len() - 1;
                let rp = self.resolve_cpath(pid, path, frame_abs)?;
                self.write_resolved(pid, &rp, coerce(value, &ty))
            }
        }
    }

    /// Moves a code block out of its slot for execution. No reference
    /// count is touched; the block must be returned with [`Self::put_block`]
    /// before anything else can execute or inspect it.
    ///
    /// # Panics
    ///
    /// Panics if the block is already taken (cannot happen from the
    /// interpreter, which always puts the running block back before
    /// taking another).
    fn take_block(&mut self, code: CodeRef) -> Arc<Code> {
        let slot = match code {
            CodeRef::Behavior(i) => &mut self.behavior_code[i],
            CodeRef::Procedure(i) => &mut self.procedure_code[i],
        };
        slot.take().expect("code block already taken")
    }

    /// Returns a block taken with [`Self::take_block`] to its slot.
    fn put_block(&mut self, code: CodeRef, block: Arc<Code>) {
        let slot = match code {
            CodeRef::Behavior(i) => &mut self.behavior_code[i],
            CodeRef::Procedure(i) => &mut self.procedure_code[i],
        };
        *slot = Some(block);
    }

    /// Writes the cached program counter back into the process's top
    /// frame (done only at suspension points, not per instruction).
    /// Attempts to jump simulated time straight to `wake` without
    /// suspending the running process.
    ///
    /// Legal exactly when nothing else can observe the skipped interval:
    /// no undelivered zero-delay writes, no other runnable process, and
    /// no scheduled event at or before `wake`. A wake past the run
    /// deadline or the time cap declines too, so those terminations stay
    /// handled in one place (`run_events`). On success the instant
    /// counter advances just as the event loop would have done.
    fn try_fast_advance(&mut self, wake: u64) -> Result<bool, SimError> {
        if !self.ready.is_empty() {
            return Ok(false);
        }
        if wake > self.config.max_time || self.run_deadline.is_some_and(|d| wake > d) {
            return Ok(false);
        }
        if !self.pending.is_empty() {
            // `ready` is empty, so the running process is the last runner
            // of this delta round: applying the batch here is exactly the
            // settle step that would otherwise follow its suspension.
            self.apply_pending();
            self.wake_on()?;
            self.total_deltas += 1;
            if !self.ready.is_empty() {
                // The delta woke somebody; the interval is observable.
                return Ok(false);
            }
        }
        let next_write = self.timed_writes.peek().map(|Reverse(w)| w.time);
        let next_sleep = self.sleepers.peek().map(|&Reverse((t, _, _))| t);
        let next_timeout = self.next_live_wait_timeout();
        let next_injection = self.injections.peek().map(|&Reverse((t, _, _))| t);
        if next_write.is_some_and(|t| t <= wake) {
            return Ok(false);
        }
        if next_sleep.is_some_and(|t| t <= wake) {
            return Ok(false);
        }
        if next_timeout.is_some_and(|t| t <= wake) {
            return Ok(false);
        }
        if next_injection.is_some_and(|t| t <= wake) {
            return Ok(false);
        }
        self.time = wake;
        self.time_steps += 1;
        Ok(true)
    }

    /// Fast path for a costed signal write: when the interval to `wake`
    /// is unobservable (same conditions as [`Self::try_fast_advance`]),
    /// the write is applied as the single delta of the new instant —
    /// exactly what draining it from the timed-write heap would have done
    /// — and the caller keeps running ahead of any process it woke.
    /// Declines by handing the value back for the slow path.
    fn try_fast_advance_write(
        &mut self,
        wake: u64,
        signal: usize,
        value: Value,
    ) -> Result<Option<Value>, SimError> {
        if !self.try_fast_advance(wake)? {
            return Ok(Some(value));
        }
        self.pending.push((signal, value, false));
        self.apply_pending();
        self.wake_on()?;
        self.total_deltas += 1;
        Ok(None)
    }

    fn store_pc(&mut self, pid: usize, pc: usize) {
        self.processes[pid].frames.last_mut().expect("frame").pc = pc;
    }

    /// Runs one process until it blocks, sleeps or finishes, then flushes
    /// the executed-instruction counters in one add each.
    fn run_process(&mut self, pid: usize) -> Result<(), SimError> {
        let mut steps = 0u64;
        let result = self.run_steps(pid, &mut steps);
        self.total_instrs += steps;
        self.processes[pid].instrs_executed += steps;
        result
    }

    /// The interpreter loop. The program counter and current code block
    /// are locals — the frame's `pc` is only written back at suspension
    /// points, keeping the per-instruction overhead at an index increment.
    fn run_steps(&mut self, pid: usize, steps: &mut u64) -> Result<(), SimError> {
        let (mut code_ref, mut pc) = {
            let frame = self.processes[pid]
                .frames
                .last()
                .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
            (frame.code, frame.pc)
        };
        let mut block = self.take_block(code_ref);
        // Zero-delay-loop budget: counts steps at the current instant and
        // resets whenever the fast path advances time, so long runs that
        // legitimately consume simulated time are never misdiagnosed.
        let mut instant_steps = 0u64;
        loop {
            *steps += 1;
            instant_steps += 1;
            if instant_steps > self.config.max_steps_per_activation {
                return Err(SimError::ZeroDelayLoop {
                    behavior: self.system.behaviors[self.processes[pid].behavior]
                        .name
                        .clone(),
                    time: self.time,
                });
            }
            // Borrowing out of the local `block` (not `self`) lets the
            // instruction reference live across `&mut self` calls.
            let instr = &block.instrs[pc];
            match instr {
                Instr::Assign { place, value, cost } => {
                    // Constant sources skip the evaluation context — no
                    // frame lookup, no register file.
                    let v = match value.const_value() {
                        Some(c) => c.clone(),
                        None => self.eval_in(pid, value)?,
                    };
                    self.write_cplace(pid, place, v)?;
                    pc += 1;
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost,
                } => {
                    // Constants were pre-coerced to the signal's type at
                    // compile time, so the pool value drives verbatim.
                    let v = match value.const_value() {
                        Some(c) => c.clone(),
                        None => {
                            let raw = self.eval_in(pid, value)?;
                            // `self.system` is a shared reference; copying
                            // it out lets the type borrow coexist with
                            // `&mut self`.
                            let system: &'a System = self.system;
                            coerce(raw, &system.signal(*signal).ty)
                        }
                    };
                    pc += 1;
                    if *cost == 0 {
                        self.pending.push((signal.index(), v, false));
                    } else {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        match self.try_fast_advance_write(wake, signal.index(), v)? {
                            None => instant_steps = 0,
                            Some(v) => {
                                self.schedule_write(wake, signal.index(), v, false);
                                self.store_pc(pid, pc);
                                self.sleep_until(pid, wake);
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfNot { cond, target } => {
                    if self.eval_bool_in(pid, cond)? {
                        pc += 1;
                    } else {
                        pc = *target;
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let bound = self.eval_i64_in(pid, to)?;
                    let start = self.eval_in(pid, from)?;
                    self.write_cplace(pid, var, start)?;
                    self.processes[pid]
                        .frames
                        .last_mut()
                        .expect("frame")
                        .loop_bounds
                        .push(bound);
                    pc += 1;
                }
                Instr::LoopTest { var, exit } => {
                    // Loop counters are whole int variables or locals in
                    // practice; read them without an evaluation context.
                    let fast = match var {
                        CPlace::Var(v) => match self.vars.get(*v as usize) {
                            Some(Value::Int { value, .. }) => Some(*value),
                            _ => None,
                        },
                        CPlace::Local(slot) => {
                            let frame = self.processes[pid].frames.last().expect("frame");
                            match frame.locals.get(*slot as usize) {
                                Some(Value::Int { value, .. }) => Some(*value),
                                _ => None,
                            }
                        }
                        CPlace::Path(_) => None,
                    };
                    let v = match fast {
                        Some(v) => v,
                        None => self
                            .read_cplace(pid, var)?
                            .as_i64()
                            .map_err(|e| SimError::eval(e.to_string()))?,
                    };
                    let frame = self.processes[pid].frames.last_mut().expect("frame");
                    let bound = *frame
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        frame.loop_bounds.pop();
                        pc = *exit;
                    } else {
                        pc += 1;
                    }
                }
                Instr::LoopIncr { var, body, exit } => {
                    // Fused back-edge: in-place increment for whole int
                    // counters (stored values are unmasked, so this matches
                    // rebuild+write), then test the bound and branch — one
                    // dispatch instead of increment + jump + guard.
                    let fast = match var {
                        CPlace::Var(v) => match self.vars.get_mut(*v as usize) {
                            Some(Value::Int { value, width }) if *width > 0 => {
                                *value += 1;
                                Some(*value)
                            }
                            _ => None,
                        },
                        CPlace::Local(slot) => {
                            let frame = self.processes[pid].frames.last_mut().expect("frame");
                            match frame.locals.get_mut(*slot as usize) {
                                Some(Value::Int { value, width }) if *width > 0 => {
                                    *value += 1;
                                    Some(*value)
                                }
                                _ => None,
                            }
                        }
                        CPlace::Path(_) => None,
                    };
                    let v = match fast {
                        Some(v) => v,
                        None => {
                            let (v, width) = {
                                let cur = self.read_cplace(pid, var)?;
                                let v = cur.as_i64().map_err(|e| SimError::eval(e.to_string()))?;
                                let width = match &cur {
                                    Value::Int { width, .. } => *width,
                                    other => other.ty().bit_width(),
                                };
                                (v, width)
                            };
                            self.write_cplace(pid, var, Value::int(v + 1, width.max(1)))?;
                            v + 1
                        }
                    };
                    let frame = self.processes[pid].frames.last_mut().expect("frame");
                    let bound = *frame
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        frame.loop_bounds.pop();
                        pc = *exit;
                    } else {
                        pc = *body;
                    }
                }
                Instr::Wait(cond) => {
                    pc += 1;
                    match cond {
                        WaitSpec::ForCycles(n) => {
                            if *n > 0 {
                                let wake = self.time + n;
                                if self.try_fast_advance(wake)? {
                                    instant_steps = 0;
                                } else {
                                    self.store_pc(pid, pc);
                                    self.sleep_until(pid, wake);
                                    self.put_block(code_ref, block);
                                    return Ok(());
                                }
                            }
                        }
                        WaitSpec::OnSignals(signals) => {
                            self.store_pc(pid, pc);
                            self.register_wait(pid, WaitKind::Signals, signals);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                        WaitSpec::Until(cond) => {
                            let sat = self.eval_bool_in(pid, &cond.code)?;
                            if !sat {
                                self.store_pc(pid, pc);
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(Arc::clone(cond)),
                                    &cond.sensitivity,
                                );
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIs { signal, value } => {
                            if self.signals[signal.index()] != *value {
                                self.store_pc(pid, pc);
                                self.register_wait_one(
                                    pid,
                                    WaitKind::SignalIs(signal.index(), value.clone()),
                                    signal.index(),
                                );
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilTimeout { cond, cycles } => {
                            let sat = self.eval_bool_in(pid, &cond.code)?;
                            if !sat {
                                let deadline = self.time + cycles;
                                self.store_pc(pid, pc);
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(Arc::clone(cond)),
                                    &cond.sensitivity,
                                );
                                self.arm_watchdog(pid, deadline);
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIsTimeout {
                            signal,
                            value,
                            cycles,
                        } => {
                            if self.signals[signal.index()] != *value {
                                let deadline = self.time + cycles;
                                self.store_pc(pid, pc);
                                self.register_wait_one(
                                    pid,
                                    WaitKind::SignalIs(signal.index(), value.clone()),
                                    signal.index(),
                                );
                                self.arm_watchdog(pid, deadline);
                                self.put_block(code_ref, block);
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Call { procedure, args } => {
                    let procedure = *procedure;
                    // The return address is stored before the callee frame
                    // is pushed; argument evaluation still sees the caller
                    // frame on top.
                    self.store_pc(pid, pc + 1);
                    self.enter_procedure(pid, procedure, args)?;
                    // Put-then-take keeps the slot discipline sound even
                    // for a direct self-call.
                    self.put_block(code_ref, block);
                    code_ref = CodeRef::Procedure(procedure);
                    block = self.take_block(code_ref);
                    pc = 0;
                }
                Instr::Ret => {
                    if self.leave_frame(pid)? {
                        self.put_block(code_ref, block);
                        return Ok(());
                    }
                    let (new_code, new_pc) = {
                        let frame = self.processes[pid].frames.last().expect("frame");
                        (frame.code, frame.pc)
                    };
                    if new_code != code_ref {
                        self.put_block(code_ref, block);
                        block = self.take_block(new_code);
                        code_ref = new_code;
                    }
                    pc = new_pc;
                }
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost,
                } => {
                    let data_v = self.eval_in(pid, data)?;
                    let addr_v = match addr {
                        Some(a) => Some(self.eval_i64_in(pid, a)?),
                        None => None,
                    };
                    self.channel_write(*channel, addr_v, data_v)?;
                    pc += 1;
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost,
                } => {
                    let addr_v = match addr {
                        Some(a) => Some(self.eval_i64_in(pid, a)?),
                        None => None,
                    };
                    let v = self.channel_read(*channel, addr_v)?;
                    self.write_cplace(pid, target, v)?;
                    pc += 1;
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        let wake = self.time + u64::from(*cost);
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
                Instr::Assert { cond, note } => {
                    let ok = self.eval_bool_in(pid, cond)?;
                    if !ok {
                        return Err(SimError::AssertionFailed {
                            behavior: self.system.behaviors[self.processes[pid].behavior]
                                .name
                                .clone(),
                            note: note.clone(),
                            time: self.time,
                        });
                    }
                    self.assertions_checked += 1;
                    pc += 1;
                }
                Instr::Consume { cycles } => {
                    pc += 1;
                    if *cycles > 0 {
                        self.processes[pid].active_cycles += *cycles;
                        let wake = self.time + *cycles;
                        if self.try_fast_advance(wake)? {
                            instant_steps = 0;
                        } else {
                            self.store_pc(pid, pc);
                            self.sleep_until(pid, wake);
                            self.put_block(code_ref, block);
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    fn enter_procedure(
        &mut self,
        pid: usize,
        procedure: usize,
        args: &[CArg],
    ) -> Result<(), SimError> {
        let system: &'a System = self.system;
        let proc = &system.procedures[procedure];
        let caller_frame_abs = self.processes[pid].frames.len() - 1;
        let mut locals = Vec::with_capacity(proc.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&proc.params).enumerate() {
            match (arg, param.mode) {
                (CArg::In(e), ParamMode::In) => {
                    locals.push(coerce(self.eval_in(pid, e)?, &param.ty));
                }
                (CArg::Out(place), ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    copyback.push({
                        let (rp, ty) = self.resolve_cplace(pid, place, caller_frame_abs)?;
                        (i, rp, ty)
                    });
                }
                (CArg::InOut(place), ParamMode::InOut) => {
                    locals.push(coerce(self.read_cplace(pid, place)?, &param.ty));
                    copyback.push({
                        let (rp, ty) = self.resolve_cplace(pid, place, caller_frame_abs)?;
                        (i, rp, ty)
                    });
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        proc.name
                    )))
                }
            }
        }
        for l in &proc.locals {
            locals.push(Value::default_of(&l.ty));
        }
        let mut frame = Frame::new(CodeRef::Procedure(procedure), locals);
        frame.copyback = copyback;
        self.processes[pid].frames.push(frame);
        Ok(())
    }

    /// Pops the current frame. Returns `true` when the process stopped
    /// running (finished) and the caller should stop stepping it.
    fn leave_frame(&mut self, pid: usize) -> Result<bool, SimError> {
        let frame = self.processes[pid].frames.pop().expect("frame");
        for (slot, rp, ty) in &frame.copyback {
            let v = coerce(frame.locals[*slot].clone(), ty);
            self.write_resolved(pid, rp, v)?;
        }
        if self.processes[pid].frames.is_empty() {
            let bidx = self.processes[pid].behavior;
            if self.system.behaviors[bidx].repeats {
                self.processes[pid].iterations += 1;
                self.processes[pid]
                    .frames
                    .push(Frame::new(CodeRef::Behavior(bidx), Vec::new()));
                Ok(false)
            } else {
                self.processes[pid].status = Status::Finished;
                self.processes[pid].finish_time = Some(self.time);
                Ok(true)
            }
        } else {
            Ok(false)
        }
    }

    /// Ideal-channel write: store directly into the remote variable.
    fn channel_write(
        &mut self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
    ) -> Result<(), SimError> {
        // Borrow the type through the `'a` system reference instead of
        // cloning it (array types heap-allocate their element box).
        let system: &'a System = self.system;
        let ch = system.channel(channel);
        let var_idx = ch.variable.index();
        let ty = &system.variables[var_idx].ty;
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match ty {
                    Ty::Array { elem, .. } => &**elem,
                    other => other,
                };
                match &mut self.vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => self.vars[var_idx] = coerce(data, ty),
        }
        Ok(())
    }

    /// Ideal-channel read: fetch directly from the remote variable.
    fn channel_read(
        &self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &self.vars[var_idx] {
                    Value::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::eval(format!("channel address {i} out of range"))),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(self.vars[var_idx].clone()),
        }
    }

    /// Builds the per-process wait diagnosis, or `None` when nothing is
    /// suspended on a wait.
    fn diagnosis(&self) -> Option<DeadlockDiagnosis> {
        let blocked_pids: Vec<usize> = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.status, Status::Waiting(_)))
            .map(|(i, _)| i)
            .collect();
        if blocked_pids.is_empty() {
            return None;
        }
        let blocked: Vec<BlockedWait> = blocked_pids
            .iter()
            .map(|&pid| {
                let p = &self.processes[pid];
                let wait = match &p.status {
                    Status::Waiting(WaitKind::Signals) => {
                        let names: Vec<&str> = p
                            .registered
                            .iter()
                            .map(|&s| self.system.signals[s].name.as_str())
                            .collect();
                        format!("wait on {}", names.join(", "))
                    }
                    Status::Waiting(WaitKind::Until(cond)) => {
                        format!("wait until {}", render_expr(self.system, &cond.display))
                    }
                    Status::Waiting(WaitKind::SignalIs(sig, v)) => {
                        format!("wait until {} = {v}", self.system.signals[*sig].name)
                    }
                    _ => unreachable!("filtered to waiting processes"),
                };
                let observed = p
                    .registered
                    .iter()
                    .map(|&s| {
                        (
                            self.system.signals[s].name.clone(),
                            self.signals[s].to_string(),
                        )
                    })
                    .collect();
                BlockedWait {
                    behavior: self.system.behaviors[p.behavior].name.clone(),
                    wait,
                    observed,
                }
            })
            .collect();
        // Wait-for edges: blocked A -> blocked B when B's code can write a
        // signal A is sensitive to. With every potential writer of A's
        // wakeup signals itself blocked, the cycle is unbreakable.
        let writes: Vec<Vec<bool>> = blocked_pids
            .iter()
            .map(|&pid| self.written_signals(self.processes[pid].behavior))
            .collect();
        let edges: Vec<Vec<usize>> = blocked_pids
            .iter()
            .enumerate()
            .map(|(i, &pid)| {
                let sens = &self.processes[pid].registered;
                (0..blocked_pids.len())
                    .filter(|&j| j != i && sens.iter().any(|&s| writes[j][s]))
                    .collect()
            })
            .collect();
        let cycles = find_cycles(blocked_pids.len(), &edges)
            .into_iter()
            .map(|cycle| {
                cycle
                    .into_iter()
                    .map(|i| {
                        self.system.behaviors[self.processes[blocked_pids[i]].behavior]
                            .name
                            .clone()
                    })
                    .collect()
            })
            .collect();
        Some(DeadlockDiagnosis {
            time: self.time,
            blocked,
            cycles,
        })
    }

    /// Signals a behavior's code can drive, including through called
    /// procedures (transitively). Indexed by signal index.
    fn written_signals(&self, behavior: usize) -> Vec<bool> {
        let mut out = vec![false; self.signals.len()];
        let mut visited = vec![false; self.procedure_code.len()];
        let block = self.behavior_code[behavior]
            .as_ref()
            .expect("code block taken");
        let mut stack: Vec<&[Instr]> = vec![&block.instrs];
        while let Some(instrs) = stack.pop() {
            for instr in instrs {
                match instr {
                    Instr::SignalWrite { signal, .. } => out[signal.index()] = true,
                    Instr::Call { procedure, .. } if !visited[*procedure] => {
                        visited[*procedure] = true;
                        let proc_block = self.procedure_code[*procedure]
                            .as_ref()
                            .expect("code block taken");
                        stack.push(&proc_block.instrs);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    fn into_report(self) -> SimReport {
        let behaviors = self
            .processes
            .iter()
            .map(|p| BehaviorOutcome {
                name: self.system.behaviors[p.behavior].name.clone(),
                finish_time: p.finish_time,
                iterations: p.iterations,
                blocked: matches!(p.status, Status::Waiting(_)),
                repeats: self.system.behaviors[p.behavior].repeats,
                active_cycles: p.active_cycles,
                instrs_executed: p.instrs_executed,
            })
            .collect();
        let variables = self
            .system
            .variables
            .iter()
            .zip(&self.vars)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signals = self
            .system
            .signals
            .iter()
            .zip(&self.signals)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signal_events = self
            .system
            .signals
            .iter()
            .zip(&self.signal_events)
            .map(|(d, &n)| (d.name.clone(), n))
            .collect();
        let blocked_at_exit = self
            .processes
            .iter()
            .filter(|p| {
                !self.system.behaviors[p.behavior].repeats && !matches!(p.status, Status::Finished)
            })
            .count();
        SimReport {
            time: self.time,
            behaviors,
            variables,
            signals,
            signal_events,
            injected_faults: self.injected,
            blocked_at_exit,
            trace: self.trace,
            total_deltas: self.total_deltas,
            total_instrs: self.total_instrs,
            assertions_checked: self.assertions_checked,
            heap_peak: self.heap_peak,
            time_steps: self.time_steps,
        }
    }
}

/// The error for a compiled place whose type could not be resolved at
/// compile time (today: a local referenced from a behavior body).
pub(crate) fn untyped_place_error(root: &CRoot) -> SimError {
    match root {
        CRoot::Local(_) => SimError::eval("local slot referenced outside a procedure".to_string()),
        CRoot::Var(_) => SimError::eval("place cannot be typed in this scope".to_string()),
    }
}

/// Renders a wait condition compactly for diagnosis messages: signal
/// names, literal values and operators; structural forms fall back to a
/// placeholder rather than a full printout.
pub(crate) fn render_expr(system: &System, expr: &Expr) -> String {
    match expr {
        Expr::Signal(s) => system.signal(*s).name.clone(),
        Expr::Const(v) => v.to_string(),
        Expr::Unary { op, arg } => format!("{op} {}", render_expr(system, arg)),
        Expr::Binary { op, lhs, rhs } => format!(
            "{} {op} {}",
            render_expr(system, lhs),
            render_expr(system, rhs)
        ),
        _ => "<expr>".to_string(),
    }
}

/// Writes `value` through a resolved navigation path.
pub(crate) fn write_steps(root: &mut Value, steps: &[Step], value: Value) -> Result<(), SimError> {
    match steps.split_first() {
        None => {
            *root = value;
            Ok(())
        }
        Some((Step::Elem(i), rest)) => match root {
            Value::Array(items) => {
                let slot = items
                    .get_mut(*i)
                    .ok_or_else(|| SimError::eval(format!("array index {i} out of range")))?;
                write_steps(slot, rest, value)
            }
            other => Err(SimError::eval(format!("indexing non-array value {other}"))),
        },
        Some((Step::Slice(hi, lo), rest)) => {
            if !rest.is_empty() {
                return Err(SimError::eval(
                    "slice must be the last projection of a write target".to_string(),
                ));
            }
            let ty = root.ty();
            let mut bits = root.to_bits();
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            bits.write_slice(*hi, *lo, &value.to_bits().resized(hi - lo + 1));
            *root = Value::from_bits(&ty, &bits);
            Ok(())
        }
    }
}

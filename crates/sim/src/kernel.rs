//! The discrete-event simulation kernel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use ifsyn_spec::{Arg, BitVec, Expr, ParamMode, Place, System, Ty, Value};

use crate::config::SimConfig;
use crate::diagnose::{find_cycles, BlockedWait, DeadlockDiagnosis};
use crate::error::SimError;
use crate::eval::{coerce, eval, place_ty, read_place, EvalCtx};
use crate::fault::{FaultKind, InjectedFault};
use crate::process::{CodeRef, Frame, Process, ResolvedPlace, Root, Status, Step, WaitKind};
use crate::program::{Instr, Program, WaitSpec};
use crate::report::{BehaviorOutcome, SimReport, TraceEvent};

/// Upper bound on recorded [`InjectedFault`] entries, so a stuck line on
/// a long run cannot grow the report without bound.
const MAX_RECORDED_INJECTIONS: usize = 10_000;

/// A scheduled future signal write.
///
/// Ordered by `(time, seq)` so the event heap pops writes in schedule
/// order within an instant, reproducing the FIFO semantics of the old
/// per-time bucket lists.
#[derive(Debug)]
struct TimedWrite {
    time: u64,
    seq: u64,
    signal: usize,
    value: Value,
    /// Forced writes (fault injections and already-delayed writes) bypass
    /// the fault filter when they take effect.
    forced: bool,
}

impl PartialEq for TimedWrite {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for TimedWrite {}

impl PartialOrd for TimedWrite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimedWrite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A fault from the configured plan with its signal resolved to an index.
#[derive(Debug)]
struct ResolvedFault {
    signal: usize,
    kind: FaultKind,
}

/// What the fault filter decides about a write in the update phase.
enum Disposition {
    Keep,
    Drop(&'static str),
    Delay(u64),
}

/// A deterministic discrete-event simulator over a [`System`].
///
/// Semantics (see the crate docs for the rationale):
///
/// * time advances in integer clock cycles; instructions carry cycle
///   costs; a zero-cost signal write becomes visible at the next *delta*
///   (same time instant), a cost-`c` write becomes visible at `t + c`;
/// * an event is a signal *value change*;
/// * `wait until` is level-sensitive: if the condition already holds the
///   process continues without suspending.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_sim::Simulator;
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("handshake");
/// let m = sys.add_module("chip");
/// let req = sys.add_signal("REQ", Ty::Bit);
/// let ack = sys.add_signal("ACK", Ty::Bit);
/// let a = sys.add_behavior("producer", m);
/// sys.behavior_mut(a).body = vec![
///     drive_cost(req, bit_const(true), 1),
///     wait_until(eq(signal(ack), bit_const(true))),
/// ];
/// let b = sys.add_behavior("consumer", m);
/// sys.behavior_mut(b).body = vec![
///     wait_until(eq(signal(req), bit_const(true))),
///     drive_cost(ack, bit_const(true), 1),
/// ];
///
/// let report = Simulator::new(&sys)?.run_to_quiescence()?;
/// assert_eq!(report.finish_time(a), Some(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    system: &'a System,
    config: SimConfig,
    /// Shared handles to each code block's instructions, so the hot loop
    /// can hold an instruction reference across `&mut self` calls
    /// without deep-cloning expressions. `Arc` (not `Rc`) keeps the
    /// simulator `Send` for the parallel sweep driver.
    behavior_code: Vec<Arc<Vec<Instr>>>,
    procedure_code: Vec<Arc<Vec<Instr>>>,
    time: u64,
    signals: Vec<Value>,
    vars: Vec<Value>,
    processes: Vec<Process>,
    ready: VecDeque<usize>,
    /// Zero-delay signal writes awaiting the next delta; the flag marks
    /// forced writes that bypass the fault filter.
    pending: Vec<(usize, Value, bool)>,
    /// Future signal writes: a min-heap on `(time, seq)`.
    timed_writes: BinaryHeap<Reverse<TimedWrite>>,
    /// Sleeping processes: a min-heap on `(time, seq, pid)`. Entries are
    /// lazily invalidated — a pop whose process is no longer `Sleeping`
    /// is skipped rather than eagerly removed.
    sleepers: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Watchdog deadlines of timeout waits: a min-heap on
    /// `(time, seq, pid, wait_gen)`. An entry is stale — skipped, never
    /// advancing time — unless its process is still `Waiting` with the
    /// same `wait_gen` it suspended with.
    wait_timeouts: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    /// The configured fault plan, signal names resolved to indices.
    faults: Vec<ResolvedFault>,
    /// Per signal: indices into `faults` (empty without a plan).
    signal_faults: Vec<Vec<usize>>,
    /// Scheduled one-shot injections (stuck-value forcings, bit flips):
    /// a min-heap on `(time, seq, fault index)`.
    injections: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Faults actually applied, for the report (bounded).
    injected: Vec<InjectedFault>,
    /// Fast-path flag: the plan was non-empty.
    has_faults: bool,
    /// Monotonic tiebreaker giving heap entries FIFO order per instant.
    event_seq: u64,
    /// Per signal: processes registered as waiters (swap-remove lists;
    /// order is irrelevant because wake order flows from `ready`).
    waiters: Vec<Vec<usize>>,
    /// Scratch: per-signal index of the last pending write in the batch
    /// being applied (`usize::MAX` = none); reset on use.
    last_write: Vec<usize>,
    /// Scratch: signals changed in the current delta.
    changed: Vec<usize>,
    /// Scratch: waiter snapshot while waking (reused across deltas).
    wake_scratch: Vec<usize>,
    signal_events: Vec<u64>,
    trace: Vec<TraceEvent>,
    total_deltas: u64,
    total_instrs: u64,
    assertions_checked: u64,
    /// Peak combined size of the two scheduler heaps.
    heap_peak: usize,
    /// Distinct time instants the scheduler advanced through.
    time_steps: u64,
}

impl<'a> Simulator<'a> {
    /// Compiles `system` for simulation with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn new(system: &'a System) -> Result<Self, SimError> {
        Self::with_config(system, SimConfig::new())
    }

    /// Compiles `system` with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn with_config(system: &'a System, config: SimConfig) -> Result<Self, SimError> {
        system.check().map_err(|e| SimError::InvalidSystem {
            message: e.to_string(),
        })?;
        let program = Program::compile(system, &config.cost_model);
        let behavior_code: Vec<Arc<Vec<Instr>>> = program
            .behaviors
            .into_iter()
            .map(|c| Arc::new(c.instrs))
            .collect();
        let procedure_code: Vec<Arc<Vec<Instr>>> = program
            .procedures
            .into_iter()
            .map(|c| Arc::new(c.instrs))
            .collect();
        let signals = system
            .signals
            .iter()
            .map(|s| s.initial_value())
            .collect::<Vec<_>>();
        let vars = system
            .variables
            .iter()
            .map(|v| v.initial_value())
            .collect::<Vec<_>>();
        let processes: Vec<Process> = (0..system.behaviors.len()).map(Process::new).collect();
        let ready = (0..processes.len()).collect();
        let n_signals = signals.len();
        // Resolve fault-plan signal names once; unknown names are a
        // configuration error, not something to discover mid-run.
        let mut faults = Vec::with_capacity(config.fault_plan.faults.len());
        let mut signal_faults = vec![Vec::new(); n_signals];
        let mut injections = BinaryHeap::new();
        for f in &config.fault_plan.faults {
            let idx = system
                .signals
                .iter()
                .position(|s| s.name == f.signal)
                .ok_or_else(|| SimError::InvalidSystem {
                    message: format!("fault plan names unknown signal `{}`", f.signal),
                })?;
            let fi = faults.len();
            match f.kind {
                FaultKind::StuckAt { from, .. } => {
                    injections.push(Reverse((from, fi as u64, fi)));
                }
                FaultKind::FlipBit { at, .. } => {
                    injections.push(Reverse((at, fi as u64, fi)));
                }
                FaultKind::DelayWrites { .. } | FaultKind::DropWrites { .. } => {}
            }
            signal_faults[idx].push(fi);
            faults.push(ResolvedFault {
                signal: idx,
                kind: f.kind.clone(),
            });
        }
        let has_faults = !faults.is_empty();
        Ok(Self {
            system,
            config,
            behavior_code,
            procedure_code,
            time: 0,
            signals,
            vars,
            processes,
            ready,
            pending: Vec::new(),
            timed_writes: BinaryHeap::new(),
            sleepers: BinaryHeap::new(),
            wait_timeouts: BinaryHeap::new(),
            faults,
            signal_faults,
            injections,
            injected: Vec::new(),
            has_faults,
            event_seq: 0,
            waiters: vec![Vec::new(); n_signals],
            last_write: vec![usize::MAX; n_signals],
            changed: Vec::new(),
            wake_scratch: Vec::new(),
            signal_events: vec![0; n_signals],
            trace: Vec::new(),
            total_deltas: 0,
            total_instrs: 0,
            assertions_checked: 0,
            heap_peak: 0,
            time_steps: 0,
        })
    }

    /// Runs until no further event can occur, then reports.
    ///
    /// Quiescence means: every process is finished, or suspended on a wait
    /// that nothing pending can satisfy. Server processes idling on their
    /// bus is the expected quiescent state of a refined system.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] — simulated time passed the configured cap.
    /// * [`SimError::DeltaOverflow`] / [`SimError::ZeroDelayLoop`] —
    ///   zero-time oscillation.
    /// * [`SimError::Eval`] — a runtime type or bounds violation.
    pub fn run_to_quiescence(mut self) -> Result<SimReport, SimError> {
        self.run_events(None)?;
        if self.config.fail_on_deadlock {
            let stuck = self.processes.iter().any(|p| {
                matches!(p.status, Status::Waiting(_)) && !self.system.behaviors[p.behavior].repeats
            });
            if stuck {
                let diagnosis = self.diagnosis().expect("a blocked process exists");
                return Err(SimError::Deadlock {
                    diagnosis: Box::new(diagnosis),
                });
            }
        }
        Ok(self.into_report())
    }

    /// Runs until time `deadline` (inclusive) or quiescence, whichever
    /// comes first, then reports.
    ///
    /// Unlike [`Simulator::run_to_quiescence`] this terminates cleanly
    /// for free-running systems (periodic producers, servers fed by
    /// repeating clients) that never become quiescent.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_to_quiescence`], except
    /// that reaching the deadline is success, not a timeout.
    pub fn run_until(mut self, deadline: u64) -> Result<SimReport, SimError> {
        self.run_events(Some(deadline))?;
        Ok(self.into_report())
    }

    /// The main event loop; stops at quiescence, or past `deadline`.
    fn run_events(&mut self, deadline: Option<u64>) -> Result<(), SimError> {
        loop {
            self.settle_instant()?;
            let next_write = self.timed_writes.peek().map(|Reverse(w)| w.time);
            let next_sleep = self.sleepers.peek().map(|&Reverse((t, _, _))| t);
            // Stale watchdog entries must be pruned *before* choosing the
            // next instant — a satisfied wait's leftover deadline must not
            // drag simulated time forward.
            let next_timeout = self.next_live_wait_timeout();
            let next_injection = self.injections.peek().map(|&Reverse((t, _, _))| t);
            let next = [next_write, next_sleep, next_timeout, next_injection]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else { break };
            if let Some(deadline) = deadline {
                if next > deadline {
                    self.time = deadline;
                    break;
                }
            }
            if next > self.config.max_time {
                return Err(SimError::Timeout {
                    max_time: self.config.max_time,
                    diagnosis: self.diagnosis().map(Box::new),
                });
            }
            self.time = next;
            self.time_steps += 1;
            while self
                .timed_writes
                .peek()
                .is_some_and(|Reverse(w)| w.time == next)
            {
                let Reverse(w) = self.timed_writes.pop().expect("peeked");
                self.pending.push((w.signal, w.value, w.forced));
            }
            while self
                .sleepers
                .peek()
                .is_some_and(|&Reverse((t, _, _))| t == next)
            {
                let Reverse((_, _, pid)) = self.sleepers.pop().expect("peeked");
                // Lazy invalidation: skip entries whose process moved on.
                if matches!(self.processes[pid].status, Status::Sleeping) {
                    self.processes[pid].status = Status::Ready;
                    self.ready.push_back(pid);
                }
            }
            while self
                .wait_timeouts
                .peek()
                .is_some_and(|&Reverse((t, _, _, _))| t == next)
            {
                let Reverse((_, _, pid, gen)) = self.wait_timeouts.pop().expect("peeked");
                // Same lazy invalidation as sleepers: only a process still
                // suspended on the *same* wait expires.
                let p = &self.processes[pid];
                if matches!(p.status, Status::Waiting(_)) && p.wait_gen == gen {
                    self.make_ready(pid);
                }
            }
            while self
                .injections
                .peek()
                .is_some_and(|&Reverse((t, _, _))| t == next)
            {
                let Reverse((_, _, fi)) = self.injections.pop().expect("peeked");
                self.apply_injection(fi);
            }
        }
        Ok(())
    }

    /// Earliest watchdog deadline still attached to a live suspension,
    /// popping stale entries on the way.
    fn next_live_wait_timeout(&mut self) -> Option<u64> {
        while let Some(&Reverse((t, _, pid, gen))) = self.wait_timeouts.peek() {
            let p = &self.processes[pid];
            if matches!(p.status, Status::Waiting(_)) && p.wait_gen == gen {
                return Some(t);
            }
            self.wait_timeouts.pop();
        }
        None
    }

    /// Applies a scheduled one-shot injection (stuck-value forcing or bit
    /// flip) as a forced zero-delay write, bypassing the fault filter.
    fn apply_injection(&mut self, fi: usize) {
        let sig = self.faults[fi].signal;
        match &self.faults[fi].kind {
            FaultKind::StuckAt { value, .. } => {
                let system: &'a System = self.system;
                let v = coerce(value.clone(), &system.signals[sig].ty);
                self.pending.push((sig, v, true));
                self.record_injection(sig, "forced stuck value".to_string());
            }
            FaultKind::FlipBit { bit, .. } => {
                let bit = *bit;
                let cur = &self.signals[sig];
                let ty = cur.ty();
                let mut bits = cur.to_bits();
                if bit < bits.width() {
                    let inverted = BitVec::from_u64(u64::from(!bits.bit(bit)), 1);
                    bits.write_slice(bit, bit, &inverted);
                    let v = Value::from_bits(&ty, &bits);
                    self.pending.push((sig, v, true));
                    self.record_injection(sig, format!("bit {bit} flipped"));
                }
            }
            FaultKind::DelayWrites { .. } | FaultKind::DropWrites { .. } => {}
        }
    }

    /// Records an applied fault for the report, up to the cap.
    fn record_injection(&mut self, sig: usize, effect: String) {
        if self.injected.len() < MAX_RECORDED_INJECTIONS {
            self.injected.push(InjectedFault {
                time: self.time,
                signal: self.system.signals[sig].name.clone(),
                effect,
            });
        }
    }

    /// Decides what happens to an ordinary write to `sig` landing now.
    fn write_disposition(&self, sig: usize) -> Disposition {
        for &fi in &self.signal_faults[sig] {
            let kind = &self.faults[fi].kind;
            if !kind.window_contains(self.time) {
                continue;
            }
            match kind {
                FaultKind::StuckAt { .. } => {
                    return Disposition::Drop("write dropped (stuck line)")
                }
                FaultKind::DropWrites { .. } => return Disposition::Drop("write dropped"),
                FaultKind::DelayWrites { cycles, .. } if *cycles > 0 => {
                    return Disposition::Delay(*cycles)
                }
                _ => {}
            }
        }
        Disposition::Keep
    }

    /// Executes all delta cycles of the current time instant.
    fn settle_instant(&mut self) -> Result<(), SimError> {
        let mut deltas = 0u32;
        loop {
            if !self.pending.is_empty() {
                self.apply_pending();
                self.wake_on()?;
                deltas += 1;
                self.total_deltas += 1;
                if deltas > self.config.max_deltas_per_instant {
                    return Err(SimError::DeltaOverflow { time: self.time });
                }
            }
            if self.ready.is_empty() {
                if self.pending.is_empty() {
                    return Ok(());
                }
                continue;
            }
            while let Some(pid) = self.ready.pop_front() {
                if matches!(self.processes[pid].status, Status::Ready) {
                    self.run_process(pid)?;
                }
            }
        }
    }

    /// Applies zero-delay writes, recording changed signals in the
    /// `changed` scratch buffer.
    ///
    /// Multiple writes to one signal within the same delta collapse to the
    /// last one (VHDL projected-waveform semantics), producing at most one
    /// event per signal per delta. Runs allocation-free: the pending batch
    /// and all bookkeeping live in reusable buffers.
    fn apply_pending(&mut self) {
        self.changed.clear();
        if self.pending.len() == 1 {
            // Single write: no collision bookkeeping needed.
            let (sig, value, forced) = self.pending.pop().expect("len checked");
            self.apply_one(sig, value, forced);
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        // Pass 1: last write per signal wins.
        for (i, (sig, _, _)) in pending.iter().enumerate() {
            self.last_write[*sig] = i;
        }
        // Pass 2: apply winners in first-write order, resetting scratch.
        for (i, entry) in pending.iter_mut().enumerate() {
            let sig = entry.0;
            if self.last_write[sig] != i {
                continue;
            }
            self.last_write[sig] = usize::MAX;
            let value = std::mem::replace(&mut entry.1, Value::Bit(false));
            let forced = entry.2;
            self.apply_one(sig, value, forced);
        }
        pending.clear();
        // Processes may have queued new writes only after this returns,
        // so the swap back cannot clobber anything.
        self.pending = pending;
    }

    /// Applies one winning write (first through the fault filter, unless
    /// forced), recording the event if it changed.
    fn apply_one(&mut self, sig: usize, value: Value, forced: bool) {
        if self.has_faults && !forced {
            match self.write_disposition(sig) {
                Disposition::Keep => {}
                Disposition::Drop(effect) => {
                    self.record_injection(sig, effect.to_string());
                    return;
                }
                Disposition::Delay(cycles) => {
                    self.record_injection(sig, format!("write delayed {cycles} cycles"));
                    // Re-queued as forced so it cannot be delayed again.
                    self.schedule_write(self.time + cycles, sig, value, true);
                    return;
                }
            }
        }
        if self.signals[sig] != value {
            self.signals[sig] = value;
            self.signal_events[sig] += 1;
            self.changed.push(sig);
            if self.config.trace && self.trace.len() < self.config.max_trace_events {
                self.trace.push(TraceEvent {
                    time: self.time,
                    signal: ifsyn_spec::SignalId::new(sig as u32),
                    value: self.signals[sig].clone(),
                });
            }
        }
    }

    /// Wakes processes sensitive to the signals in the `changed` buffer.
    fn wake_on(&mut self) -> Result<(), SimError> {
        for ci in 0..self.changed.len() {
            let sig = self.changed[ci];
            // Snapshot the waiter list into reusable scratch: make_ready
            // mutates `waiters[sig]` while we iterate.
            let mut candidates = std::mem::take(&mut self.wake_scratch);
            candidates.clear();
            candidates.extend_from_slice(&self.waiters[sig]);
            for &pid in &candidates {
                let sat = match &self.processes[pid].status {
                    Status::Waiting(WaitKind::Signals) => true,
                    Status::Waiting(WaitKind::Until(expr)) => self.eval_bool_in(pid, expr)?,
                    Status::Waiting(WaitKind::SignalIs(idx, v)) => self.signals[*idx] == *v,
                    _ => false,
                };
                if sat {
                    self.make_ready(pid);
                }
            }
            self.wake_scratch = candidates;
        }
        Ok(())
    }

    fn make_ready(&mut self, pid: usize) {
        let mut registered = std::mem::take(&mut self.processes[pid].registered);
        for &sig in &registered {
            // Waiter lists are unordered: swap-remove instead of retain.
            if let Some(pos) = self.waiters[sig].iter().position(|&p| p == pid) {
                self.waiters[sig].swap_remove(pos);
            }
        }
        registered.clear();
        // Hand the emptied buffer back so its capacity is reused.
        self.processes[pid].registered = registered;
        self.processes[pid].status = Status::Ready;
        self.ready.push_back(pid);
    }

    fn sleep_until(&mut self, pid: usize, until: u64) {
        self.processes[pid].status = Status::Sleeping;
        self.sleepers.push(Reverse((until, self.event_seq, pid)));
        self.event_seq += 1;
        self.note_heap_size();
    }

    fn schedule_write(&mut self, time: u64, signal: usize, value: Value, forced: bool) {
        self.timed_writes.push(Reverse(TimedWrite {
            time,
            seq: self.event_seq,
            signal,
            value,
            forced,
        }));
        self.event_seq += 1;
        self.note_heap_size();
    }

    fn note_heap_size(&mut self) {
        let size = self.timed_writes.len() + self.sleepers.len();
        if size > self.heap_peak {
            self.heap_peak = size;
        }
    }

    fn register_wait(&mut self, pid: usize, kind: WaitKind, sensitivity: &[ifsyn_spec::SignalId]) {
        // A fresh generation invalidates any watchdog entry left over from
        // an earlier suspension of this process.
        self.processes[pid].wait_gen += 1;
        let mut registered = std::mem::take(&mut self.processes[pid].registered);
        registered.clear();
        for s in sensitivity {
            let idx = s.index();
            if !self.waiters[idx].contains(&pid) {
                self.waiters[idx].push(pid);
            }
            registered.push(idx);
        }
        self.processes[pid].registered = registered;
        self.processes[pid].status = Status::Waiting(kind);
    }

    /// Arms a watchdog for the suspension the process just entered (must
    /// be called directly after `register_wait`).
    fn arm_watchdog(&mut self, pid: usize, deadline: u64) {
        let gen = self.processes[pid].wait_gen;
        self.wait_timeouts
            .push(Reverse((deadline, self.event_seq, pid, gen)));
        self.event_seq += 1;
    }

    fn ctx_for(&self, pid: usize) -> Result<EvalCtx<'_>, SimError> {
        let frame = self.processes[pid]
            .frames
            .last()
            .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
        Ok(EvalCtx {
            vars: &self.vars,
            signals: &self.signals,
            frame,
        })
    }

    /// Evaluates an expression in a process's current scope, cloning the
    /// result only when it was a borrowed load.
    fn eval_in(&self, pid: usize, expr: &Expr) -> Result<Value, SimError> {
        Ok(eval(&self.ctx_for(pid)?, expr)?.into_owned())
    }

    /// Evaluates an expression to a boolean without materializing an
    /// owned value — the wake/branch/assert hot path.
    fn eval_bool_in(&self, pid: usize, expr: &Expr) -> Result<bool, SimError> {
        eval(&self.ctx_for(pid)?, expr)?
            .as_bool()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    /// Evaluates an expression to an integer without materializing an
    /// owned value (loop bounds, addresses, slice offsets).
    fn eval_i64_in(&self, pid: usize, expr: &Expr) -> Result<i64, SimError> {
        eval(&self.ctx_for(pid)?, expr)?
            .as_i64()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    fn read_place_in(&self, pid: usize, place: &Place) -> Result<Value, SimError> {
        Ok(read_place(&self.ctx_for(pid)?, place)?.into_owned())
    }

    /// Reads a place as an integer without cloning the stored value.
    fn read_place_i64_in(&self, pid: usize, place: &Place) -> Result<i64, SimError> {
        read_place(&self.ctx_for(pid)?, place)?
            .as_i64()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    /// Resolves a place to a concrete path; index expressions evaluate in
    /// the process's current (top) frame.
    fn resolve_place(
        &self,
        pid: usize,
        place: &Place,
        frame_abs: usize,
    ) -> Result<ResolvedPlace, SimError> {
        match place {
            Place::Var(v) => Ok(ResolvedPlace {
                root: Root::Var(v.index()),
                steps: Vec::new(),
            }),
            Place::Local(slot) => Ok(ResolvedPlace {
                root: Root::Local {
                    frame: frame_abs,
                    slot: *slot,
                },
                steps: Vec::new(),
            }),
            Place::Index { base, index } => {
                let mut rp = self.resolve_place(pid, base, frame_abs)?;
                let i = self.eval_i64_in(pid, index)?;
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                rp.steps.push(Step::Elem(i));
                Ok(rp)
            }
            Place::Slice { base, hi, lo } => {
                let mut rp = self.resolve_place(pid, base, frame_abs)?;
                rp.steps.push(Step::Slice(*hi, *lo));
                Ok(rp)
            }
            Place::DynSlice {
                base,
                offset,
                width,
            } => {
                // The offset evaluates once at resolution time, turning
                // the dynamic slice into a concrete one.
                let mut rp = self.resolve_place(pid, base, frame_abs)?;
                let lo = self.eval_i64_in(pid, offset)?;
                let lo = u32::try_from(lo)
                    .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
                rp.steps.push(Step::Slice(lo + width - 1, lo));
                Ok(rp)
            }
        }
    }

    fn write_resolved(
        &mut self,
        pid: usize,
        rp: &ResolvedPlace,
        value: Value,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => self
                .vars
                .get_mut(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => self.processes[pid]
                .frames
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    /// Writes `value` (coerced to the target's type) into a place.
    fn write_place(&mut self, pid: usize, place: &Place, value: Value) -> Result<(), SimError> {
        // Whole-variable and whole-local writes (the overwhelmingly common
        // case) skip type cloning and place resolution entirely.
        let system: &'a System = self.system;
        match place {
            Place::Var(v) => {
                let decl = system
                    .variables
                    .get(v.index())
                    .ok_or_else(|| SimError::eval(format!("missing variable {v}")))?;
                self.vars[v.index()] = coerce(value, &decl.ty);
                return Ok(());
            }
            Place::Local(slot) => {
                let frame = self.processes[pid].frames.last().expect("frame");
                if let CodeRef::Procedure(p) = frame.code {
                    let proc = &system.procedures[p];
                    if *slot < proc.slot_count() {
                        let ty = proc.slot_ty(*slot);
                        let v = coerce(value, ty);
                        self.processes[pid].frames.last_mut().expect("frame").locals[*slot] = v;
                        return Ok(());
                    }
                }
                // Fall through to the general path for its error reporting.
            }
            _ => {}
        }
        let frame_abs = self.processes[pid].frames.len() - 1;
        let code = self.processes[pid].frames[frame_abs].code;
        let ty = place_ty(self.system, code, place)?;
        let rp = self.resolve_place(pid, place, frame_abs)?;
        self.write_resolved(pid, &rp, coerce(value, &ty))
    }

    /// Runs one process until it blocks, sleeps or finishes.
    fn run_process(&mut self, pid: usize) -> Result<(), SimError> {
        let mut steps: u64 = 0;
        // Cache the current code block across instructions; refreshed
        // when a call or return switches frames.
        let mut cached: Option<(CodeRef, Arc<Vec<Instr>>)> = None;
        loop {
            steps += 1;
            self.total_instrs += 1;
            self.processes[pid].instrs_executed += 1;
            if steps > self.config.max_steps_per_activation {
                return Err(SimError::ZeroDelayLoop {
                    behavior: self.system.behaviors[self.processes[pid].behavior]
                        .name
                        .clone(),
                    time: self.time,
                });
            }
            let (code_ref, pc) = {
                let frame = self.processes[pid]
                    .frames
                    .last()
                    .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
                (frame.code, frame.pc)
            };
            if !matches!(&cached, Some((c, _)) if *c == code_ref) {
                let rc = match code_ref {
                    CodeRef::Behavior(i) => Arc::clone(&self.behavior_code[i]),
                    CodeRef::Procedure(i) => Arc::clone(&self.procedure_code[i]),
                };
                cached = Some((code_ref, rc));
            }
            // Borrowing out of the local cache (not `self`) keeps the
            // per-instruction cost at a tag compare — no refcount traffic.
            let instr = &cached.as_ref().expect("cache filled above").1[pc];
            match instr {
                Instr::Assign { place, value, cost } => {
                    let v = self.eval_in(pid, value)?;
                    self.write_place(pid, place, v)?;
                    self.advance_pc(pid);
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost,
                } => {
                    let v = {
                        // `self.system` is a shared reference; copying it
                        // out lets the type borrow coexist with `&mut self`.
                        let system: &'a System = self.system;
                        coerce(self.eval_in(pid, value)?, &system.signal(*signal).ty)
                    };
                    self.advance_pc(pid);
                    if *cost == 0 {
                        self.pending.push((signal.index(), v, false));
                    } else {
                        self.schedule_write(self.time + u64::from(*cost), signal.index(), v, false);
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::Jump(t) => self.set_pc(pid, *t),
                Instr::JumpIfNot { cond, target } => {
                    let b = self.eval_bool_in(pid, cond)?;
                    if b {
                        self.advance_pc(pid);
                    } else {
                        self.set_pc(pid, *target);
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let bound = self.eval_i64_in(pid, to)?;
                    let start = self.eval_in(pid, from)?;
                    self.write_place(pid, var, start)?;
                    self.processes[pid]
                        .frames
                        .last_mut()
                        .expect("frame")
                        .loop_bounds
                        .push(bound);
                    self.advance_pc(pid);
                }
                Instr::LoopTest { var, exit } => {
                    // Loop counters are whole int variables or locals in
                    // practice; read them without an evaluation context.
                    let fast = match var {
                        Place::Var(v) => match self.vars.get(v.index()) {
                            Some(Value::Int { value, .. }) => Some(*value),
                            _ => None,
                        },
                        Place::Local(slot) => {
                            let frame = self.processes[pid].frames.last().expect("frame");
                            match frame.locals.get(*slot) {
                                Some(Value::Int { value, .. }) => Some(*value),
                                _ => None,
                            }
                        }
                        _ => None,
                    };
                    let v = match fast {
                        Some(v) => v,
                        None => self.read_place_i64_in(pid, var)?,
                    };
                    let frame = self.processes[pid].frames.last_mut().expect("frame");
                    let bound = *frame
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        frame.loop_bounds.pop();
                        self.set_pc(pid, *exit);
                    } else {
                        self.advance_pc(pid);
                    }
                }
                Instr::LoopIncr { var, back } => {
                    // In-place increment for whole int counters (stored
                    // values are unmasked, so this matches rebuild+write).
                    let done = match var {
                        Place::Var(v) => match self.vars.get_mut(v.index()) {
                            Some(Value::Int { value, width }) if *width > 0 => {
                                *value += 1;
                                true
                            }
                            _ => false,
                        },
                        Place::Local(slot) => {
                            let frame = self.processes[pid].frames.last_mut().expect("frame");
                            match frame.locals.get_mut(*slot) {
                                Some(Value::Int { value, width }) if *width > 0 => {
                                    *value += 1;
                                    true
                                }
                                _ => false,
                            }
                        }
                        _ => false,
                    };
                    if !done {
                        let (v, width) = {
                            let cur = read_place(&self.ctx_for(pid)?, var)?;
                            let v = cur.as_i64().map_err(|e| SimError::eval(e.to_string()))?;
                            let width = match &*cur {
                                Value::Int { width, .. } => *width,
                                other => other.ty().bit_width(),
                            };
                            (v, width)
                        };
                        self.write_place(pid, var, Value::int(v + 1, width.max(1)))?;
                    }
                    self.set_pc(pid, *back);
                }
                Instr::Wait(cond) => {
                    self.advance_pc(pid);
                    match cond {
                        WaitSpec::ForCycles(n) => {
                            if *n > 0 {
                                self.sleep_until(pid, self.time + n);
                                return Ok(());
                            }
                        }
                        WaitSpec::OnSignals(signals) => {
                            self.register_wait(pid, WaitKind::Signals, signals);
                            return Ok(());
                        }
                        WaitSpec::Until { expr, sensitivity } => {
                            let sat = self.eval_bool_in(pid, expr)?;
                            if !sat {
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(Arc::clone(expr)),
                                    sensitivity,
                                );
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIs { signal, value } => {
                            if self.signals[signal.index()] != *value {
                                self.register_wait(
                                    pid,
                                    WaitKind::SignalIs(signal.index(), value.clone()),
                                    std::slice::from_ref(signal),
                                );
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilTimeout {
                            expr,
                            sensitivity,
                            cycles,
                        } => {
                            let sat = self.eval_bool_in(pid, expr)?;
                            if !sat {
                                let deadline = self.time + cycles;
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(Arc::clone(expr)),
                                    sensitivity,
                                );
                                self.arm_watchdog(pid, deadline);
                                return Ok(());
                            }
                        }
                        WaitSpec::UntilSignalIsTimeout {
                            signal,
                            value,
                            cycles,
                        } => {
                            if self.signals[signal.index()] != *value {
                                let deadline = self.time + cycles;
                                self.register_wait(
                                    pid,
                                    WaitKind::SignalIs(signal.index(), value.clone()),
                                    std::slice::from_ref(signal),
                                );
                                self.arm_watchdog(pid, deadline);
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Call { procedure, args } => {
                    self.advance_pc(pid);
                    self.enter_procedure(pid, *procedure, args)?;
                }
                Instr::Ret => {
                    if self.leave_frame(pid)? {
                        return Ok(());
                    }
                }
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost,
                } => {
                    let data_v = self.eval_in(pid, data)?;
                    let addr_v = match addr {
                        Some(a) => Some(self.eval_i64_in(pid, a)?),
                        None => None,
                    };
                    self.channel_write(*channel, addr_v, data_v)?;
                    self.advance_pc(pid);
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost,
                } => {
                    let addr_v = match addr {
                        Some(a) => Some(self.eval_i64_in(pid, a)?),
                        None => None,
                    };
                    let v = self.channel_read(*channel, addr_v)?;
                    self.write_place(pid, target, v)?;
                    self.advance_pc(pid);
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::Assert { cond, note } => {
                    let ok = self.eval_bool_in(pid, cond)?;
                    if !ok {
                        return Err(SimError::AssertionFailed {
                            behavior: self.system.behaviors[self.processes[pid].behavior]
                                .name
                                .clone(),
                            note: note.clone(),
                            time: self.time,
                        });
                    }
                    self.assertions_checked += 1;
                    self.advance_pc(pid);
                }
                Instr::Consume { cycles } => {
                    self.advance_pc(pid);
                    if *cycles > 0 {
                        self.processes[pid].active_cycles += *cycles;
                        self.sleep_until(pid, self.time + *cycles);
                        return Ok(());
                    }
                }
            }
        }
    }

    fn advance_pc(&mut self, pid: usize) {
        self.processes[pid].frames.last_mut().expect("frame").pc += 1;
    }

    fn set_pc(&mut self, pid: usize, pc: usize) {
        self.processes[pid].frames.last_mut().expect("frame").pc = pc;
    }

    fn enter_procedure(
        &mut self,
        pid: usize,
        procedure: usize,
        args: &[Arg],
    ) -> Result<(), SimError> {
        let proc = &self.system.procedures[procedure];
        let caller_frame_abs = self.processes[pid].frames.len() - 1;
        let mut locals = Vec::with_capacity(proc.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&proc.params).enumerate() {
            match (arg, param.mode) {
                (Arg::In(e), ParamMode::In) => {
                    locals.push(coerce(self.eval_in(pid, e)?, &param.ty));
                }
                (Arg::Out(place), ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    let caller_code = self.processes[pid].frames[caller_frame_abs].code;
                    let ty = place_ty(self.system, caller_code, place)?;
                    copyback.push((i, self.resolve_place(pid, place, caller_frame_abs)?, ty));
                }
                (Arg::InOut(place), ParamMode::InOut) => {
                    locals.push(coerce(self.read_place_in(pid, place)?, &param.ty));
                    let caller_code = self.processes[pid].frames[caller_frame_abs].code;
                    let ty = place_ty(self.system, caller_code, place)?;
                    copyback.push((i, self.resolve_place(pid, place, caller_frame_abs)?, ty));
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        proc.name
                    )))
                }
            }
        }
        for l in &proc.locals {
            locals.push(Value::default_of(&l.ty));
        }
        let mut frame = Frame::new(CodeRef::Procedure(procedure), locals);
        frame.copyback = copyback;
        self.processes[pid].frames.push(frame);
        Ok(())
    }

    /// Pops the current frame. Returns `true` when the process stopped
    /// running (finished) and the caller should stop stepping it.
    fn leave_frame(&mut self, pid: usize) -> Result<bool, SimError> {
        let frame = self.processes[pid].frames.pop().expect("frame");
        for (slot, rp, ty) in &frame.copyback {
            let v = coerce(frame.locals[*slot].clone(), ty);
            self.write_resolved(pid, rp, v)?;
        }
        if self.processes[pid].frames.is_empty() {
            let bidx = self.processes[pid].behavior;
            if self.system.behaviors[bidx].repeats {
                self.processes[pid].iterations += 1;
                self.processes[pid]
                    .frames
                    .push(Frame::new(CodeRef::Behavior(bidx), Vec::new()));
                Ok(false)
            } else {
                self.processes[pid].status = Status::Finished;
                self.processes[pid].finish_time = Some(self.time);
                Ok(true)
            }
        } else {
            Ok(false)
        }
    }

    /// Ideal-channel write: store directly into the remote variable.
    fn channel_write(
        &mut self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
    ) -> Result<(), SimError> {
        // Borrow the type through the `'a` system reference instead of
        // cloning it (array types heap-allocate their element box).
        let system: &'a System = self.system;
        let ch = system.channel(channel);
        let var_idx = ch.variable.index();
        let ty = &system.variables[var_idx].ty;
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match ty {
                    Ty::Array { elem, .. } => &**elem,
                    other => other,
                };
                match &mut self.vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => self.vars[var_idx] = coerce(data, ty),
        }
        Ok(())
    }

    /// Ideal-channel read: fetch directly from the remote variable.
    fn channel_read(
        &self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &self.vars[var_idx] {
                    Value::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::eval(format!("channel address {i} out of range"))),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(self.vars[var_idx].clone()),
        }
    }

    /// Builds the per-process wait diagnosis, or `None` when nothing is
    /// suspended on a wait.
    fn diagnosis(&self) -> Option<DeadlockDiagnosis> {
        let blocked_pids: Vec<usize> = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.status, Status::Waiting(_)))
            .map(|(i, _)| i)
            .collect();
        if blocked_pids.is_empty() {
            return None;
        }
        let blocked: Vec<BlockedWait> = blocked_pids
            .iter()
            .map(|&pid| {
                let p = &self.processes[pid];
                let wait = match &p.status {
                    Status::Waiting(WaitKind::Signals) => {
                        let names: Vec<&str> = p
                            .registered
                            .iter()
                            .map(|&s| self.system.signals[s].name.as_str())
                            .collect();
                        format!("wait on {}", names.join(", "))
                    }
                    Status::Waiting(WaitKind::Until(expr)) => {
                        format!("wait until {}", render_expr(self.system, expr))
                    }
                    Status::Waiting(WaitKind::SignalIs(sig, v)) => {
                        format!("wait until {} = {v}", self.system.signals[*sig].name)
                    }
                    _ => unreachable!("filtered to waiting processes"),
                };
                let observed = p
                    .registered
                    .iter()
                    .map(|&s| {
                        (
                            self.system.signals[s].name.clone(),
                            self.signals[s].to_string(),
                        )
                    })
                    .collect();
                BlockedWait {
                    behavior: self.system.behaviors[p.behavior].name.clone(),
                    wait,
                    observed,
                }
            })
            .collect();
        // Wait-for edges: blocked A -> blocked B when B's code can write a
        // signal A is sensitive to. With every potential writer of A's
        // wakeup signals itself blocked, the cycle is unbreakable.
        let writes: Vec<Vec<bool>> = blocked_pids
            .iter()
            .map(|&pid| self.written_signals(self.processes[pid].behavior))
            .collect();
        let edges: Vec<Vec<usize>> = blocked_pids
            .iter()
            .enumerate()
            .map(|(i, &pid)| {
                let sens = &self.processes[pid].registered;
                (0..blocked_pids.len())
                    .filter(|&j| j != i && sens.iter().any(|&s| writes[j][s]))
                    .collect()
            })
            .collect();
        let cycles = find_cycles(blocked_pids.len(), &edges)
            .into_iter()
            .map(|cycle| {
                cycle
                    .into_iter()
                    .map(|i| {
                        self.system.behaviors[self.processes[blocked_pids[i]].behavior]
                            .name
                            .clone()
                    })
                    .collect()
            })
            .collect();
        Some(DeadlockDiagnosis {
            time: self.time,
            blocked,
            cycles,
        })
    }

    /// Signals a behavior's code can drive, including through called
    /// procedures (transitively). Indexed by signal index.
    fn written_signals(&self, behavior: usize) -> Vec<bool> {
        let mut out = vec![false; self.signals.len()];
        let mut visited = vec![false; self.procedure_code.len()];
        let mut stack: Vec<&[Instr]> = vec![self.behavior_code[behavior].as_slice()];
        while let Some(instrs) = stack.pop() {
            for instr in instrs {
                match instr {
                    Instr::SignalWrite { signal, .. } => out[signal.index()] = true,
                    Instr::Call { procedure, .. } if !visited[*procedure] => {
                        visited[*procedure] = true;
                        stack.push(self.procedure_code[*procedure].as_slice());
                    }
                    _ => {}
                }
            }
        }
        out
    }

    fn into_report(self) -> SimReport {
        let behaviors = self
            .processes
            .iter()
            .map(|p| BehaviorOutcome {
                name: self.system.behaviors[p.behavior].name.clone(),
                finish_time: p.finish_time,
                iterations: p.iterations,
                blocked: matches!(p.status, Status::Waiting(_)),
                repeats: self.system.behaviors[p.behavior].repeats,
                active_cycles: p.active_cycles,
                instrs_executed: p.instrs_executed,
            })
            .collect();
        let variables = self
            .system
            .variables
            .iter()
            .zip(&self.vars)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signals = self
            .system
            .signals
            .iter()
            .zip(&self.signals)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signal_events = self
            .system
            .signals
            .iter()
            .zip(&self.signal_events)
            .map(|(d, &n)| (d.name.clone(), n))
            .collect();
        let blocked_at_exit = self
            .processes
            .iter()
            .filter(|p| {
                !self.system.behaviors[p.behavior].repeats && !matches!(p.status, Status::Finished)
            })
            .count();
        SimReport {
            time: self.time,
            behaviors,
            variables,
            signals,
            signal_events,
            injected_faults: self.injected,
            blocked_at_exit,
            trace: self.trace,
            total_deltas: self.total_deltas,
            total_instrs: self.total_instrs,
            assertions_checked: self.assertions_checked,
            heap_peak: self.heap_peak,
            time_steps: self.time_steps,
        }
    }
}

/// Renders a wait condition compactly for diagnosis messages: signal
/// names, literal values and operators; structural forms fall back to a
/// placeholder rather than a full printout.
fn render_expr(system: &System, expr: &Expr) -> String {
    match expr {
        Expr::Signal(s) => system.signal(*s).name.clone(),
        Expr::Const(v) => v.to_string(),
        Expr::Unary { op, arg } => format!("{op} {}", render_expr(system, arg)),
        Expr::Binary { op, lhs, rhs } => format!(
            "{} {op} {}",
            render_expr(system, lhs),
            render_expr(system, rhs)
        ),
        _ => "<expr>".to_string(),
    }
}

/// Writes `value` through a resolved navigation path.
fn write_steps(root: &mut Value, steps: &[Step], value: Value) -> Result<(), SimError> {
    match steps.split_first() {
        None => {
            *root = value;
            Ok(())
        }
        Some((Step::Elem(i), rest)) => match root {
            Value::Array(items) => {
                let slot = items
                    .get_mut(*i)
                    .ok_or_else(|| SimError::eval(format!("array index {i} out of range")))?;
                write_steps(slot, rest, value)
            }
            other => Err(SimError::eval(format!("indexing non-array value {other}"))),
        },
        Some((Step::Slice(hi, lo), rest)) => {
            if !rest.is_empty() {
                return Err(SimError::eval(
                    "slice must be the last projection of a write target".to_string(),
                ));
            }
            let ty = root.ty();
            let mut bits = root.to_bits();
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            bits.write_slice(*hi, *lo, &value.to_bits().resized(hi - lo + 1));
            *root = Value::from_bits(&ty, &bits);
            Ok(())
        }
    }
}

//! The discrete-event simulation kernel.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use ifsyn_spec::{Arg, Expr, ParamMode, Place, System, Ty, Value, WaitCond};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::eval::{coerce, eval, place_ty, read_place, EvalCtx};
use crate::process::{CodeRef, Frame, Process, ResolvedPlace, Root, Status, Step, WaitKind};
use crate::program::{Instr, Program};
use crate::report::{BehaviorOutcome, SimReport, TraceEvent};

/// A deterministic discrete-event simulator over a [`System`].
///
/// Semantics (see the crate docs for the rationale):
///
/// * time advances in integer clock cycles; instructions carry cycle
///   costs; a zero-cost signal write becomes visible at the next *delta*
///   (same time instant), a cost-`c` write becomes visible at `t + c`;
/// * an event is a signal *value change*;
/// * `wait until` is level-sensitive: if the condition already holds the
///   process continues without suspending.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_sim::Simulator;
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("handshake");
/// let m = sys.add_module("chip");
/// let req = sys.add_signal("REQ", Ty::Bit);
/// let ack = sys.add_signal("ACK", Ty::Bit);
/// let a = sys.add_behavior("producer", m);
/// sys.behavior_mut(a).body = vec![
///     drive_cost(req, bit_const(true), 1),
///     wait_until(eq(signal(ack), bit_const(true))),
/// ];
/// let b = sys.add_behavior("consumer", m);
/// sys.behavior_mut(b).body = vec![
///     wait_until(eq(signal(req), bit_const(true))),
///     drive_cost(ack, bit_const(true), 1),
/// ];
///
/// let report = Simulator::new(&sys)?.run_to_quiescence()?;
/// assert_eq!(report.finish_time(a), Some(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    system: &'a System,
    config: SimConfig,
    /// Shared handles to each code block's instructions, so the hot loop
    /// can hold an instruction reference across `&mut self` calls
    /// without deep-cloning expressions.
    behavior_code: Vec<Rc<Vec<Instr>>>,
    procedure_code: Vec<Rc<Vec<Instr>>>,
    time: u64,
    signals: Vec<Value>,
    vars: Vec<Value>,
    processes: Vec<Process>,
    ready: VecDeque<usize>,
    /// Zero-delay signal writes awaiting the next delta.
    pending: Vec<(usize, Value)>,
    /// Future signal writes, keyed by visibility time.
    timed_writes: BTreeMap<u64, Vec<(usize, Value)>>,
    /// Sleeping processes, keyed by wake time.
    sleepers: BTreeMap<u64, Vec<usize>>,
    /// Per signal: processes registered as waiters.
    waiters: Vec<Vec<usize>>,
    signal_events: Vec<u64>,
    trace: Vec<TraceEvent>,
    total_deltas: u64,
    total_instrs: u64,
    assertions_checked: u64,
}

impl<'a> Simulator<'a> {
    /// Compiles `system` for simulation with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn new(system: &'a System) -> Result<Self, SimError> {
        Self::with_config(system, SimConfig::new())
    }

    /// Compiles `system` with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn with_config(system: &'a System, config: SimConfig) -> Result<Self, SimError> {
        system.check().map_err(|e| SimError::InvalidSystem {
            message: e.to_string(),
        })?;
        let program = Program::compile(system, &config.cost_model);
        let behavior_code: Vec<Rc<Vec<Instr>>> = program
            .behaviors
            .into_iter()
            .map(|c| Rc::new(c.instrs))
            .collect();
        let procedure_code: Vec<Rc<Vec<Instr>>> = program
            .procedures
            .into_iter()
            .map(|c| Rc::new(c.instrs))
            .collect();
        let signals = system
            .signals
            .iter()
            .map(|s| s.initial_value())
            .collect::<Vec<_>>();
        let vars = system
            .variables
            .iter()
            .map(|v| v.initial_value())
            .collect::<Vec<_>>();
        let processes: Vec<Process> = (0..system.behaviors.len()).map(Process::new).collect();
        let ready = (0..processes.len()).collect();
        let n_signals = signals.len();
        Ok(Self {
            system,
            config,
            behavior_code,
            procedure_code,
            time: 0,
            signals,
            vars,
            processes,
            ready,
            pending: Vec::new(),
            timed_writes: BTreeMap::new(),
            sleepers: BTreeMap::new(),
            waiters: vec![Vec::new(); n_signals],
            signal_events: vec![0; n_signals],
            trace: Vec::new(),
            total_deltas: 0,
            total_instrs: 0,
            assertions_checked: 0,
        })
    }

    /// Runs until no further event can occur, then reports.
    ///
    /// Quiescence means: every process is finished, or suspended on a wait
    /// that nothing pending can satisfy. Server processes idling on their
    /// bus is the expected quiescent state of a refined system.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] — simulated time passed the configured cap.
    /// * [`SimError::DeltaOverflow`] / [`SimError::ZeroDelayLoop`] —
    ///   zero-time oscillation.
    /// * [`SimError::Eval`] — a runtime type or bounds violation.
    pub fn run_to_quiescence(mut self) -> Result<SimReport, SimError> {
        self.run_events(None)?;
        Ok(self.into_report())
    }

    /// Runs until time `deadline` (inclusive) or quiescence, whichever
    /// comes first, then reports.
    ///
    /// Unlike [`Simulator::run_to_quiescence`] this terminates cleanly
    /// for free-running systems (periodic producers, servers fed by
    /// repeating clients) that never become quiescent.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_to_quiescence`], except
    /// that reaching the deadline is success, not a timeout.
    pub fn run_until(mut self, deadline: u64) -> Result<SimReport, SimError> {
        self.run_events(Some(deadline))?;
        Ok(self.into_report())
    }

    /// The main event loop; stops at quiescence, or past `deadline`.
    fn run_events(&mut self, deadline: Option<u64>) -> Result<(), SimError> {
        loop {
            self.settle_instant()?;
            let next_write = self.timed_writes.keys().next().copied();
            let next_sleep = self.sleepers.keys().next().copied();
            let next = match (next_write, next_sleep) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if let Some(deadline) = deadline {
                if next > deadline {
                    self.time = deadline;
                    break;
                }
            }
            if next > self.config.max_time {
                return Err(SimError::Timeout {
                    max_time: self.config.max_time,
                });
            }
            self.time = next;
            if let Some(writes) = self.timed_writes.remove(&next) {
                self.pending.extend(writes);
            }
            if let Some(pids) = self.sleepers.remove(&next) {
                for pid in pids {
                    if matches!(self.processes[pid].status, Status::Sleeping) {
                        self.processes[pid].status = Status::Ready;
                        self.ready.push_back(pid);
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes all delta cycles of the current time instant.
    fn settle_instant(&mut self) -> Result<(), SimError> {
        let mut deltas = 0u32;
        loop {
            if !self.pending.is_empty() {
                let changed = self.apply_pending();
                self.wake_on(&changed)?;
                deltas += 1;
                self.total_deltas += 1;
                if deltas > self.config.max_deltas_per_instant {
                    return Err(SimError::DeltaOverflow { time: self.time });
                }
            }
            if self.ready.is_empty() {
                if self.pending.is_empty() {
                    return Ok(());
                }
                continue;
            }
            while let Some(pid) = self.ready.pop_front() {
                if matches!(self.processes[pid].status, Status::Ready) {
                    self.run_process(pid)?;
                }
            }
        }
    }

    /// Applies zero-delay writes; returns indices of changed signals.
    ///
    /// Multiple writes to one signal within the same delta collapse to the
    /// last one (VHDL projected-waveform semantics), producing at most one
    /// event per signal per delta.
    fn apply_pending(&mut self) -> Vec<usize> {
        let mut changed = Vec::new();
        let mut drained = std::mem::take(&mut self.pending);
        // Keep only the final write per signal, preserving first-write order.
        let mut last_index: Vec<Option<usize>> = vec![None; self.signals.len()];
        for (i, (sig, _)) in drained.iter().enumerate() {
            last_index[*sig] = Some(i);
        }
        let mut seen = vec![false; self.signals.len()];
        drained = drained
            .into_iter()
            .enumerate()
            .filter_map(|(i, (sig, v))| {
                if last_index[sig] == Some(i) && !seen[sig] {
                    seen[sig] = true;
                    Some((sig, v))
                } else {
                    None
                }
            })
            .collect();
        for (sig, value) in drained {
            if self.signals[sig] != value {
                self.signals[sig] = value.clone();
                self.signal_events[sig] += 1;
                if !changed.contains(&sig) {
                    changed.push(sig);
                }
                if self.config.trace && self.trace.len() < self.config.max_trace_events {
                    self.trace.push(TraceEvent {
                        time: self.time,
                        signal: ifsyn_spec::SignalId::new(sig as u32),
                        value,
                    });
                }
            }
        }
        changed
    }

    /// Wakes processes sensitive to the changed signals.
    fn wake_on(&mut self, changed: &[usize]) -> Result<(), SimError> {
        for &sig in changed {
            let candidates = self.waiters[sig].clone();
            for pid in candidates {
                match self.processes[pid].status.clone() {
                    Status::Waiting(WaitKind::Signals) => self.make_ready(pid),
                    Status::Waiting(WaitKind::Until(expr)) => {
                        let sat = self
                            .eval_in(pid, &expr)?
                            .as_bool()
                            .map_err(|e| SimError::eval(e.to_string()))?;
                        if sat {
                            self.make_ready(pid);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn make_ready(&mut self, pid: usize) {
        let registered = std::mem::take(&mut self.processes[pid].registered);
        for sig in registered {
            self.waiters[sig].retain(|&p| p != pid);
        }
        self.processes[pid].status = Status::Ready;
        self.ready.push_back(pid);
    }

    fn sleep_until(&mut self, pid: usize, until: u64) {
        self.processes[pid].status = Status::Sleeping;
        self.sleepers.entry(until).or_default().push(pid);
    }

    fn register_wait(&mut self, pid: usize, kind: WaitKind, sensitivity: &[ifsyn_spec::SignalId]) {
        let mut registered = Vec::with_capacity(sensitivity.len());
        for s in sensitivity {
            let idx = s.index();
            if !self.waiters[idx].contains(&pid) {
                self.waiters[idx].push(pid);
            }
            registered.push(idx);
        }
        self.processes[pid].registered = registered;
        self.processes[pid].status = Status::Waiting(kind);
    }

    /// Evaluates an expression in a process's current scope.
    fn eval_in(&self, pid: usize, expr: &Expr) -> Result<Value, SimError> {
        let frame = self.processes[pid]
            .frames
            .last()
            .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
        let ctx = EvalCtx {
            vars: &self.vars,
            signals: &self.signals,
            frame,
        };
        eval(&ctx, expr)
    }

    fn read_place_in(&self, pid: usize, place: &Place) -> Result<Value, SimError> {
        let frame = self.processes[pid]
            .frames
            .last()
            .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
        let ctx = EvalCtx {
            vars: &self.vars,
            signals: &self.signals,
            frame,
        };
        read_place(&ctx, place)
    }

    /// Resolves a place to a concrete path; index expressions evaluate in
    /// the process's current (top) frame.
    fn resolve_place(
        &self,
        pid: usize,
        place: &Place,
        frame_abs: usize,
    ) -> Result<ResolvedPlace, SimError> {
        match place {
            Place::Var(v) => Ok(ResolvedPlace {
                root: Root::Var(v.index()),
                steps: Vec::new(),
            }),
            Place::Local(slot) => Ok(ResolvedPlace {
                root: Root::Local {
                    frame: frame_abs,
                    slot: *slot,
                },
                steps: Vec::new(),
            }),
            Place::Index { base, index } => {
                let mut rp = self.resolve_place(pid, base, frame_abs)?;
                let i = self
                    .eval_in(pid, index)?
                    .as_i64()
                    .map_err(|e| SimError::eval(e.to_string()))?;
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                rp.steps.push(Step::Elem(i));
                Ok(rp)
            }
            Place::Slice { base, hi, lo } => {
                let mut rp = self.resolve_place(pid, base, frame_abs)?;
                rp.steps.push(Step::Slice(*hi, *lo));
                Ok(rp)
            }
            Place::DynSlice {
                base,
                offset,
                width,
            } => {
                // The offset evaluates once at resolution time, turning
                // the dynamic slice into a concrete one.
                let mut rp = self.resolve_place(pid, base, frame_abs)?;
                let lo = self
                    .eval_in(pid, offset)?
                    .as_i64()
                    .map_err(|e| SimError::eval(e.to_string()))?;
                let lo = u32::try_from(lo).map_err(|_| {
                    SimError::eval(format!("negative slice offset {lo}"))
                })?;
                rp.steps.push(Step::Slice(lo + width - 1, lo));
                Ok(rp)
            }
        }
    }

    fn write_resolved(
        &mut self,
        pid: usize,
        rp: &ResolvedPlace,
        value: Value,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => self
                .vars
                .get_mut(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => self.processes[pid]
                .frames
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    /// Writes `value` (coerced to the target's type) into a place.
    fn write_place(&mut self, pid: usize, place: &Place, value: Value) -> Result<(), SimError> {
        let frame_abs = self.processes[pid].frames.len() - 1;
        let code = self.processes[pid].frames[frame_abs].code;
        let ty = place_ty(self.system, code, place)?;
        let rp = self.resolve_place(pid, place, frame_abs)?;
        self.write_resolved(pid, &rp, coerce(value, &ty))
    }

    /// Runs one process until it blocks, sleeps or finishes.
    fn run_process(&mut self, pid: usize) -> Result<(), SimError> {
        let mut steps: u64 = 0;
        // Cache the current code block across instructions; refreshed
        // when a call or return switches frames.
        let mut cached: Option<(CodeRef, Rc<Vec<Instr>>)> = None;
        loop {
            steps += 1;
            self.total_instrs += 1;
            self.processes[pid].instrs_executed += 1;
            if steps > self.config.max_steps_per_activation {
                return Err(SimError::ZeroDelayLoop {
                    behavior: self.system.behaviors[self.processes[pid].behavior]
                        .name
                        .clone(),
                    time: self.time,
                });
            }
            let frame = self.processes[pid]
                .frames
                .last()
                .ok_or_else(|| SimError::eval("process has no frame".to_string()))?;
            let code: Rc<Vec<Instr>> = match &cached {
                Some((code_ref, rc)) if *code_ref == frame.code => Rc::clone(rc),
                _ => {
                    let rc = match frame.code {
                        CodeRef::Behavior(i) => Rc::clone(&self.behavior_code[i]),
                        CodeRef::Procedure(i) => Rc::clone(&self.procedure_code[i]),
                    };
                    cached = Some((frame.code, Rc::clone(&rc)));
                    rc
                }
            };
            let instr = &code[frame.pc];
            match instr {
                Instr::Assign { place, value, cost } => {
                    let v = self.eval_in(pid, value)?;
                    self.write_place(pid, place, v)?;
                    self.advance_pc(pid);
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost,
                } => {
                    let ty = self.system.signal(*signal).ty.clone();
                    let v = coerce(self.eval_in(pid, value)?, &ty);
                    self.advance_pc(pid);
                    if *cost == 0 {
                        self.pending.push((signal.index(), v));
                    } else {
                        self.timed_writes
                            .entry(self.time + u64::from(*cost))
                            .or_default()
                            .push((signal.index(), v));
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::Jump(t) => self.set_pc(pid, *t),
                Instr::JumpIfNot { cond, target } => {
                    let b = self
                        .eval_in(pid, cond)?
                        .as_bool()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    if b {
                        self.advance_pc(pid);
                    } else {
                        self.set_pc(pid, *target);
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let bound = self
                        .eval_in(pid, to)?
                        .as_i64()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    let start = self.eval_in(pid, from)?;
                    self.write_place(pid, var, start)?;
                    self.processes[pid]
                        .frames
                        .last_mut()
                        .expect("frame")
                        .loop_bounds
                        .push(bound);
                    self.advance_pc(pid);
                }
                Instr::LoopTest { var, exit } => {
                    let v = self
                        .read_place_in(pid, var)?
                        .as_i64()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    let frame = self.processes[pid].frames.last_mut().expect("frame");
                    let bound = *frame
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        frame.loop_bounds.pop();
                        self.set_pc(pid, *exit);
                    } else {
                        self.advance_pc(pid);
                    }
                }
                Instr::LoopIncr { var, back } => {
                    let v = self
                        .read_place_in(pid, var)?
                        .as_i64()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    let width = match self.read_place_in(pid, var)? {
                        Value::Int { width, .. } => width,
                        other => other.ty().bit_width(),
                    };
                    self.write_place(pid, var, Value::int(v + 1, width.max(1)))?;
                    self.set_pc(pid, *back);
                }
                Instr::Wait(cond) => {
                    self.advance_pc(pid);
                    match cond {
                        WaitCond::ForCycles(n) => {
                            if *n > 0 {
                                self.sleep_until(pid, self.time + n);
                                return Ok(());
                            }
                        }
                        WaitCond::OnSignals(signals) => {
                            self.register_wait(pid, WaitKind::Signals, signals);
                            return Ok(());
                        }
                        WaitCond::Until(expr) => {
                            let sat = self
                                .eval_in(pid, expr)?
                                .as_bool()
                                .map_err(|e| SimError::eval(e.to_string()))?;
                            if !sat {
                                let sens = {
                                    let mut s = Vec::new();
                                    expr.collect_signals(&mut s);
                                    s
                                };
                                self.register_wait(
                                    pid,
                                    WaitKind::Until(expr.clone()),
                                    &sens,
                                );
                                return Ok(());
                            }
                        }
                    }
                }
                Instr::Call { procedure, args } => {
                    self.advance_pc(pid);
                    self.enter_procedure(pid, *procedure, args)?;
                }
                Instr::Ret => {
                    if self.leave_frame(pid)? {
                        return Ok(());
                    }
                }
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost,
                } => {
                    let data_v = self.eval_in(pid, data)?;
                    let addr_v = match addr {
                        Some(a) => Some(
                            self.eval_in(pid, a)?
                                .as_i64()
                                .map_err(|e| SimError::eval(e.to_string()))?,
                        ),
                        None => None,
                    };
                    self.channel_write(*channel, addr_v, data_v)?;
                    self.advance_pc(pid);
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost,
                } => {
                    let addr_v = match addr {
                        Some(a) => Some(
                            self.eval_in(pid, a)?
                                .as_i64()
                                .map_err(|e| SimError::eval(e.to_string()))?,
                        ),
                        None => None,
                    };
                    let v = self.channel_read(*channel, addr_v)?;
                    self.write_place(pid, target, v)?;
                    self.advance_pc(pid);
                    if *cost > 0 {
                        self.processes[pid].active_cycles += u64::from(*cost);
                        self.sleep_until(pid, self.time + u64::from(*cost));
                        return Ok(());
                    }
                }
                Instr::Assert { cond, note } => {
                    let ok = self
                        .eval_in(pid, cond)?
                        .as_bool()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    if !ok {
                        return Err(SimError::AssertionFailed {
                            behavior: self.system.behaviors
                                [self.processes[pid].behavior]
                                .name
                                .clone(),
                            note: note.clone(),
                            time: self.time,
                        });
                    }
                    self.assertions_checked += 1;
                    self.advance_pc(pid);
                }
                Instr::Consume { cycles } => {
                    self.advance_pc(pid);
                    if *cycles > 0 {
                        self.processes[pid].active_cycles += *cycles;
                        self.sleep_until(pid, self.time + *cycles);
                        return Ok(());
                    }
                }
            }
        }
    }

    fn advance_pc(&mut self, pid: usize) {
        self.processes[pid].frames.last_mut().expect("frame").pc += 1;
    }

    fn set_pc(&mut self, pid: usize, pc: usize) {
        self.processes[pid].frames.last_mut().expect("frame").pc = pc;
    }

    fn enter_procedure(
        &mut self,
        pid: usize,
        procedure: usize,
        args: &[Arg],
    ) -> Result<(), SimError> {
        let proc = &self.system.procedures[procedure];
        let caller_frame_abs = self.processes[pid].frames.len() - 1;
        let mut locals = Vec::with_capacity(proc.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&proc.params).enumerate() {
            match (arg, param.mode) {
                (Arg::In(e), ParamMode::In) => {
                    locals.push(coerce(self.eval_in(pid, e)?, &param.ty));
                }
                (Arg::Out(place), ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    let caller_code = self.processes[pid].frames[caller_frame_abs].code;
                    let ty = place_ty(self.system, caller_code, place)?;
                    copyback.push((i, self.resolve_place(pid, place, caller_frame_abs)?, ty));
                }
                (Arg::InOut(place), ParamMode::InOut) => {
                    locals.push(coerce(self.read_place_in(pid, place)?, &param.ty));
                    let caller_code = self.processes[pid].frames[caller_frame_abs].code;
                    let ty = place_ty(self.system, caller_code, place)?;
                    copyback.push((i, self.resolve_place(pid, place, caller_frame_abs)?, ty));
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        proc.name
                    )))
                }
            }
        }
        for l in &proc.locals {
            locals.push(Value::default_of(&l.ty));
        }
        let mut frame = Frame::new(CodeRef::Procedure(procedure), locals);
        frame.copyback = copyback;
        self.processes[pid].frames.push(frame);
        Ok(())
    }

    /// Pops the current frame. Returns `true` when the process stopped
    /// running (finished) and the caller should stop stepping it.
    fn leave_frame(&mut self, pid: usize) -> Result<bool, SimError> {
        let frame = self.processes[pid].frames.pop().expect("frame");
        for (slot, rp, ty) in &frame.copyback {
            let v = coerce(frame.locals[*slot].clone(), ty);
            self.write_resolved(pid, rp, v)?;
        }
        if self.processes[pid].frames.is_empty() {
            let bidx = self.processes[pid].behavior;
            if self.system.behaviors[bidx].repeats {
                self.processes[pid].iterations += 1;
                self.processes[pid]
                    .frames
                    .push(Frame::new(CodeRef::Behavior(bidx), Vec::new()));
                Ok(false)
            } else {
                self.processes[pid].status = Status::Finished;
                self.processes[pid].finish_time = Some(self.time);
                Ok(true)
            }
        } else {
            Ok(false)
        }
    }

    /// Ideal-channel write: store directly into the remote variable.
    fn channel_write(
        &mut self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
    ) -> Result<(), SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        let ty = self.system.variables[var_idx].ty.clone();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match &ty {
                    Ty::Array { elem, .. } => (**elem).clone(),
                    other => other.clone(),
                };
                match &mut self.vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, &elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => self.vars[var_idx] = coerce(data, &ty),
        }
        Ok(())
    }

    /// Ideal-channel read: fetch directly from the remote variable.
    fn channel_read(
        &self,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &self.vars[var_idx] {
                    Value::Array(items) => items.get(i).cloned().ok_or_else(|| {
                        SimError::eval(format!("channel address {i} out of range"))
                    }),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(self.vars[var_idx].clone()),
        }
    }

    fn into_report(self) -> SimReport {
        let behaviors = self
            .processes
            .iter()
            .map(|p| BehaviorOutcome {
                name: self.system.behaviors[p.behavior].name.clone(),
                finish_time: p.finish_time,
                iterations: p.iterations,
                blocked: matches!(p.status, Status::Waiting(_)),
                active_cycles: p.active_cycles,
                instrs_executed: p.instrs_executed,
            })
            .collect();
        let variables = self
            .system
            .variables
            .iter()
            .zip(&self.vars)
            .map(|(d, v)| (d.name.clone(), v.clone()))
            .collect();
        let signal_events = self
            .system
            .signals
            .iter()
            .zip(&self.signal_events)
            .map(|(d, &n)| (d.name.clone(), n))
            .collect();
        SimReport {
            time: self.time,
            behaviors,
            variables,
            signal_events,
            trace: self.trace,
            total_deltas: self.total_deltas,
            total_instrs: self.total_instrs,
            assertions_checked: self.assertions_checked,
        }
    }
}

/// Writes `value` through a resolved navigation path.
fn write_steps(root: &mut Value, steps: &[Step], value: Value) -> Result<(), SimError> {
    match steps.split_first() {
        None => {
            *root = value;
            Ok(())
        }
        Some((Step::Elem(i), rest)) => match root {
            Value::Array(items) => {
                let slot = items
                    .get_mut(*i)
                    .ok_or_else(|| SimError::eval(format!("array index {i} out of range")))?;
                write_steps(slot, rest, value)
            }
            other => Err(SimError::eval(format!(
                "indexing non-array value {other}"
            ))),
        },
        Some((Step::Slice(hi, lo), rest)) => {
            if !rest.is_empty() {
                return Err(SimError::eval(
                    "slice must be the last projection of a write target".to_string(),
                ));
            }
            let ty = root.ty();
            let mut bits = root.to_bits();
            if *hi >= bits.width() {
                return Err(SimError::eval(format!(
                    "slice {hi} downto {lo} out of range for width {}",
                    bits.width()
                )));
            }
            bits.write_slice(*hi, *lo, &value.to_bits().resized(hi - lo + 1));
            *root = Value::from_bits(&ty, &bits);
            Ok(())
        }
    }
}

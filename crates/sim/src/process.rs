//! Per-process runtime state: frames, statuses, resolved places.

use std::sync::Arc;

use ifsyn_spec::{Ty, Value};

use crate::program::CompiledCond;

/// Which code block a frame executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CodeRef {
    /// A behavior body, by behavior index.
    Behavior(usize),
    /// A procedure body, by procedure index.
    Procedure(usize),
}

/// One step of navigation from a storage root to a sub-location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Step {
    /// Array element.
    Elem(usize),
    /// Bit slice `hi downto lo`.
    Slice(u32, u32),
}

/// The root storage of a resolved place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Root {
    /// System variable, by index.
    Var(usize),
    /// Local slot of a specific frame of the owning process.
    Local {
        /// Absolute frame index within the process's frame stack.
        frame: usize,
        /// Slot index.
        slot: usize,
    },
}

/// A place with all index expressions evaluated to concrete values.
///
/// Used for `out` / `inout` copy-back: VHDL evaluates the target name once
/// at the call, so the indices are captured at call time even though the
/// write happens at return.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ResolvedPlace {
    pub root: Root,
    pub steps: Vec<Step>,
}

/// A call frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// The code block being executed.
    pub code: CodeRef,
    /// Next instruction index.
    pub pc: usize,
    /// Parameter and local storage (parameters first).
    pub locals: Vec<Value>,
    /// Stack of active `for`-loop bounds (innermost last).
    pub loop_bounds: Vec<i64>,
    /// `(slot, destination, destination type)` copy-backs performed on
    /// return; the value is coerced to the destination's type exactly as
    /// an ordinary assignment would be.
    pub copyback: Vec<(usize, ResolvedPlace, Ty)>,
}

impl Frame {
    /// Creates a frame at the start of a code block.
    pub fn new(code: CodeRef, locals: Vec<Value>) -> Self {
        Self {
            code,
            pc: 0,
            locals,
            loop_bounds: Vec::new(),
            copyback: Vec::new(),
        }
    }
}

/// Why a process is not currently running.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WaitKind {
    /// `wait on ...` — any event on a registered signal resumes.
    Signals,
    /// `wait until <expr>` — an event must also make the condition true.
    ///
    /// The compiled condition is shared with the instruction stream, so
    /// suspending costs one reference count, not a clone.
    Until(Arc<CompiledCond>),
    /// `wait until <signal> = <const>` — resumable by a single stored
    /// value compare, no expression evaluation (signal index, value).
    SignalIs(usize, Value),
}

/// Scheduler status of a process.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Status {
    /// Runnable now.
    Ready,
    /// Suspended on a wait statement.
    Waiting(WaitKind),
    /// Suspended until a scheduled wake-up time.
    Sleeping,
    /// Terminated (non-repeating behavior finished its body).
    Finished,
}

/// Runtime state of one behavior instance.
#[derive(Debug, Clone)]
pub(crate) struct Process {
    /// Index of the behavior in the system.
    pub behavior: usize,
    /// Call stack; empty only transiently during return handling.
    pub frames: Vec<Frame>,
    /// Scheduler status.
    pub status: Status,
    /// Signals this process is currently registered on as a waiter.
    pub registered: Vec<usize>,
    /// Monotonic wait-registration counter. Each `register_wait`
    /// increments it, so a `(pid, wait_gen)` pair identifies one specific
    /// suspension — watchdog heap entries carry the pair and are skipped
    /// as stale when the process has since been woken or re-suspended.
    pub wait_gen: u64,
    /// Time the behavior finished (non-repeating behaviors only).
    pub finish_time: Option<u64>,
    /// Completed body iterations (repeating behaviors).
    pub iterations: u64,
    /// Clock cycles consumed by costed instructions.
    pub active_cycles: u64,
    /// Total instructions executed (all costs).
    pub instrs_executed: u64,
}

impl Process {
    /// Creates a ready process at the start of its behavior body.
    pub fn new(behavior: usize) -> Self {
        Self {
            behavior,
            frames: vec![Frame::new(CodeRef::Behavior(behavior), Vec::new())],
            status: Status::Ready,
            registered: Vec::new(),
            wait_gen: 0,
            finish_time: None,
            iterations: 0,
            active_cycles: 0,
            instrs_executed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_ready_at_pc_zero() {
        let p = Process::new(3);
        assert_eq!(p.status, Status::Ready);
        assert_eq!(p.frames.len(), 1);
        assert_eq!(p.frames[0].pc, 0);
        assert_eq!(p.frames[0].code, CodeRef::Behavior(3));
    }

    #[test]
    fn frame_starts_clean() {
        let f = Frame::new(CodeRef::Procedure(1), vec![Value::Bit(false)]);
        assert!(f.loop_bounds.is_empty());
        assert!(f.copyback.is_empty());
        assert_eq!(f.locals.len(), 1);
    }
}

//! Trace emission behind a writer trait.
//!
//! A [`SimReport`] records its signal-change trace as a flat event list;
//! different consumers want it in different shapes — VCD text on disk
//! for waveform viewers, an in-memory stream for the trace-analytics
//! subsystem, nothing at all for pure throughput runs. [`TraceSink`] is
//! the one writer interface: [`emit_trace`] replays a report through any
//! sink, so batch sweeps can collect per-width traffic summaries without
//! ever materialising VCD text (see `ifsyn-analyze`), while
//! [`crate::vcd::to_vcd_string`] drives the same replay into the VCD
//! renderer.

use ifsyn_spec::{SignalId, System, Value};

use crate::report::{SimReport, TraceEvent};

/// A consumer of one simulation trace, fed in replay order.
///
/// The driver ([`emit_trace`]) calls the hooks in a fixed sequence:
/// `begin`, one `initial` per signal (declaration order), `start_changes`,
/// one `change` per recorded event (time order), and `finish`. All hooks
/// except `change` default to no-ops so summary sinks implement only what
/// they observe.
pub trait TraceSink {
    /// Called once before anything else with the traced system.
    fn begin(&mut self, system: &System) {
        let _ = system;
    }

    /// Initial value of one signal (time 0, before any event).
    fn initial(&mut self, signal: SignalId, value: &Value) {
        let _ = (signal, value);
    }

    /// Called once after the last `initial`, before the first `change`.
    fn start_changes(&mut self) {}

    /// One recorded signal change. Events arrive in non-decreasing time
    /// order, exactly as the kernel recorded them.
    fn change(&mut self, time: u64, signal: SignalId, value: &Value);

    /// Called once after the last change with the final simulation time.
    fn finish(&mut self, end_time: u64) {
        let _ = end_time;
    }
}

/// Replays the recorded trace of `report` into `sink`.
///
/// Tracing must have been enabled ([`crate::SimConfig::with_trace`]) for
/// any `change` calls to occur; without it the sink still sees the
/// declarations, initial values and final time.
pub fn emit_trace<S: TraceSink>(system: &System, report: &SimReport, sink: &mut S) {
    sink.begin(system);
    for (i, decl) in system.signals.iter().enumerate() {
        sink.initial(SignalId::new(i as u32), &decl.initial_value());
    }
    sink.start_changes();
    for event in report.trace() {
        sink.change(event.time, event.signal, &event.value);
    }
    sink.finish(report.time());
}

/// An in-memory sink: the trace as owned events plus the initial
/// snapshot, with no text rendering — the shape the bus analyzer
/// consumes when it rides directly on a simulation instead of a VCD
/// file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    /// Initial value per signal, in declaration order.
    pub initials: Vec<Value>,
    /// Recorded changes in replay order.
    pub events: Vec<TraceEvent>,
    /// Final simulation time.
    pub end_time: u64,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemorySink {
    fn initial(&mut self, _signal: SignalId, value: &Value) {
        self.initials.push(value.clone());
    }

    fn change(&mut self, time: u64, signal: SignalId, value: &Value) {
        self.events.push(TraceEvent {
            time,
            signal,
            value: value.clone(),
        });
    }

    fn finish(&mut self, end_time: u64) {
        self.end_time = end_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::Ty;

    #[test]
    fn memory_sink_replays_the_report_trace() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let s = sys.add_signal("S", Ty::Bit);
        let d = sys.add_signal("D", Ty::Bits(8));
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(d, bits_const(7, 8), 1),
            drive_cost(s, bit_const(true), 1),
            drive_cost(s, bit_const(false), 3),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let mut sink = MemorySink::new();
        emit_trace(&sys, &report, &mut sink);
        assert_eq!(sink.initials.len(), sys.signals.len());
        assert_eq!(sink.events, report.trace());
        assert_eq!(sink.end_time, report.time());
    }

    #[test]
    fn untraced_report_yields_initials_only() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        sys.add_signal("S", Ty::Bit);
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![ifsyn_spec::Stmt::compute(2, "w")];
        let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
        let mut sink = MemorySink::new();
        emit_trace(&sys, &report, &mut sink);
        assert_eq!(sink.initials.len(), 1);
        assert!(sink.events.is_empty());
        assert_eq!(sink.end_time, 2);
    }
}

//! VCD (Value Change Dump) export of simulation traces.
//!
//! The recorded signal trace of a [`SimReport`] renders as an IEEE
//! 1364 VCD file, viewable in any waveform viewer (GTKWave etc.) —
//! handy for inspecting generated bus protocols cycle by cycle.
//!
//! Tracing must be enabled ([`crate::SimConfig::with_trace`]) for the
//! dump to contain changes; without it only initial values appear.

use std::fmt::Write as _;

use ifsyn_spec::{SignalId, System, Value};

use crate::report::SimReport;
use crate::trace::{emit_trace, TraceSink};

/// Renders the signal trace of `report` as VCD text.
///
/// Signals are declared in system order under one `top` scope; the
/// timescale is 1 ns per simulated clock.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_sim::{SimConfig, Simulator};
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("demo");
/// let m = sys.add_module("chip");
/// let s = sys.add_signal("PULSE", Ty::Bit);
/// let b = sys.add_behavior("P", m);
/// sys.behavior_mut(b).body = vec![
///     drive_cost(s, bit_const(true), 1),
///     drive_cost(s, bit_const(false), 1),
/// ];
/// let report = Simulator::with_config(&sys, SimConfig::new().with_trace())?
///     .run_to_quiescence()?;
/// let vcd = ifsyn_sim::vcd::to_vcd_string(&sys, &report);
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#1"));
/// # Ok(())
/// # }
/// ```
pub fn to_vcd_string(system: &System, report: &SimReport) -> String {
    let mut sink = VcdSink::new();
    emit_trace(system, report, &mut sink);
    sink.into_string()
}

/// A [`TraceSink`] that renders the replayed trace as IEEE 1364 VCD
/// text — the renderer behind [`to_vcd_string`], usable directly when a
/// trace arrives from somewhere other than a [`SimReport`].
#[derive(Debug, Clone, Default)]
pub struct VcdSink {
    out: String,
    ids: Vec<String>,
    current_time: Option<u64>,
}

impl VcdSink {
    /// Creates an empty renderer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated VCD document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl TraceSink for VcdSink {
    fn begin(&mut self, system: &System) {
        let out = &mut self.out;
        let _ = writeln!(
            out,
            "$comment interface-synthesis simulation of {} $end",
            system.name
        );
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module top $end");
        self.ids = (0..system.signals.len()).map(code_for).collect();
        for (decl, id) in system.signals.iter().zip(&self.ids) {
            let width = decl.ty.bit_width();
            if width == 1 {
                let _ = writeln!(out, "$var wire 1 {id} {} $end", decl.name);
            } else {
                let _ = writeln!(
                    out,
                    "$var wire {width} {id} {} [{}:0] $end",
                    decl.name,
                    width - 1
                );
            }
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let _ = writeln!(out, "$dumpvars");
    }

    fn initial(&mut self, signal: SignalId, value: &Value) {
        emit_value(&mut self.out, value, &self.ids[signal.index()]);
    }

    fn start_changes(&mut self) {
        let _ = writeln!(self.out, "$end");
    }

    fn change(&mut self, time: u64, signal: SignalId, value: &Value) {
        if self.current_time != Some(time) {
            let _ = writeln!(self.out, "#{time}");
            self.current_time = Some(time);
        }
        emit_value(&mut self.out, value, &self.ids[signal.index()]);
    }

    fn finish(&mut self, end_time: u64) {
        // Close the waveform at the final time.
        if self.current_time != Some(end_time) {
            let _ = writeln!(self.out, "#{end_time}");
        }
    }
}

/// VCD identifier codes: printable ASCII 33..=126, base-94 per index.
fn code_for(index: usize) -> String {
    let mut n = index;
    let mut code = String::new();
    loop {
        code.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    code
}

fn emit_value(out: &mut String, value: &Value, id: &str) {
    match value {
        Value::Bit(b) => {
            let _ = writeln!(out, "{}{id}", if *b { '1' } else { '0' });
        }
        other => {
            let bits = other.to_bits();
            let _ = writeln!(out, "b{bits} {id}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::Ty;

    fn traced_report() -> (System, SimReport) {
        let mut sys = System::new("vcd");
        let m = sys.add_module("chip");
        let bit = sys.add_signal("REQ", Ty::Bit);
        let bus = sys.add_signal("DATA", Ty::Bits(8));
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(bus, bits_const(0xa5, 8), 1),
            drive_cost(bit, bit_const(true), 1),
            drive_cost(bit, bit_const(false), 2),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        (sys, report)
    }

    #[test]
    fn declares_all_signals_with_widths() {
        let (sys, report) = traced_report();
        let vcd = to_vcd_string(&sys, &report);
        assert!(vcd.contains("$var wire 1 ! REQ $end"), "{vcd}");
        assert!(vcd.contains("$var wire 8 \" DATA [7:0] $end"), "{vcd}");
    }

    #[test]
    fn dumps_initial_values_and_changes() {
        let (sys, report) = traced_report();
        let vcd = to_vcd_string(&sys, &report);
        assert!(vcd.contains("$dumpvars"), "{vcd}");
        assert!(vcd.contains("0!"), "initial REQ low: {vcd}");
        assert!(
            vcd.contains("#1\nb10100101 \""),
            "DATA change at t=1: {vcd}"
        );
        assert!(vcd.contains("#2\n1!"), "REQ rise at t=2: {vcd}");
        assert!(vcd.contains("#4\n0!"), "REQ fall at t=4: {vcd}");
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let codes: Vec<String> = (0..300).map(code_for).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        for c in &codes {
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
        }
    }

    #[test]
    fn untraced_report_still_renders_header() {
        let mut sys = System::new("plain");
        let m = sys.add_module("chip");
        sys.add_signal("S", Ty::Bit);
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![ifsyn_spec::Stmt::compute(3, "w")];
        let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
        let vcd = to_vcd_string(&sys, &report);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("#3"));
    }
}

//! Post-simulation trace analysis: per-signal activity and bus
//! utilization.
//!
//! The paper's §2 goal is "a bus which has a 100% utilization, i.e., the
//! bus is never idle"; these helpers measure that from a recorded trace.
//! Tracing must be enabled ([`crate::SimConfig::with_trace`]).

use ifsyn_spec::{SignalId, System, Value};

use crate::report::SimReport;

/// Activity summary of one signal over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignalActivity {
    /// Number of value changes.
    pub events: u64,
    /// Time of the first change, if any.
    pub first_event: Option<u64>,
    /// Time of the last change, if any.
    pub last_event: Option<u64>,
    /// For single-bit signals: total cycles spent high, from time 0 to
    /// the end of the run. `None` for multi-bit signals.
    pub high_cycles: Option<u64>,
}

/// Computes the activity of `signal` from the report's trace.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_sim::{analysis, SimConfig, Simulator};
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("demo");
/// let m = sys.add_module("chip");
/// let s = sys.add_signal("BUSY", Ty::Bit);
/// let b = sys.add_behavior("P", m);
/// sys.behavior_mut(b).body = vec![
///     drive_cost(s, bit_const(true), 1),   // high from t=1
///     drive_cost(s, bit_const(false), 4),  // low from t=5
///     wait_cycles(5),                      // run ends at t=10
/// ];
/// let report = Simulator::with_config(&sys, SimConfig::new().with_trace())?
///     .run_to_quiescence()?;
/// let activity = analysis::activity(&report, &sys, s);
/// assert_eq!(activity.events, 2);
/// assert_eq!(activity.high_cycles, Some(4)); // t=1..5
/// # Ok(())
/// # }
/// ```
pub fn activity(report: &SimReport, system: &System, signal: SignalId) -> SignalActivity {
    let is_bit = system.signal(signal).ty.bit_width() == 1;
    let mut out = SignalActivity::default();
    let mut level = system
        .signal(signal)
        .initial_value()
        .as_bool()
        .unwrap_or(false);
    let mut since = 0u64;
    let mut high = 0u64;
    for event in report.trace().iter().filter(|e| e.signal == signal) {
        out.events += 1;
        if out.first_event.is_none() {
            out.first_event = Some(event.time);
        }
        out.last_event = Some(event.time);
        if is_bit {
            let new_level = matches!(event.value, Value::Bit(true));
            if level && !new_level {
                high += event.time - since;
            }
            if !level && new_level {
                since = event.time;
            }
            level = new_level;
        }
    }
    if is_bit {
        if level {
            high += report.time().saturating_sub(since);
        }
        out.high_cycles = Some(high);
    }
    out
}

/// Measured bus utilization over `[0, report.time()]`: delivered words
/// times the protocol's word time, over the elapsed time — the paper's
/// §2 notion (achieved transfer rate relative to the bus rate). Words
/// are counted from the START line's edges (one rise and one fall per
/// word).
///
/// Returns 0.0 for a zero-length run.
pub fn handshake_bus_utilization(
    report: &SimReport,
    system: &System,
    start: SignalId,
    cycles_per_word: u32,
) -> f64 {
    if report.time() == 0 {
        return 0.0;
    }
    let words = activity(report, system, start).events / 2;
    (words * u64::from(cycles_per_word)) as f64 / report.time() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::Ty;

    #[test]
    fn activity_counts_events_and_bounds() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let s = sys.add_signal("S", Ty::Bits(4));
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(s, bits_const(1, 4), 2),
            drive_cost(s, bits_const(2, 4), 3),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let a = activity(&report, &sys, s);
        assert_eq!(a.events, 2);
        assert_eq!(a.first_event, Some(2));
        assert_eq!(a.last_event, Some(5));
        assert_eq!(a.high_cycles, None, "multi-bit signals have no high time");
    }

    #[test]
    fn high_cycles_handles_initially_high_signals() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let s = sys.add_signal("S", Ty::Bit);
        sys.signals[s.index()].init = Some(ifsyn_spec::Value::Bit(true));
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(s, bit_const(false), 3), // falls at t=3
            wait_cycles(7),                     // run ends at t=10
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        assert_eq!(activity(&report, &sys, s).high_cycles, Some(3));
    }

    #[test]
    fn saturated_handshake_measures_full_utilization() {
        // Back-to-back handshake words: START and DONE tile the timeline.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let start = sys.add_signal("START", Ty::Bit);
        let done = sys.add_signal("DONE", Ty::Bit);
        let tx = sys.add_behavior("tx", m);
        let rx = sys.add_behavior("rx", m);
        let i = sys.add_variable("i", Ty::Int(16), tx);
        let j = sys.add_variable("j", Ty::Int(16), rx);
        sys.behavior_mut(tx).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(31, 16),
            vec![
                drive_cost(start, bit_const(true), 1),
                wait_until(eq(signal(done), bit_const(true))),
                drive_cost(start, bit_const(false), 0),
                wait_until(eq(signal(done), bit_const(false))),
            ],
        )];
        sys.behavior_mut(rx).body = vec![for_loop(
            var(j),
            int_const(0, 16),
            int_const(31, 16),
            vec![
                wait_until(eq(signal(start), bit_const(true))),
                drive_cost(done, bit_const(true), 1),
                wait_until(eq(signal(start), bit_const(false))),
                drive_cost(done, bit_const(false), 0),
            ],
        )];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let _ = done;
        let u = handshake_bus_utilization(&report, &sys, start, 2);
        assert!(u > 0.95, "saturated bus should be ~100% utilised, got {u}");
    }

    #[test]
    fn idle_bus_measures_low_utilization() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let start = sys.add_signal("START", Ty::Bit);
        let done = sys.add_signal("DONE", Ty::Bit);
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(start, bit_const(true), 1),
            drive_cost(start, bit_const(false), 1),
            wait_cycles(98),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let _ = done;
        let u = handshake_bus_utilization(&report, &sys, start, 2);
        assert!(u < 0.05, "{u}");
    }
}

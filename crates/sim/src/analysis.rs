//! Post-simulation trace analysis: per-signal activity and bus
//! utilization.
//!
//! The paper's §2 goal is "a bus which has a 100% utilization, i.e., the
//! bus is never idle"; these helpers measure that from a recorded trace.
//! Tracing must be enabled ([`crate::SimConfig::with_trace`]).

use ifsyn_spec::{SignalId, System, Value};

use crate::report::{SimReport, TraceEvent};

/// Activity summary of one signal over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignalActivity {
    /// Number of value changes.
    pub events: u64,
    /// Time of the first change, if any.
    pub first_event: Option<u64>,
    /// Time of the last change, if any.
    pub last_event: Option<u64>,
    /// For single-bit signals: total cycles spent high, from time 0 to
    /// the end of the run. `None` for multi-bit signals.
    pub high_cycles: Option<u64>,
}

/// Computes the activity of `signal` from the report's trace.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_sim::{analysis, SimConfig, Simulator};
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("demo");
/// let m = sys.add_module("chip");
/// let s = sys.add_signal("BUSY", Ty::Bit);
/// let b = sys.add_behavior("P", m);
/// sys.behavior_mut(b).body = vec![
///     drive_cost(s, bit_const(true), 1),   // high from t=1
///     drive_cost(s, bit_const(false), 4),  // low from t=5
///     wait_cycles(5),                      // run ends at t=10
/// ];
/// let report = Simulator::with_config(&sys, SimConfig::new().with_trace())?
///     .run_to_quiescence()?;
/// let activity = analysis::activity(&report, &sys, s);
/// assert_eq!(activity.events, 2);
/// assert_eq!(activity.high_cycles, Some(4)); // t=1..5
/// # Ok(())
/// # }
/// ```
pub fn activity(report: &SimReport, system: &System, signal: SignalId) -> SignalActivity {
    let is_bit = system.signal(signal).ty.bit_width() == 1;
    let mut out = SignalActivity::default();
    let mut level = system
        .signal(signal)
        .initial_value()
        .as_bool()
        .unwrap_or(false);
    let mut since = 0u64;
    let mut high = 0u64;
    for event in report.trace().iter().filter(|e| e.signal == signal) {
        out.events += 1;
        if out.first_event.is_none() {
            out.first_event = Some(event.time);
        }
        out.last_event = Some(event.time);
        if is_bit {
            let new_level = matches!(event.value, Value::Bit(true));
            if level && !new_level {
                high += event.time - since;
            }
            if !level && new_level {
                since = event.time;
            }
            level = new_level;
        }
    }
    if is_bit {
        if level {
            high += report.time().saturating_sub(since);
        }
        out.high_cycles = Some(high);
    }
    out
}

/// Measured bus utilization over `[0, report.time()]`: delivered words
/// times the protocol's word time, over the elapsed time — the paper's
/// §2 notion (achieved transfer rate relative to the bus rate). Words
/// are counted from the START line's edges (one rise and one fall per
/// word).
///
/// Returns 0.0 for a zero-length run.
pub fn handshake_bus_utilization(
    report: &SimReport,
    system: &System,
    start: SignalId,
    cycles_per_word: u32,
) -> f64 {
    if report.time() == 0 {
        return 0.0;
    }
    let words = activity(report, system, start).events / 2;
    (words * u64::from(cycles_per_word)) as f64 / report.time() as f64
}

/// One bus word annotated from the control-line trace: the observable
/// unit of a handshake transaction.
///
/// For the full handshake a word is `START`↑ → `DONE`↑ → `START`↓ →
/// `DONE`↓; for strobe protocols (no `DONE`) only the `START` edge is
/// observable and the response fields stay `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordTx {
    /// Time of the `START` rise that opened the word.
    pub start_rise: u64,
    /// Time of the responder's `DONE` rise (command-to-response).
    pub done_rise: Option<u64>,
    /// Time of the `DONE` fall that closed the word.
    pub done_fall: Option<u64>,
    /// Value of the ID (mode) lines when the word opened, if the bus
    /// carries them — this is what attributes the word to a channel.
    pub id_code: Option<u64>,
}

impl WordTx {
    /// Command-to-response latency (`DONE`↑ − `START`↑), if observed.
    pub fn response_latency(&self) -> Option<u64> {
        self.done_rise.map(|d| d.saturating_sub(self.start_rise))
    }

    /// Bus occupancy of the word (`DONE`↓ − `START`↑), if observed.
    pub fn occupancy(&self) -> Option<u64> {
        self.done_fall.map(|d| d.saturating_sub(self.start_rise))
    }
}

/// Annotates a signal-change trace into handshake word transactions.
///
/// Walks `events` once, opening a word at every `START` rise, closing it
/// at the following `DONE` fall (when `done` is given), and stamping each
/// word with the ID-line value current at its opening (`initial_id` seeds
/// the value before the first ID event). Events must be in time order, as
/// recorded by the kernel or parsed back from a VCD file.
pub fn handshake_words(
    events: &[TraceEvent],
    start: SignalId,
    done: Option<SignalId>,
    id: Option<SignalId>,
    initial_id: Option<u64>,
) -> Vec<WordTx> {
    let mut words: Vec<WordTx> = Vec::new();
    let mut current_id = initial_id;
    let mut start_high = false;
    // Index of the opened-but-unclosed word, if any.
    let mut open: Option<usize> = None;
    for ev in events {
        if Some(ev.signal) == id {
            current_id = Some(ev.value.to_bits().to_u64());
            continue;
        }
        if ev.signal == start {
            let level = matches!(ev.value, Value::Bit(true));
            if level && !start_high {
                words.push(WordTx {
                    start_rise: ev.time,
                    done_rise: None,
                    done_fall: None,
                    id_code: current_id,
                });
                if done.is_some() {
                    open = Some(words.len() - 1);
                }
            }
            start_high = level;
            continue;
        }
        if Some(ev.signal) == done {
            let level = matches!(ev.value, Value::Bit(true));
            if let Some(w) = open {
                if level && words[w].done_rise.is_none() {
                    words[w].done_rise = Some(ev.time);
                } else if !level && words[w].done_rise.is_some() {
                    words[w].done_fall = Some(ev.time);
                    open = None;
                }
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::Ty;

    #[test]
    fn activity_counts_events_and_bounds() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let s = sys.add_signal("S", Ty::Bits(4));
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(s, bits_const(1, 4), 2),
            drive_cost(s, bits_const(2, 4), 3),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let a = activity(&report, &sys, s);
        assert_eq!(a.events, 2);
        assert_eq!(a.first_event, Some(2));
        assert_eq!(a.last_event, Some(5));
        assert_eq!(a.high_cycles, None, "multi-bit signals have no high time");
    }

    #[test]
    fn high_cycles_handles_initially_high_signals() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let s = sys.add_signal("S", Ty::Bit);
        sys.signals[s.index()].init = Some(ifsyn_spec::Value::Bit(true));
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(s, bit_const(false), 3), // falls at t=3
            wait_cycles(7),                     // run ends at t=10
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        assert_eq!(activity(&report, &sys, s).high_cycles, Some(3));
    }

    #[test]
    fn saturated_handshake_measures_full_utilization() {
        // Back-to-back handshake words: START and DONE tile the timeline.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let start = sys.add_signal("START", Ty::Bit);
        let done = sys.add_signal("DONE", Ty::Bit);
        let tx = sys.add_behavior("tx", m);
        let rx = sys.add_behavior("rx", m);
        let i = sys.add_variable("i", Ty::Int(16), tx);
        let j = sys.add_variable("j", Ty::Int(16), rx);
        sys.behavior_mut(tx).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(31, 16),
            vec![
                drive_cost(start, bit_const(true), 1),
                wait_until(eq(signal(done), bit_const(true))),
                drive_cost(start, bit_const(false), 0),
                wait_until(eq(signal(done), bit_const(false))),
            ],
        )];
        sys.behavior_mut(rx).body = vec![for_loop(
            var(j),
            int_const(0, 16),
            int_const(31, 16),
            vec![
                wait_until(eq(signal(start), bit_const(true))),
                drive_cost(done, bit_const(true), 1),
                wait_until(eq(signal(start), bit_const(false))),
                drive_cost(done, bit_const(false), 0),
            ],
        )];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let _ = done;
        let u = handshake_bus_utilization(&report, &sys, start, 2);
        assert!(u > 0.95, "saturated bus should be ~100% utilised, got {u}");
    }

    #[test]
    fn handshake_words_annotates_full_handshake_with_ids() {
        // Two words on channel id=2, then one on id=5, driven by hand so
        // the edge times are exact.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let start = sys.add_signal("B_START", Ty::Bit);
        let done = sys.add_signal("B_DONE", Ty::Bit);
        let id = sys.add_signal("B_ID", Ty::Bits(3));
        let tx = sys.add_behavior("tx", m);
        let rx = sys.add_behavior("rx", m);
        sys.behavior_mut(tx).body = vec![
            drive_cost(id, bits_const(2, 3), 0),
            // word 1
            drive_cost(start, bit_const(true), 1),
            wait_until(eq(signal(done), bit_const(true))),
            drive_cost(start, bit_const(false), 0),
            wait_until(eq(signal(done), bit_const(false))),
            // word 2
            drive_cost(start, bit_const(true), 1),
            wait_until(eq(signal(done), bit_const(true))),
            drive_cost(start, bit_const(false), 0),
            wait_until(eq(signal(done), bit_const(false))),
            // new message on another channel
            drive_cost(id, bits_const(5, 3), 0),
            drive_cost(start, bit_const(true), 1),
            wait_until(eq(signal(done), bit_const(true))),
            drive_cost(start, bit_const(false), 0),
            wait_until(eq(signal(done), bit_const(false))),
        ];
        let three_words = |sv: &mut Vec<_>| {
            for _ in 0..3 {
                sv.push(wait_until(eq(signal(start), bit_const(true))));
                sv.push(drive_cost(done, bit_const(true), 1));
                sv.push(wait_until(eq(signal(start), bit_const(false))));
                sv.push(drive_cost(done, bit_const(false), 0));
            }
        };
        let mut rx_body = Vec::new();
        three_words(&mut rx_body);
        sys.behavior_mut(rx).body = rx_body;
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let words = handshake_words(report.trace(), start, Some(done), Some(id), Some(0));
        assert_eq!(words.len(), 3, "{words:?}");
        assert_eq!(words[0].id_code, Some(2));
        assert_eq!(words[1].id_code, Some(2));
        assert_eq!(words[2].id_code, Some(5));
        for w in &words {
            let rise = w.done_rise.expect("full handshake has a response");
            let fall = w.done_fall.expect("full handshake closes the word");
            assert!(rise > w.start_rise, "{w:?}");
            assert!(fall >= rise, "{w:?}");
            assert_eq!(w.response_latency(), Some(rise - w.start_rise));
            assert_eq!(w.occupancy(), Some(fall - w.start_rise));
        }
        // Words don't overlap and are in time order.
        assert!(words[0].done_fall.unwrap() <= words[1].start_rise);
        assert!(words[1].done_fall.unwrap() <= words[2].start_rise);
    }

    #[test]
    fn handshake_words_without_done_records_strobes_only() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let start = sys.add_signal("STROBE", Ty::Bit);
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(start, bit_const(true), 1),
            drive_cost(start, bit_const(false), 1),
            drive_cost(start, bit_const(true), 1),
            drive_cost(start, bit_const(false), 1),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let words = handshake_words(report.trace(), start, None, None, None);
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].start_rise, 1);
        assert_eq!(words[1].start_rise, 3);
        assert!(words.iter().all(|w| w.done_rise.is_none()
            && w.done_fall.is_none()
            && w.id_code.is_none()
            && w.response_latency().is_none()));
    }

    #[test]
    fn idle_bus_measures_low_utilization() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let start = sys.add_signal("START", Ty::Bit);
        let done = sys.add_signal("DONE", Ty::Bit);
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            drive_cost(start, bit_const(true), 1),
            drive_cost(start, bit_const(false), 1),
            wait_cycles(98),
        ];
        let report = Simulator::with_config(&sys, SimConfig::new().with_trace())
            .unwrap()
            .run_to_quiescence()
            .unwrap();
        let _ = done;
        let u = handshake_bus_utilization(&report, &sys, start, 2);
        assert!(u < 0.05, "{u}");
    }
}

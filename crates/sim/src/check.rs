//! Explicit-state model checking of specification IR.
//!
//! The simulator executes *one* schedule; the checker executes *all* of
//! them. It interprets the same compiled [`Program`] the kernel runs, but
//! under a nondeterministic scheduler and an optional adversarial fault
//! environment, enumerating every reachable system state by breadth-first
//! exploration. Over the explored graph it decides:
//!
//! * **invariants** — a predicate holds in every reachable state
//!   (e.g. bus grant mutual exclusion);
//! * **terminal properties** — a predicate holds in every quiescent state
//!   (e.g. no run ends with silently corrupted data). A path on which a
//!   process *crashes* — a runtime evaluation error such as a
//!   fault-corrupted address indexing past an array — is recorded as an
//!   error edge and fails every terminal property with the crashing trace
//!   as counterexample, rather than aborting the exploration;
//! * **leads-to properties** — from every reachable state satisfying a
//!   premise, some continuation reaches the goal (`AG(premise → EF
//!   goal)`). This is "eventually, under scheduler fairness": a violation
//!   is a reachable state from which the goal is *unreachable on every
//!   continuation* — precisely the unrecoverable-request shape, not a mere
//!   unfortunate schedule;
//! * **completion bounds** — the maximum total cycle cost over all
//!   maximal paths ([`StateSpace::worst_cost_to_quiescence`]), turning
//!   the hardened protocols' "completes or aborts within N cycles" claim
//!   into a checked theorem (`None` = a cycle exists and no bound does).
//!
//! ## Abstraction
//!
//! States are time-abstracted: a state is the storage (signals,
//! variables), the control point of every process (frames, pcs, locals,
//! loop bounds) and the remaining fault budgets — but no clock. A
//! transition runs one process *atomically* from its current control
//! point up to its next cycle-consuming instruction (or blocking wait),
//! with the elapsed cycles recorded as the transition's cost. Signal
//! writes become visible immediately instead of at the next delta; the
//! reorderings the delta queue can produce are covered by the scheduler's
//! interleaving nondeterminism, so the checker over-approximates the
//! kernel's schedules. One refinement keeps the over-approximation from
//! inventing impossible misses: the kernel's event loop wakes *every*
//! waiter on a signal the instant it changes, so no waiter can sleep
//! through a pulse — the checker mirrors this by **eagerly releasing**
//! waiters after every transition (any process parked at a
//! level-sensitive wait whose condition now holds is advanced past it
//! without waiting to be scheduled). Without this, plain interleaving
//! lets an unscheduled process miss a brief `START` low phase between
//! two back-to-back bus words — a spurious deadlock the synchronous
//! kernel can never exhibit. Two further deliberate choices:
//!
//! * **watchdogs fire only at global stalls** — a `wait ... for N` expires
//!   exactly when no process can otherwise move, modelling the watchdog's
//!   role (escape from permanent blocking) without a clock;
//! * **faults are environment transitions** — each configured
//!   [`EnvFault`] may strike between any two process steps, budgeted in
//!   the state so the exploration stays finite. Fault transitions do not
//!   count against quiescence: a state that is deadlocked unless *another*
//!   fault strikes is a real deadlock.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use ifsyn_estimate::CostModel;
use ifsyn_spec::{BitVec, ParamMode, System, Ty, Value};

use crate::diagnose::{find_cycles, BlockedWait, DeadlockDiagnosis};
use crate::error::SimError;
use crate::eval::{coerce, EvalCtx};
use crate::exec::{eval_code, CArg, CPath, CPathStep, CPlace, CRoot, ExprCode, RegFile};
use crate::kernel::{render_expr, untyped_place_error, write_steps};
use crate::process::{CodeRef, ResolvedPlace, Root, Step};
use crate::program::{Code, Instr, Program, WaitSpec};

/// One call frame of a checker process: the kernel's frame shape with
/// `Eq + Hash` so whole states can be interned.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CkFrame {
    code: CodeRef,
    pc: usize,
    locals: Vec<Value>,
    loop_bounds: Vec<i64>,
    copyback: Vec<(usize, ResolvedPlace, Ty)>,
}

impl CkFrame {
    fn new(code: CodeRef, locals: Vec<Value>) -> Self {
        Self {
            code,
            pc: 0,
            locals,
            loop_bounds: Vec::new(),
            copyback: Vec::new(),
        }
    }
}

/// Control state of one behavior instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CkProc {
    frames: Vec<CkFrame>,
    done: bool,
}

/// One explored system state: storage, every process's control point,
/// and the remaining environment-fault budgets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CkState {
    signals: Vec<Value>,
    vars: Vec<Value>,
    procs: Vec<CkProc>,
    /// Remaining strikes per configured [`EnvFault`], in config order.
    fault_budget: Vec<u32>,
    /// Signals forced by a stuck fault: later writes are swallowed.
    frozen: Vec<bool>,
}

/// A nondeterministic environment fault the checker may inject between
/// any two process steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvFault {
    /// Invert one bit of a signal's current value, at most `budget` times
    /// over any single execution.
    FlipBit {
        /// Signal name as declared in the system.
        signal: String,
        /// Bit position (0 = LSB; use 0 for `Ty::Bit`).
        bit: u32,
        /// Maximum strikes along any one path.
        budget: u32,
    },
    /// Force a signal to all-zeros and swallow every later write
    /// (stuck-at-0); strikes at most once.
    StuckLow {
        /// Signal name as declared in the system.
        signal: String,
    },
}

impl EnvFault {
    fn signal_name(&self) -> &str {
        match self {
            EnvFault::FlipBit { signal, .. } | EnvFault::StuckLow { signal } => signal,
        }
    }

    fn budget(&self) -> u32 {
        match self {
            EnvFault::FlipBit { budget, .. } => *budget,
            EnvFault::StuckLow { .. } => 1,
        }
    }
}

/// Exploration limits and the fault environment.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Abort exploration when the reachable set exceeds this many states.
    pub max_states: usize,
    /// Abort a single atomic run after this many instructions (guards
    /// zero-cost infinite loops, like the kernel's zero-delay guard).
    pub step_budget: u64,
    /// Environment faults the checker may inject nondeterministically.
    pub faults: Vec<EnvFault>,
    /// Statement costs, identical to the simulator's default model so
    /// checked bounds are comparable to simulated finish times.
    pub cost_model: CostModel,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_states: 1 << 18,
            step_budget: 1 << 20,
            faults: Vec::new(),
            cost_model: CostModel::new(),
        }
    }
}

impl CheckConfig {
    /// The default configuration: no faults, 2^18 state cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the state cap.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Adds one environment fault.
    pub fn with_fault(mut self, fault: EnvFault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// An explicit-state model checker over one compiled system.
pub struct Checker<'a> {
    system: &'a System,
    behaviors: Vec<Arc<Code>>,
    procedures: Vec<Arc<Code>>,
    /// Configured faults with their signal names resolved to indices.
    faults: Vec<(usize, EnvFault)>,
    config: CheckConfig,
    max_regs: u16,
}

impl<'a> Checker<'a> {
    /// Builds a checker with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation.
    pub fn new(system: &'a System) -> Result<Self, SimError> {
        Self::with_config(system, CheckConfig::new())
    }

    /// Builds a checker with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] if the system fails validation
    /// or a configured fault names an unknown signal.
    pub fn with_config(system: &'a System, config: CheckConfig) -> Result<Self, SimError> {
        system.check().map_err(|e| SimError::InvalidSystem {
            message: e.to_string(),
        })?;
        let program = Program::compile(system, &config.cost_model);
        let max_regs = program
            .behaviors
            .iter()
            .chain(&program.procedures)
            .map(|c| c.max_regs)
            .max()
            .unwrap_or(0);
        let mut faults = Vec::with_capacity(config.faults.len());
        for f in &config.faults {
            let idx = system
                .signals
                .iter()
                .position(|s| s.name == f.signal_name())
                .ok_or_else(|| SimError::InvalidSystem {
                    message: format!("check fault names unknown signal `{}`", f.signal_name()),
                })?;
            faults.push((idx, f.clone()));
        }
        Ok(Self {
            system,
            behaviors: program.behaviors,
            procedures: program.procedures,
            faults,
            config,
            max_regs,
        })
    }

    fn block(&self, code: CodeRef) -> &Code {
        match code {
            CodeRef::Behavior(i) => &self.behaviors[i],
            CodeRef::Procedure(i) => &self.procedures[i],
        }
    }

    fn initial_state(&self) -> CkState {
        CkState {
            signals: self
                .system
                .signals
                .iter()
                .map(|s| s.initial_value())
                .collect(),
            vars: self
                .system
                .variables
                .iter()
                .map(|v| v.initial_value())
                .collect(),
            procs: (0..self.system.behaviors.len())
                .map(|b| CkProc {
                    frames: vec![CkFrame::new(CodeRef::Behavior(b), Vec::new())],
                    done: false,
                })
                .collect(),
            fault_budget: self.faults.iter().map(|(_, f)| f.budget()).collect(),
            frozen: vec![false; self.system.signals.len()],
        }
    }

    // ---- expression evaluation against a checker state ----

    fn eval_owned(
        &self,
        s: &CkState,
        pid: usize,
        code: &ExprCode,
        regs: &mut RegFile,
    ) -> Result<Value, SimError> {
        if let Some(v) = code.const_value() {
            return Ok(v.clone());
        }
        let locals = s.procs[pid]
            .frames
            .last()
            .map_or(&[][..], |f| f.locals.as_slice());
        let ctx = EvalCtx {
            vars: &s.vars,
            signals: &s.signals,
            locals,
        };
        eval_code(&ctx, code, regs).cloned()
    }

    fn eval_i64(
        &self,
        s: &CkState,
        pid: usize,
        code: &ExprCode,
        regs: &mut RegFile,
    ) -> Result<i64, SimError> {
        self.eval_owned(s, pid, code, regs)?
            .as_i64()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    fn eval_bool(
        &self,
        s: &CkState,
        pid: usize,
        code: &ExprCode,
        regs: &mut RegFile,
    ) -> Result<bool, SimError> {
        self.eval_owned(s, pid, code, regs)?
            .as_bool()
            .map_err(|e| SimError::eval(e.to_string()))
    }

    // ---- place resolution (mirrors the kernel against CkState) ----

    fn local_ty(
        &self,
        s: &CkState,
        pid: usize,
        frame_abs: usize,
        slot: usize,
    ) -> Result<Ty, SimError> {
        match s.procs[pid].frames[frame_abs].code {
            CodeRef::Procedure(p) => {
                let proc = &self.system.procedures[p];
                if slot < proc.slot_count() {
                    Ok(proc.slot_ty(slot).clone())
                } else {
                    Err(SimError::eval(format!("missing local slot {slot}")))
                }
            }
            CodeRef::Behavior(_) => Err(SimError::eval(
                "local slot referenced outside a procedure".to_string(),
            )),
        }
    }

    fn resolve_cpath(
        &self,
        s: &CkState,
        pid: usize,
        path: &CPath,
        frame_abs: usize,
        regs: &mut RegFile,
    ) -> Result<ResolvedPlace, SimError> {
        let root = match path.root {
            CRoot::Var(i) => Root::Var(i as usize),
            CRoot::Local(slot) => Root::Local {
                frame: frame_abs,
                slot: slot as usize,
            },
        };
        let mut steps = Vec::with_capacity(path.steps.len());
        for st in path.steps.iter() {
            match st {
                CPathStep::Elem(code) => {
                    let i = self.eval_i64(s, pid, code, regs)?;
                    let i = usize::try_from(i)
                        .map_err(|_| SimError::eval(format!("negative array index {i}")))?;
                    steps.push(Step::Elem(i));
                }
                CPathStep::Slice(hi, lo) => steps.push(Step::Slice(*hi, *lo)),
                CPathStep::DynSlice(code, width) => {
                    let lo = self.eval_i64(s, pid, code, regs)?;
                    let lo = u32::try_from(lo)
                        .map_err(|_| SimError::eval(format!("negative slice offset {lo}")))?;
                    steps.push(Step::Slice(lo + width - 1, lo));
                }
            }
        }
        Ok(ResolvedPlace { root, steps })
    }

    fn resolve_cplace(
        &self,
        s: &CkState,
        pid: usize,
        place: &CPlace,
        frame_abs: usize,
        regs: &mut RegFile,
    ) -> Result<(ResolvedPlace, Ty), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                Ok((
                    ResolvedPlace {
                        root: Root::Var(*i as usize),
                        steps: Vec::new(),
                    },
                    decl.ty.clone(),
                ))
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let ty = self.local_ty(s, pid, frame_abs, slot)?;
                Ok((
                    ResolvedPlace {
                        root: Root::Local {
                            frame: frame_abs,
                            slot,
                        },
                        steps: Vec::new(),
                    },
                    ty,
                ))
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let rp = self.resolve_cpath(s, pid, path, frame_abs, regs)?;
                Ok((rp, ty))
            }
        }
    }

    fn read_resolved(
        &self,
        s: &CkState,
        pid: usize,
        rp: &ResolvedPlace,
    ) -> Result<Value, SimError> {
        let mut cur: &Value = match rp.root {
            Root::Var(i) => s
                .vars
                .get(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => s.procs[pid]
                .frames
                .get(frame)
                .and_then(|f| f.locals.get(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        for (i, step) in rp.steps.iter().enumerate() {
            match step {
                Step::Elem(idx) => match cur {
                    Value::Array(items) => {
                        cur = items.get(*idx).ok_or_else(|| {
                            SimError::eval(format!("array index {idx} out of range"))
                        })?;
                    }
                    other => {
                        return Err(SimError::eval(format!("indexing non-array value {other}")))
                    }
                },
                Step::Slice(hi, lo) => {
                    if i + 1 != rp.steps.len() {
                        return Err(SimError::eval(
                            "slice must be the last projection of a write target".to_string(),
                        ));
                    }
                    let bits = cur.to_bits();
                    if *hi >= bits.width() {
                        return Err(SimError::eval(format!(
                            "slice {hi} downto {lo} out of range for width {}",
                            bits.width()
                        )));
                    }
                    return Ok(Value::Bits(bits.slice(*hi, *lo)));
                }
            }
        }
        Ok(cur.clone())
    }

    fn write_resolved(
        &self,
        s: &mut CkState,
        pid: usize,
        rp: &ResolvedPlace,
        value: Value,
    ) -> Result<(), SimError> {
        let root: &mut Value = match rp.root {
            Root::Var(i) => s
                .vars
                .get_mut(i)
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?,
            Root::Local { frame, slot } => s.procs[pid]
                .frames
                .get_mut(frame)
                .and_then(|f| f.locals.get_mut(slot))
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}")))?,
        };
        write_steps(root, &rp.steps, value)
    }

    fn read_cplace(
        &self,
        s: &CkState,
        pid: usize,
        place: &CPlace,
        regs: &mut RegFile,
    ) -> Result<Value, SimError> {
        match place {
            CPlace::Var(i) => s
                .vars
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing variable v{i}"))),
            CPlace::Local(slot) => s.procs[pid]
                .frames
                .last()
                .and_then(|f| f.locals.get(*slot as usize))
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing local slot {slot}"))),
            CPlace::Path(path) => {
                let frame_abs = s.procs[pid].frames.len() - 1;
                let rp = self.resolve_cpath(s, pid, path, frame_abs, regs)?;
                self.read_resolved(s, pid, &rp)
            }
        }
    }

    fn write_cplace(
        &self,
        s: &mut CkState,
        pid: usize,
        place: &CPlace,
        value: Value,
        regs: &mut RegFile,
    ) -> Result<(), SimError> {
        match place {
            CPlace::Var(i) => {
                let decl = self
                    .system
                    .variables
                    .get(*i as usize)
                    .ok_or_else(|| SimError::eval(format!("missing variable v{i}")))?;
                s.vars[*i as usize] = coerce(value, &decl.ty);
                Ok(())
            }
            CPlace::Local(slot) => {
                let slot = *slot as usize;
                let frame_abs = s.procs[pid].frames.len() - 1;
                let ty = self.local_ty(s, pid, frame_abs, slot)?;
                let v = coerce(value, &ty);
                s.procs[pid].frames[frame_abs].locals[slot] = v;
                Ok(())
            }
            CPlace::Path(path) => {
                let ty = path
                    .ty
                    .clone()
                    .ok_or_else(|| untyped_place_error(&path.root))?;
                let frame_abs = s.procs[pid].frames.len() - 1;
                let rp = self.resolve_cpath(s, pid, path, frame_abs, regs)?;
                self.write_resolved(s, pid, &rp, coerce(value, &ty))
            }
        }
    }

    /// Applies a signal drive immediately (time-abstracted visibility).
    /// Writes to frozen (stuck) signals are swallowed, mirroring the
    /// fault semantics of [`crate::FaultKind::StuckAt`].
    fn write_signal(&self, s: &mut CkState, idx: usize, value: Value) {
        if !s.frozen[idx] {
            s.signals[idx] = coerce(value, &self.system.signals[idx].ty);
        }
    }

    fn enter_procedure(
        &self,
        s: &mut CkState,
        pid: usize,
        procedure: usize,
        args: &[CArg],
        regs: &mut RegFile,
    ) -> Result<(), SimError> {
        let proc = &self.system.procedures[procedure];
        let caller_frame_abs = s.procs[pid].frames.len() - 1;
        let mut locals = Vec::with_capacity(proc.slot_count());
        let mut copyback = Vec::new();
        for (i, (arg, param)) in args.iter().zip(&proc.params).enumerate() {
            match (arg, param.mode) {
                (CArg::In(e), ParamMode::In) => {
                    locals.push(coerce(self.eval_owned(s, pid, e, regs)?, &param.ty));
                }
                (CArg::Out(place), ParamMode::Out) => {
                    locals.push(Value::default_of(&param.ty));
                    let (rp, ty) = self.resolve_cplace(s, pid, place, caller_frame_abs, regs)?;
                    copyback.push((i, rp, ty));
                }
                (CArg::InOut(place), ParamMode::InOut) => {
                    locals.push(coerce(self.read_cplace(s, pid, place, regs)?, &param.ty));
                    let (rp, ty) = self.resolve_cplace(s, pid, place, caller_frame_abs, regs)?;
                    copyback.push((i, rp, ty));
                }
                _ => {
                    return Err(SimError::eval(format!(
                        "argument mode mismatch calling `{}`",
                        proc.name
                    )))
                }
            }
        }
        for l in &proc.locals {
            locals.push(Value::default_of(&l.ty));
        }
        let mut frame = CkFrame::new(CodeRef::Procedure(procedure), locals);
        frame.copyback = copyback;
        s.procs[pid].frames.push(frame);
        Ok(())
    }

    /// Pops the current frame, applying copy-backs.
    fn leave_frame(&self, s: &mut CkState, pid: usize) -> Result<LeaveOutcome, SimError> {
        let frame = s.procs[pid].frames.pop().expect("frame");
        for (slot, rp, ty) in &frame.copyback {
            let v = coerce(frame.locals[*slot].clone(), ty);
            self.write_resolved(s, pid, rp, v)?;
        }
        if s.procs[pid].frames.is_empty() {
            let bidx = pid; // one process per behavior, same index
            if self.system.behaviors[bidx].repeats {
                s.procs[pid]
                    .frames
                    .push(CkFrame::new(CodeRef::Behavior(bidx), Vec::new()));
                Ok(LeaveOutcome::Restarted)
            } else {
                s.procs[pid].done = true;
                Ok(LeaveOutcome::Finished)
            }
        } else {
            Ok(LeaveOutcome::Returned)
        }
    }

    fn channel_write(
        &self,
        s: &mut CkState,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
        data: Value,
    ) -> Result<(), SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        let ty = &self.system.variables[var_idx].ty;
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                let elem_ty = match ty {
                    Ty::Array { elem, .. } => &**elem,
                    other => other,
                };
                match &mut s.vars[var_idx] {
                    Value::Array(items) => {
                        let slot = items.get_mut(i).ok_or_else(|| {
                            SimError::eval(format!("channel address {i} out of range"))
                        })?;
                        *slot = coerce(data, elem_ty);
                    }
                    _ => {
                        return Err(SimError::eval(
                            "addressed channel write to non-array variable".to_string(),
                        ))
                    }
                }
            }
            None => s.vars[var_idx] = coerce(data, ty),
        }
        Ok(())
    }

    fn channel_read(
        &self,
        s: &CkState,
        channel: ifsyn_spec::ChannelId,
        addr: Option<i64>,
    ) -> Result<Value, SimError> {
        let ch = self.system.channel(channel);
        let var_idx = ch.variable.index();
        match addr {
            Some(i) => {
                let i = usize::try_from(i)
                    .map_err(|_| SimError::eval(format!("negative channel address {i}")))?;
                match &s.vars[var_idx] {
                    Value::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::eval(format!("channel address {i} out of range"))),
                    _ => Err(SimError::eval(
                        "addressed channel read from non-array variable".to_string(),
                    )),
                }
            }
            None => Ok(s.vars[var_idx].clone()),
        }
    }

    // ---- the atomic-run transition executor ----

    /// Runs process `pid` from its current control point up to its next
    /// scheduling point, returning the successor state and the cycle cost.
    ///
    /// Scheduling points: after any cycle-consuming instruction, at an
    /// unsatisfied wait (pc stays at the wait), and after a repeating
    /// root restarts. Returns `Ok(None)` when the process cannot take a
    /// step of the requested kind at all; a returned successor equal to
    /// the source means "blocked with no progress" and is dropped by the
    /// caller.
    ///
    /// With `force_timeout`, the current instruction must be a watchdog
    /// wait whose condition is unsatisfied: the wait is expired (costing
    /// its bound) and execution continues into the re-test/abort code.
    fn run_one(
        &self,
        src: &CkState,
        pid: usize,
        force_timeout: bool,
    ) -> Result<Option<(CkState, u64)>, SimError> {
        if src.procs[pid].done {
            return Ok(None);
        }
        let mut s = src.clone();
        let mut cost: u64 = 0;
        let mut regs = RegFile::with_capacity(self.max_regs as usize);

        if force_timeout {
            let (code_ref, pc) = {
                let f = s.procs[pid].frames.last().expect("frame");
                (f.code, f.pc)
            };
            let expired = match self.block(code_ref).instrs.get(pc) {
                Some(Instr::Wait(WaitSpec::UntilTimeout { cond, cycles })) => {
                    if self.eval_bool(&s, pid, &cond.code, &mut regs)? {
                        return Ok(None);
                    }
                    Some(*cycles)
                }
                Some(Instr::Wait(WaitSpec::UntilSignalIsTimeout {
                    signal,
                    value,
                    cycles,
                })) => {
                    if s.signals[signal.index()] == *value {
                        return Ok(None);
                    }
                    Some(*cycles)
                }
                _ => None,
            };
            match expired {
                Some(cycles) => {
                    cost += cycles;
                    s.procs[pid].frames.last_mut().expect("frame").pc = pc + 1;
                }
                None => return Ok(None),
            }
        }

        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.config.step_budget {
                return Err(SimError::eval(format!(
                    "step budget of {} exceeded in `{}` (zero-cost loop without waits?)",
                    self.config.step_budget, self.system.behaviors[pid].name
                )));
            }
            let (code_ref, pc) = {
                let f = s.procs[pid].frames.last().expect("frame");
                (f.code, f.pc)
            };
            let block = self.block(code_ref);
            let instr = block.instrs.get(pc).ok_or_else(|| {
                SimError::eval(format!("pc {pc} out of range in `{}`", block.name))
            })?;
            let set_pc = |s: &mut CkState, npc: usize| {
                s.procs[pid].frames.last_mut().expect("frame").pc = npc;
            };
            match instr {
                Instr::Assign {
                    place,
                    value,
                    cost: c,
                } => {
                    let v = self.eval_owned(&s, pid, value, &mut regs)?;
                    self.write_cplace(&mut s, pid, place, v, &mut regs)?;
                    set_pc(&mut s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some((s, cost)));
                    }
                }
                Instr::SignalWrite {
                    signal,
                    value,
                    cost: c,
                } => {
                    let v = self.eval_owned(&s, pid, value, &mut regs)?;
                    self.write_signal(&mut s, signal.index(), v);
                    set_pc(&mut s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some((s, cost)));
                    }
                }
                Instr::Jump(target) => set_pc(&mut s, *target),
                Instr::JumpIfNot { cond, target } => {
                    if self.eval_bool(&s, pid, cond, &mut regs)? {
                        set_pc(&mut s, pc + 1);
                    } else {
                        set_pc(&mut s, *target);
                    }
                }
                Instr::LoopInit { var, from, to } => {
                    let bound = self.eval_i64(&s, pid, to, &mut regs)?;
                    let start = self.eval_owned(&s, pid, from, &mut regs)?;
                    self.write_cplace(&mut s, pid, var, start, &mut regs)?;
                    let f = s.procs[pid].frames.last_mut().expect("frame");
                    f.loop_bounds.push(bound);
                    f.pc = pc + 1;
                }
                Instr::LoopTest { var, exit } => {
                    let v = self
                        .read_cplace(&s, pid, var, &mut regs)?
                        .as_i64()
                        .map_err(|e| SimError::eval(e.to_string()))?;
                    let f = s.procs[pid].frames.last_mut().expect("frame");
                    let bound = *f
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v > bound {
                        f.loop_bounds.pop();
                        f.pc = *exit;
                    } else {
                        f.pc = pc + 1;
                    }
                }
                Instr::LoopIncr { var, body, exit } => {
                    let (v, width) = {
                        let cur = self.read_cplace(&s, pid, var, &mut regs)?;
                        let v = cur.as_i64().map_err(|e| SimError::eval(e.to_string()))?;
                        let width = match &cur {
                            Value::Int { width, .. } => *width,
                            other => other.ty().bit_width(),
                        };
                        (v, width)
                    };
                    self.write_cplace(
                        &mut s,
                        pid,
                        var,
                        Value::int(v + 1, width.max(1)),
                        &mut regs,
                    )?;
                    let f = s.procs[pid].frames.last_mut().expect("frame");
                    let bound = *f
                        .loop_bounds
                        .last()
                        .ok_or_else(|| SimError::eval("loop bound stack empty".to_string()))?;
                    if v + 1 > bound {
                        f.loop_bounds.pop();
                        f.pc = *exit;
                    } else {
                        f.pc = *body;
                    }
                }
                Instr::Wait(spec) => match spec {
                    WaitSpec::ForCycles(n) => {
                        set_pc(&mut s, pc + 1);
                        if *n > 0 {
                            cost += *n;
                            return Ok(Some((s, cost)));
                        }
                    }
                    // Event-sensitive waits are abstracted as a plain
                    // scheduling point: the process is resumable whenever
                    // the scheduler picks it (generated protocol code
                    // never uses bare `wait on`).
                    WaitSpec::OnSignals(_) => {
                        set_pc(&mut s, pc + 1);
                        return Ok(Some((s, cost)));
                    }
                    WaitSpec::Until(cond) | WaitSpec::UntilTimeout { cond, .. } => {
                        if self.eval_bool(&s, pid, &cond.code, &mut regs)? {
                            set_pc(&mut s, pc + 1);
                        } else {
                            // Blocked: pc stays at the wait. The watchdog
                            // variant expires only via `force_timeout`.
                            return Ok(Some((s, cost)));
                        }
                    }
                    WaitSpec::UntilSignalIs { signal, value }
                    | WaitSpec::UntilSignalIsTimeout { signal, value, .. } => {
                        if s.signals[signal.index()] == *value {
                            set_pc(&mut s, pc + 1);
                        } else {
                            return Ok(Some((s, cost)));
                        }
                    }
                },
                Instr::Call { procedure, args } => {
                    set_pc(&mut s, pc + 1);
                    self.enter_procedure(&mut s, pid, *procedure, args, &mut regs)?;
                }
                Instr::Ret => match self.leave_frame(&mut s, pid)? {
                    LeaveOutcome::Returned => {}
                    // Yield at a restart so zero-cost repeating bodies
                    // bound every atomic run.
                    LeaveOutcome::Restarted | LeaveOutcome::Finished => {
                        return Ok(Some((s, cost)));
                    }
                },
                Instr::ChannelSend {
                    channel,
                    addr,
                    data,
                    cost: c,
                } => {
                    let a = match addr {
                        Some(code) => Some(self.eval_i64(&s, pid, code, &mut regs)?),
                        None => None,
                    };
                    let v = self.eval_owned(&s, pid, data, &mut regs)?;
                    self.channel_write(&mut s, *channel, a, v)?;
                    set_pc(&mut s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some((s, cost)));
                    }
                }
                Instr::ChannelReceive {
                    channel,
                    addr,
                    target,
                    cost: c,
                } => {
                    let a = match addr {
                        Some(code) => Some(self.eval_i64(&s, pid, code, &mut regs)?),
                        None => None,
                    };
                    let v = self.channel_read(&s, *channel, a)?;
                    self.write_cplace(&mut s, pid, target, v, &mut regs)?;
                    set_pc(&mut s, pc + 1);
                    if *c > 0 {
                        cost += u64::from(*c);
                        return Ok(Some((s, cost)));
                    }
                }
                Instr::Consume { cycles } => {
                    set_pc(&mut s, pc + 1);
                    if *cycles > 0 {
                        cost += *cycles;
                        return Ok(Some((s, cost)));
                    }
                }
                Instr::Assert { cond, note } => {
                    if !self.eval_bool(&s, pid, cond, &mut regs)? {
                        return Err(SimError::AssertionFailed {
                            behavior: self.system.behaviors[pid].name.clone(),
                            note: note.clone(),
                            time: 0,
                        });
                    }
                    set_pc(&mut s, pc + 1);
                }
            }
        }
    }

    /// Advances every process parked at a now-satisfied level-sensitive
    /// wait, chaining through consecutive satisfied waits.
    ///
    /// The kernel's event loop wakes every waiter on a signal the moment
    /// it changes, so a waiter can never sleep through a pulse. The
    /// interleaved transition relation must mirror that by re-arming
    /// waiters eagerly after each write-carrying transition — not when
    /// the scheduler next happens to pick them — or it invents spurious
    /// missed-pulse deadlocks the synchronous kernel cannot exhibit.
    /// Watchdog-bounded waits release along their success path; the
    /// timeout branch remains reachable only via `force_timeout`.
    fn release_waiters(&self, s: &mut CkState) -> Result<(), SimError> {
        let mut regs = RegFile::with_capacity(self.max_regs as usize);
        for pid in 0..s.procs.len() {
            loop {
                if s.procs[pid].done {
                    break;
                }
                let Some(f) = s.procs[pid].frames.last() else {
                    break;
                };
                let (code, pc) = (f.code, f.pc);
                let satisfied = match self.block(code).instrs.get(pc) {
                    Some(Instr::Wait(
                        WaitSpec::Until(cond) | WaitSpec::UntilTimeout { cond, .. },
                    )) => self.eval_bool(s, pid, &cond.code, &mut regs)?,
                    Some(Instr::Wait(
                        WaitSpec::UntilSignalIs { signal, value }
                        | WaitSpec::UntilSignalIsTimeout { signal, value, .. },
                    )) => s.signals[signal.index()] == *value,
                    _ => false,
                };
                if !satisfied {
                    break;
                }
                s.procs[pid].frames.last_mut().expect("frame").pc = pc + 1;
            }
        }
        Ok(())
    }

    /// Enumerates every transition out of `src`: one per runnable process,
    /// watchdog expiries when (and only when) no process can otherwise
    /// move, and budgeted environment-fault strikes. The flag is `true`
    /// when the state is terminal (no process or watchdog transition).
    /// The final list holds crash labels: processes whose next step hits
    /// a runtime error on this path (recorded, not propagated, so one
    /// corrupt path cannot abort the whole exploration).
    fn successors(&self, src: &CkState) -> Result<(Vec<Succ>, bool, Vec<String>), SimError> {
        let mut out = Vec::new();
        let mut crashes = Vec::new();
        let mut live = false;
        for pid in 0..src.procs.len() {
            match self.run_one(src, pid, false) {
                Ok(Some((mut state, cost))) => {
                    self.release_waiters(&mut state)?;
                    if state != *src {
                        live = true;
                        out.push(Succ {
                            state,
                            cost,
                            label: format!("`{}` runs", self.system.behaviors[pid].name),
                        });
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    live = true;
                    crashes.push(format!(
                        "`{}` crashes: {e}",
                        self.system.behaviors[pid].name
                    ));
                }
            }
        }
        if !live {
            for pid in 0..src.procs.len() {
                match self.run_one(src, pid, true) {
                    Ok(Some((mut state, cost))) => {
                        self.release_waiters(&mut state)?;
                        if state != *src {
                            live = true;
                            out.push(Succ {
                                state,
                                cost,
                                label: format!(
                                    "watchdog expires in `{}`",
                                    self.system.behaviors[pid].name
                                ),
                            });
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        live = true;
                        crashes.push(format!(
                            "watchdog expiry in `{}` crashes: {e}",
                            self.system.behaviors[pid].name
                        ));
                    }
                }
            }
        }
        let terminal = !live;
        for (fi, (idx, fault)) in self.faults.iter().enumerate() {
            if src.fault_budget[fi] == 0 {
                continue;
            }
            match fault {
                EnvFault::FlipBit { signal, bit, .. } => {
                    if src.frozen[*idx] {
                        continue;
                    }
                    let cur = &src.signals[*idx];
                    let ty = cur.ty();
                    let mut bits = cur.to_bits();
                    if *bit >= bits.width() {
                        continue;
                    }
                    let inverted = BitVec::from_u64(u64::from(!bits.bit(*bit)), 1);
                    bits.write_slice(*bit, *bit, &inverted);
                    let mut state = src.clone();
                    state.signals[*idx] = Value::from_bits(&ty, &bits);
                    state.fault_budget[fi] -= 1;
                    self.release_waiters(&mut state)?;
                    out.push(Succ {
                        state,
                        cost: 0,
                        label: format!("environment flips `{signal}` bit {bit}"),
                    });
                }
                EnvFault::StuckLow { signal } => {
                    let mut state = src.clone();
                    let ty = &self.system.signals[*idx].ty;
                    state.signals[*idx] = coerce(Value::Bit(false), ty);
                    state.frozen[*idx] = true;
                    state.fault_budget[fi] -= 1;
                    self.release_waiters(&mut state)?;
                    if state != *src {
                        out.push(Succ {
                            state,
                            cost: 0,
                            label: format!("environment forces `{signal}` stuck-at-0"),
                        });
                    }
                }
            }
        }
        Ok((out, terminal, crashes))
    }

    /// Explores the full reachable state space by breadth-first search.
    ///
    /// # Errors
    ///
    /// Returns an error when the reachable set exceeds the configured
    /// state cap, an atomic run exceeds the step budget, or execution
    /// hits a runtime evaluation error or failed assertion.
    pub fn explore(&self) -> Result<StateSpace<'_>, SimError> {
        let mut init = self.initial_state();
        self.release_waiters(&mut init)?;
        let mut index: HashMap<CkState, usize> = HashMap::new();
        let mut states = vec![init.clone()];
        index.insert(init, 0);
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new()];
        let mut parent: Vec<Option<(usize, String, u64)>> = vec![None];
        let mut terminals = Vec::new();
        let mut errors = Vec::new();
        let mut queue = VecDeque::from([0usize]);
        while let Some(si) = queue.pop_front() {
            let src = states[si].clone();
            let (succs, terminal, crashes) = self.successors(&src)?;
            if terminal {
                terminals.push(si);
            }
            for label in crashes {
                errors.push((si, label));
            }
            for succ in succs {
                let ni = match index.get(&succ.state) {
                    Some(&i) => i,
                    None => {
                        let i = states.len();
                        if i >= self.config.max_states {
                            return Err(SimError::eval(format!(
                                "reachable state space exceeds {} states; \
                                 reduce the system or raise CheckConfig::max_states",
                                self.config.max_states
                            )));
                        }
                        states.push(succ.state.clone());
                        index.insert(succ.state, i);
                        edges.push(Vec::new());
                        parent.push(Some((si, succ.label.clone(), succ.cost)));
                        queue.push_back(i);
                        i
                    }
                };
                edges[si].push(Edge {
                    to: ni,
                    cost: succ.cost,
                });
            }
        }
        Ok(StateSpace {
            checker: self,
            states,
            edges,
            parent,
            terminals,
            errors,
        })
    }
}

enum LeaveOutcome {
    /// Returned into the caller frame; keep running.
    Returned,
    /// Repeating root restarted at pc 0.
    Restarted,
    /// Non-repeating behavior finished.
    Finished,
}

struct Succ {
    state: CkState,
    cost: u64,
    label: String,
}

struct Edge {
    to: usize,
    cost: u64,
}

/// Read-only view of one explored state, for property predicates.
pub struct StateView<'a> {
    system: &'a System,
    state: &'a CkState,
}

impl StateView<'_> {
    /// Current value of a signal, by declared name.
    pub fn signal(&self, name: &str) -> Option<&Value> {
        self.system
            .signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| &self.state.signals[i])
    }

    /// `true` when the named bit signal currently holds `'1'`.
    pub fn signal_high(&self, name: &str) -> bool {
        matches!(self.signal(name), Some(Value::Bit(true)))
    }

    /// Current value of a variable, by declared name.
    pub fn variable(&self, name: &str) -> Option<&Value> {
        self.system
            .variables
            .iter()
            .position(|v| v.name == name)
            .map(|i| &self.state.vars[i])
    }

    /// `true` when the named (non-repeating) behavior has finished.
    pub fn done(&self, behavior: &str) -> bool {
        self.system
            .behaviors
            .iter()
            .position(|b| b.name == behavior)
            .is_some_and(|i| self.state.procs[i].done)
    }

    /// `true` when every non-repeating behavior has finished.
    pub fn all_done(&self) -> bool {
        self.system
            .behaviors
            .iter()
            .zip(&self.state.procs)
            .all(|(b, p)| b.repeats || p.done)
    }

    /// Remaining budget of the fault at the given config index.
    pub fn fault_budget(&self, index: usize) -> Option<u32> {
        self.state.fault_budget.get(index).copied()
    }
}

/// The result of checking one property over an explored state space.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// Property name, as given to the check call.
    pub name: String,
    /// `true` when the property holds over the whole space.
    pub holds: bool,
    /// Number of states the check examined.
    pub states: usize,
    /// A concrete violation, when the property fails.
    pub counterexample: Option<Counterexample>,
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds {
            write!(f, "PASS  {} ({} states)", self.name, self.states)
        } else {
            write!(f, "FAIL  {} ({} states)", self.name, self.states)?;
            if let Some(cex) = &self.counterexample {
                write!(f, "\n{cex}")?;
            }
            Ok(())
        }
    }
}

/// A concrete property violation: the transition path from the initial
/// state to the violating state, plus a wait diagnosis of that state
/// when processes are blocked there.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Transition labels from the initial state to the violation.
    pub trace: Vec<String>,
    /// Total cycle cost along the trace.
    pub cost: u64,
    /// Blocked-wait diagnosis of the violating state, when any process
    /// is suspended there (same shape the simulator's deadlock diagnosis
    /// uses, including wait-for cycles).
    pub diagnosis: Option<DeadlockDiagnosis>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  counterexample ({} steps, {} cycles):",
            self.trace.len(),
            self.cost
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "    {:>3}. {step}", i + 1)?;
        }
        if let Some(d) = &self.diagnosis {
            for line in d.to_string().lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// The explored reachable state graph with labeled, costed transitions.
pub struct StateSpace<'a> {
    checker: &'a Checker<'a>,
    states: Vec<CkState>,
    edges: Vec<Vec<Edge>>,
    /// BFS tree: predecessor, transition label and cost per state.
    parent: Vec<Option<(usize, String, u64)>>,
    terminals: Vec<usize>,
    /// Runtime crashes: `(source state, label)` for every path on which
    /// a process's next step hits a runtime evaluation error.
    errors: Vec<(usize, String)>,
}

impl StateSpace<'_> {
    /// Number of distinct reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of explored transitions.
    pub fn transition_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Number of terminal (quiescent) states: no process can move and no
    /// watchdog can expire. Fault transitions do not count — a state that
    /// is stuck unless another fault strikes is genuinely stuck.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    fn view_of(&self, i: usize) -> StateView<'_> {
        StateView {
            system: self.checker.system,
            state: &self.states[i],
        }
    }

    /// Checks that `pred` holds in every reachable state.
    pub fn check_invariant(
        &self,
        name: &str,
        pred: impl Fn(&StateView<'_>) -> bool,
    ) -> PropertyReport {
        for i in 0..self.states.len() {
            if !pred(&self.view_of(i)) {
                return self.failed(name, i);
            }
        }
        self.passed(name)
    }

    /// Number of reachable runtime crashes (paths on which a process's
    /// next step hits an evaluation error, e.g. a fault-corrupted address
    /// indexing past an array).
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }

    /// Checks that `pred` holds in every terminal (quiescent) state. Any
    /// reachable runtime crash also fails the property — a path that dies
    /// in an evaluation error certainly did not end in a good quiescent
    /// state — with the crashing trace as counterexample.
    pub fn check_terminal(
        &self,
        name: &str,
        pred: impl Fn(&StateView<'_>) -> bool,
    ) -> PropertyReport {
        if let Some((src, label)) = self.errors.first() {
            let mut cex = self.counterexample(*src);
            cex.trace.push(label.clone());
            return PropertyReport {
                name: name.to_string(),
                holds: false,
                states: self.states.len(),
                counterexample: Some(cex),
            };
        }
        for &i in &self.terminals {
            if !pred(&self.view_of(i)) {
                return self.failed(name, i);
            }
        }
        self.passed(name)
    }

    /// Checks `AG(premise → EF goal)`: from every reachable state where
    /// `premise` holds, some continuation reaches a state where `goal`
    /// holds. A violation is a reachable premise-state from which the
    /// goal is unreachable on *every* continuation — the unrecoverable
    /// shape, independent of scheduling luck.
    pub fn check_leads_to(
        &self,
        name: &str,
        premise: impl Fn(&StateView<'_>) -> bool,
        goal: impl Fn(&StateView<'_>) -> bool,
    ) -> PropertyReport {
        let n = self.states.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, es) in self.edges.iter().enumerate() {
            for e in es {
                rev[e.to].push(i);
            }
        }
        let mut reaches = vec![false; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, r) in reaches.iter_mut().enumerate() {
            if goal(&self.view_of(i)) {
                *r = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &p in &rev[i] {
                if !reaches[p] {
                    reaches[p] = true;
                    queue.push_back(p);
                }
            }
        }
        for (i, reached) in reaches.iter().enumerate() {
            if !reached && premise(&self.view_of(i)) {
                return self.failed(name, i);
            }
        }
        self.passed(name)
    }

    /// The maximum total cycle cost over all maximal paths from the
    /// initial state, or `None` when a reachable cycle makes the cost
    /// unbounded. For a hardened protocol this is the checked completion
    /// bound: every schedule (and every in-budget fault pattern) reaches
    /// quiescence within the returned number of cycles.
    pub fn worst_cost_to_quiescence(&self) -> Option<u64> {
        let n = self.states.len();
        let mut memo: Vec<u64> = vec![0; n];
        let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = 1;
        while let Some(top) = stack.last_mut() {
            let (v, ei) = (top.0, top.1);
            if ei < self.edges[v].len() {
                top.1 += 1;
                let to = self.edges[v][ei].to;
                match color[to] {
                    0 => {
                        color[to] = 1;
                        stack.push((to, 0));
                    }
                    1 => return None, // reachable cycle: unbounded
                    _ => {}
                }
            } else {
                stack.pop();
                color[v] = 2;
                memo[v] = self.edges[v]
                    .iter()
                    .map(|e| e.cost + memo[e.to])
                    .max()
                    .unwrap_or(0);
            }
        }
        Some(memo[0])
    }

    fn passed(&self, name: &str) -> PropertyReport {
        PropertyReport {
            name: name.to_string(),
            holds: true,
            states: self.states.len(),
            counterexample: None,
        }
    }

    fn failed(&self, name: &str, state: usize) -> PropertyReport {
        PropertyReport {
            name: name.to_string(),
            holds: false,
            states: self.states.len(),
            counterexample: Some(self.counterexample(state)),
        }
    }

    /// Builds the trace from the initial state to `state` along the BFS
    /// tree, plus a blocked-wait diagnosis of the state itself.
    fn counterexample(&self, state: usize) -> Counterexample {
        let mut trace = Vec::new();
        let mut cost = 0u64;
        let mut cur = state;
        while let Some((pred, label, c)) = &self.parent[cur] {
            trace.push(label.clone());
            cost += c;
            cur = *pred;
        }
        trace.reverse();
        Counterexample {
            trace,
            cost,
            diagnosis: self.diagnose(state, cost),
        }
    }

    /// Per-process wait diagnosis of one state, in the simulator's
    /// [`DeadlockDiagnosis`] shape; the diagnosis time is the trace cost.
    fn diagnose(&self, state: usize, time: u64) -> Option<DeadlockDiagnosis> {
        let ck = self.checker;
        let st = &self.states[state];
        let mut regs = RegFile::with_capacity(ck.max_regs as usize);
        // (pid, rendered wait, sensitivity signal indices)
        let mut entries: Vec<(usize, String, Vec<usize>)> = Vec::new();
        for (pid, p) in st.procs.iter().enumerate() {
            if p.done {
                continue;
            }
            let Some(f) = p.frames.last() else { continue };
            let Some(Instr::Wait(spec)) = ck.block(f.code).instrs.get(f.pc) else {
                continue;
            };
            let (satisfied, wait, sens) = match spec {
                WaitSpec::ForCycles(_) | WaitSpec::OnSignals(_) => continue,
                WaitSpec::Until(cond) | WaitSpec::UntilTimeout { cond, .. } => (
                    ck.eval_bool(st, pid, &cond.code, &mut regs)
                        .unwrap_or(false),
                    format!("wait until {}", render_expr(ck.system, &cond.display)),
                    cond.sensitivity.iter().map(|s| s.index()).collect(),
                ),
                WaitSpec::UntilSignalIs { signal, value }
                | WaitSpec::UntilSignalIsTimeout { signal, value, .. } => (
                    st.signals[signal.index()] == *value,
                    format!(
                        "wait until {} = {value}",
                        ck.system.signals[signal.index()].name
                    ),
                    vec![signal.index()],
                ),
            };
            if !satisfied {
                entries.push((pid, wait, sens));
            }
        }
        if entries.is_empty() {
            return None;
        }
        let blocked = entries
            .iter()
            .map(|(pid, wait, sens)| BlockedWait {
                behavior: ck.system.behaviors[*pid].name.clone(),
                wait: wait.clone(),
                observed: sens
                    .iter()
                    .map(|&s| (ck.system.signals[s].name.clone(), st.signals[s].to_string()))
                    .collect(),
            })
            .collect();
        let writes: Vec<Vec<bool>> = entries
            .iter()
            .map(|(pid, _, _)| self.written_signals(*pid))
            .collect();
        let edges: Vec<Vec<usize>> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, _, sens))| {
                (0..entries.len())
                    .filter(|&j| j != i && sens.iter().any(|&s| writes[j][s]))
                    .collect()
            })
            .collect();
        let cycles = find_cycles(entries.len(), &edges)
            .into_iter()
            .map(|cycle| {
                cycle
                    .into_iter()
                    .map(|i| ck.system.behaviors[entries[i].0].name.clone())
                    .collect()
            })
            .collect();
        Some(DeadlockDiagnosis {
            time,
            blocked,
            cycles,
        })
    }

    /// Signals a behavior's code can drive, including through called
    /// procedures (transitively); indexed by signal index.
    fn written_signals(&self, behavior: usize) -> Vec<bool> {
        let ck = self.checker;
        let mut out = vec![false; ck.system.signals.len()];
        let mut visited = vec![false; ck.procedures.len()];
        let mut stack: Vec<&[Instr]> = vec![&ck.behaviors[behavior].instrs];
        while let Some(instrs) = stack.pop() {
            for instr in instrs {
                match instr {
                    Instr::SignalWrite { signal, .. } => out[signal.index()] = true,
                    Instr::Call { procedure, .. } if !visited[*procedure] => {
                        visited[*procedure] = true;
                        stack.push(&ck.procedures[*procedure].instrs);
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;

    /// Two-phase handshake: `P` raises REQ and waits for ACK; `C` waits
    /// for REQ and raises ACK.
    fn handshake() -> System {
        let mut sys = System::new("hs");
        let m = sys.add_module("chip");
        let p = sys.add_behavior("P", m);
        let c = sys.add_behavior("C", m);
        let req = sys.add_signal("REQ", Ty::Bit);
        let ack = sys.add_signal("ACK", Ty::Bit);
        sys.behavior_mut(p).body = vec![
            drive(req, bit_const(true)),
            wait_until(eq(signal(ack), bit_const(true))),
            drive(req, bit_const(false)),
        ];
        sys.behavior_mut(c).body = vec![
            wait_until(eq(signal(req), bit_const(true))),
            drive(ack, bit_const(true)),
        ];
        sys
    }

    #[test]
    fn handshake_completes_on_every_schedule() {
        let sys = handshake();
        let ck = Checker::new(&sys).unwrap();
        let ss = ck.explore().unwrap();
        assert!(ss.state_count() > 1);
        assert!(ss.terminal_count() >= 1);
        let report = ss.check_terminal("handshake completes", |v| v.all_done());
        assert!(report.holds, "{report}");
    }

    #[test]
    fn cross_wait_deadlock_is_found_with_cycle() {
        let mut sys = System::new("dl");
        let m = sys.add_module("chip");
        let p = sys.add_behavior("P", m);
        let c = sys.add_behavior("C", m);
        let req = sys.add_signal("REQ", Ty::Bit);
        let ack = sys.add_signal("ACK", Ty::Bit);
        // Both sides wait before driving: classic circular wait.
        sys.behavior_mut(p).body = vec![
            wait_until(eq(signal(ack), bit_const(true))),
            drive(req, bit_const(true)),
        ];
        sys.behavior_mut(c).body = vec![
            wait_until(eq(signal(req), bit_const(true))),
            drive(ack, bit_const(true)),
        ];
        let ck = Checker::new(&sys).unwrap();
        let ss = ck.explore().unwrap();
        let report = ss.check_terminal("completes", |v| v.all_done());
        assert!(!report.holds);
        let cex = report.counterexample.expect("counterexample");
        let diag = cex.diagnosis.expect("diagnosis");
        assert_eq!(diag.blocked.len(), 2);
        let cycle = diag.cycles.first().expect("wait-for cycle");
        assert!(cycle.contains(&"P".to_string()) && cycle.contains(&"C".to_string()));
    }

    #[test]
    fn interleavings_reach_joint_state_and_bound_is_exact() {
        let mut sys = System::new("diamond");
        let m = sys.add_module("chip");
        let p1 = sys.add_behavior("P1", m);
        let p2 = sys.add_behavior("P2", m);
        let a = sys.add_variable("A", Ty::Int(8), p1);
        let b = sys.add_variable("B", Ty::Int(8), p2);
        sys.behavior_mut(p1).body = vec![assign(var(a), int_const(1, 8))];
        sys.behavior_mut(p2).body = vec![assign(var(b), int_const(1, 8))];
        let ck = Checker::new(&sys).unwrap();
        let ss = ck.explore().unwrap();
        let both_set = |v: &StateView<'_>| {
            v.variable("A").unwrap().as_i64().unwrap() == 1
                && v.variable("B").unwrap().as_i64().unwrap() == 1
        };
        let report = ss.check_invariant("never both set", |v| !both_set(v));
        assert!(!report.holds, "the joint state must be reachable");
        // Two unit-cost assigns on every maximal path.
        assert_eq!(ss.worst_cost_to_quiescence(), Some(2));
    }

    #[test]
    fn repeating_server_eventually_grants() {
        let mut sys = System::new("grant");
        let m = sys.add_module("chip");
        let cl = sys.add_behavior("CLIENT", m);
        let sv = sys.add_behavior("SERVER", m);
        let req = sys.add_signal("REQ", Ty::Bit);
        let gnt = sys.add_signal("GNT", Ty::Bit);
        sys.behavior_mut(cl).body = vec![
            drive(req, bit_const(true)),
            wait_until(eq(signal(gnt), bit_const(true))),
            drive(req, bit_const(false)),
        ];
        sys.behavior_mut(sv).body = vec![
            wait_until(eq(signal(req), bit_const(true))),
            drive(gnt, bit_const(true)),
            wait_until(eq(signal(req), bit_const(false))),
            drive(gnt, bit_const(false)),
        ];
        sys.behavior_mut(sv).repeats = true;
        let ck = Checker::new(&sys).unwrap();
        let ss = ck.explore().unwrap();
        let report = ss.check_leads_to(
            "pending request is eventually granted",
            |v| v.signal_high("REQ") && !v.signal_high("GNT"),
            |v| v.signal_high("GNT"),
        );
        assert!(report.holds, "{report}");
    }

    #[test]
    fn watchdog_expires_only_at_global_stall() {
        let mut sys = System::new("wd");
        let m = sys.add_module("chip");
        let p = sys.add_behavior("P", m);
        let ack = sys.add_signal("ACK", Ty::Bit);
        let x = sys.add_variable("X", Ty::Int(8), p);
        sys.behavior_mut(p).body = vec![
            wait_until_for(eq(signal(ack), bit_const(true)), 8),
            if_else(
                eq(signal(ack), bit_const(true)),
                vec![assign(var(x), int_const(1, 8))],
                vec![assign(var(x), int_const(2, 8))],
            ),
        ];
        let ck = Checker::new(&sys).unwrap();
        let ss = ck.explore().unwrap();
        // ACK is never driven: the watchdog must fire and the abort
        // branch must run to quiescence on every schedule.
        let report = ss.check_terminal("aborts via watchdog", |v| {
            v.done("P") && v.variable("X").unwrap().as_i64().unwrap() == 2
        });
        assert!(report.holds, "{report}");
        let worst = ss.worst_cost_to_quiescence().expect("bounded");
        assert!(
            worst >= 8,
            "watchdog bound {worst} must include the timeout"
        );
    }

    #[test]
    fn flip_bit_fault_wakes_a_blocked_waiter() {
        let build = || {
            let mut sys = System::new("flip");
            let m = sys.add_module("chip");
            let p = sys.add_behavior("P", m);
            let ack = sys.add_signal("ACK", Ty::Bit);
            let x = sys.add_variable("X", Ty::Int(8), p);
            sys.behavior_mut(p).body = vec![
                wait_until(eq(signal(ack), bit_const(true))),
                assign(var(x), int_const(1, 8)),
            ];
            sys
        };
        let sys = build();
        let ck = Checker::new(&sys).unwrap();
        let ss = ck.explore().unwrap();
        let x_zero = |v: &StateView<'_>| v.variable("X").unwrap().as_i64().unwrap() == 0;
        assert!(ss.check_invariant("x stays 0", x_zero).holds);

        let sys = build();
        let config = CheckConfig::new().with_fault(EnvFault::FlipBit {
            signal: "ACK".to_string(),
            bit: 0,
            budget: 1,
        });
        let ck = Checker::with_config(&sys, config).unwrap();
        let ss = ck.explore().unwrap();
        let report = ss.check_invariant("x stays 0", x_zero);
        assert!(!report.holds, "the fault must wake P");
        let cex = report.counterexample.expect("counterexample");
        assert!(
            cex.trace.iter().any(|s| s.contains("flips `ACK`")),
            "trace must show the fault strike: {:?}",
            cex.trace
        );
    }

    #[test]
    fn stuck_low_ack_blocks_the_handshake() {
        let sys = handshake();
        let config = CheckConfig::new().with_fault(EnvFault::StuckLow {
            signal: "ACK".to_string(),
        });
        let ck = Checker::with_config(&sys, config).unwrap();
        let ss = ck.explore().unwrap();
        let report = ss.check_terminal("handshake completes", |v| v.all_done());
        assert!(!report.holds, "a stuck ACK must strand P");
        let diag = report
            .counterexample
            .expect("counterexample")
            .diagnosis
            .expect("diagnosis");
        assert!(diag.blocked.iter().any(|b| b.behavior == "P"));
    }

    #[test]
    fn exploration_is_deterministic() {
        let sys = handshake();
        let ck = Checker::new(&sys).unwrap();
        let a = ck.explore().unwrap();
        let b = ck.explore().unwrap();
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.transition_count(), b.transition_count());
        assert_eq!(a.terminal_count(), b.terminal_count());
        assert_eq!(a.worst_cost_to_quiescence(), b.worst_cost_to_quiescence());
    }

    #[test]
    fn unknown_fault_signal_is_rejected() {
        let sys = handshake();
        let config = CheckConfig::new().with_fault(EnvFault::StuckLow {
            signal: "NOPE".to_string(),
        });
        let err = Checker::with_config(&sys, config)
            .err()
            .expect("must be rejected");
        assert!(err.to_string().contains("NOPE"));
    }
}

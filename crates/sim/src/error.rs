//! Error type for simulation.

use std::error::Error;
use std::fmt;

use crate::diagnose::DeadlockDiagnosis;

/// Errors produced while compiling or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The specification failed validation before simulation.
    InvalidSystem {
        /// The underlying validation message.
        message: String,
    },
    /// A process executed too many zero-time instructions in one
    /// activation (a combinational loop or a `while true` without waits).
    ZeroDelayLoop {
        /// Name of the offending behavior.
        behavior: String,
        /// Simulation time at which the loop was detected.
        time: u64,
    },
    /// Too many delta cycles elapsed without time advancing (processes
    /// exchanging zero-delay signal writes forever).
    DeltaOverflow {
        /// Simulation time at which the overflow was detected.
        time: u64,
    },
    /// Simulation time exceeded [`crate::SimConfig::max_time`].
    Timeout {
        /// The configured limit.
        max_time: u64,
        /// Which processes were suspended on waits when the limit was
        /// hit; `None` when nothing was blocked (the system was simply
        /// still making progress).
        diagnosis: Option<Box<DeadlockDiagnosis>>,
    },
    /// The system went quiescent with non-repeating processes still
    /// suspended on waits that no remaining event can satisfy. Only
    /// raised when [`crate::SimConfig::fail_on_deadlock`] is set.
    Deadlock {
        /// Per-process wait diagnosis, including wait-for cycles.
        diagnosis: Box<DeadlockDiagnosis>,
    },
    /// A runtime evaluation error (type mismatch, index out of range).
    Eval {
        /// Human-readable description including the evaluation site.
        message: String,
    },
    /// A specification assertion evaluated false.
    AssertionFailed {
        /// The behavior whose assertion failed.
        behavior: String,
        /// The assertion's diagnostic note.
        note: String,
        /// Simulation time of the failure.
        time: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSystem { message } => {
                write!(f, "invalid system: {message}")
            }
            SimError::ZeroDelayLoop { behavior, time } => {
                write!(f, "zero-delay loop in behavior `{behavior}` at time {time}")
            }
            SimError::DeltaOverflow { time } => {
                write!(f, "delta cycle overflow at time {time}")
            }
            SimError::Timeout {
                max_time,
                diagnosis,
            } => {
                write!(f, "simulation exceeded max time of {max_time} cycles")?;
                if let Some(d) = diagnosis {
                    write!(f, "; {}", d.to_string().trim_end())?;
                }
                Ok(())
            }
            SimError::Deadlock { diagnosis } => {
                write!(f, "{}", diagnosis.to_string().trim_end())
            }
            SimError::Eval { message } => write!(f, "evaluation error: {message}"),
            SimError::AssertionFailed {
                behavior,
                note,
                time,
            } => write!(
                f,
                "assertion failed in behavior `{behavior}` at time {time}: {note}"
            ),
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Convenience constructor for evaluation errors.
    pub fn eval(message: impl Into<String>) -> Self {
        SimError::Eval {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SimError::ZeroDelayLoop {
            behavior: "P".into(),
            time: 7,
        };
        assert!(e.to_string().contains("`P`"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}

//! Differential suite: the parallel delta-cycle kernel must be
//! *indistinguishable* from the scalar kernel.
//!
//! The contract of [`SimConfig::with_sim_threads`] is total equality, not
//! statistical equivalence: for every input system and every thread count
//! the parallel kernel must produce a field-for-field equal `SimReport` —
//! same finish times, same delta/instruction/heap counters, same final
//! storage, same trace events in the same order — or the *same* error.
//! These tests generate randomized multi-process systems with forced
//! same-delta write conflicts (many processes driving one shared signal
//! in one delta) and same-delta wake races (many processes parked on one
//! signal released at once), then assert scalar/parallel equality at
//! 2, 3, 4 and 8 simulation threads.

use ifsyn_sim::{SimConfig, SimError, SimReport, Simulator};
use ifsyn_spec::dsl::*;
use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::{SignalId, Stmt, System, Ty, Value, VarId};

/// Thread counts every system is replayed at.
const THREADS: [usize; 4] = [2, 3, 4, 8];

/// One producer statement drawn from a mix of compute, timed writes,
/// waits and branches. `clash` is the shared conflict signal.
fn gen_stmt(
    rng: &mut SplitMix64,
    seed: VarId,
    acc: VarId,
    idx: VarId,
    data: SignalId,
    clash: SignalId,
    depth: u32,
) -> Stmt {
    let pick = if depth == 0 {
        rng.below(6)
    } else {
        rng.below(9)
    };
    match pick {
        0 => assign(
            var(acc),
            add(load(var(acc)), int_const(rng.range_i64(1, 9), 16)),
        ),
        1 => assign_cost(
            var(acc),
            add(load(var(acc)), mul(load(var(seed)), int_const(2, 16))),
            rng.range_u32(1, 3),
        ),
        2 => Stmt::compute(rng.range_u64(1, 5), "work"),
        3 => wait_cycles(rng.range_u64(1, 4)),
        4 => drive_cost(data, load(var(acc)), rng.range_u32(0, 2)),
        // Same-delta conflict: every process reaches one of these each
        // run, and many land in the same delta cycle.
        5 => drive_cost(clash, load(var(acc)), 0),
        6 => if_else(
            lt(load(var(seed)), int_const(rng.range_i64(10, 90), 16)),
            vec![gen_stmt(rng, seed, acc, idx, data, clash, depth - 1)],
            vec![gen_stmt(rng, seed, acc, idx, data, clash, depth - 1)],
        ),
        7 => for_loop(
            var(idx),
            int_const(0, 8),
            int_const(rng.range_i64(1, 4), 8),
            vec![gen_stmt(rng, seed, acc, idx, data, clash, 0)],
        ),
        _ => if_then(
            eq(load(var(seed)), int_const(rng.range_i64(0, 99), 16)),
            vec![gen_stmt(rng, seed, acc, idx, data, clash, depth - 1)],
        ),
    }
}

/// A randomized system of `couples` variable-disjoint producer/consumer
/// pairs plus one starter process. All producers park on the shared `GO`
/// signal, so the starter's single drive wakes every one of them in the
/// same delta (a wake race the parallel kernel must order exactly like
/// the scalar kernel); all processes drive the shared `CLASH` signal,
/// forcing same-delta write conflicts across shards.
fn gen_par_system(rng: &mut SplitMix64, couples: usize) -> System {
    let mut sys = System::new("pardiff");
    let m0 = sys.add_module("left");
    let m1 = sys.add_module("right");
    let go = sys.add_signal("GO", Ty::Bit);
    let clash = sys.add_signal_init("CLASH", Ty::Int(16), Value::int(0, 16));

    // The starter: a little work, then release the field.
    let s = sys.add_behavior("starter", m0);
    sys.behavior_mut(s).body = vec![
        Stmt::compute(rng.range_u64(1, 3), "warmup"),
        drive_cost(go, bit_const(true), 0),
    ];

    for i in 0..couples {
        let req = sys.add_signal(format!("REQ{i}"), Ty::Bit);
        let ack = sys.add_signal(format!("ACK{i}"), Ty::Bit);
        let data = sys.add_signal_init(format!("DATA{i}"), Ty::Int(16), Value::int(0, 16));

        let p = sys.add_behavior(format!("prod{i}"), if i % 2 == 0 { m0 } else { m1 });
        let seed = sys.add_variable_init(
            format!("p{i}_seed"),
            Ty::Int(16),
            p,
            Value::int(rng.range_i64(0, 99), 16),
        );
        let acc = sys.add_variable(format!("p{i}_acc"), Ty::Int(16), p);
        let idx = sys.add_variable(format!("p{i}_idx"), Ty::Int(8), p);
        let mut body = vec![wait_until(eq(signal(go), bit_const(true)))];
        for _ in 0..3 + rng.below(5) {
            body.push(gen_stmt(rng, seed, acc, idx, data, clash, 2));
        }
        body.extend([
            drive_cost(clash, add(load(var(acc)), int_const(1, 16)), 0),
            drive_cost(data, load(var(acc)), 1),
            drive_cost(req, bit_const(true), 1),
            wait_until(eq(signal(ack), bit_const(true))),
            drive_cost(req, bit_const(false), 1),
        ]);
        sys.behavior_mut(p).body = body;

        let c = sys.add_behavior(format!("cons{i}"), if i % 2 == 0 { m1 } else { m0 });
        let seen = sys.add_variable(format!("c{i}_seen"), Ty::Int(16), c);
        sys.behavior_mut(c).body = vec![
            wait_until(eq(signal(req), bit_const(true))),
            assign(var(seen), signal(data)),
            drive_cost(clash, load(var(seen)), 0),
            Stmt::compute(rng.range_u64(1, 3), "latch"),
            drive_cost(ack, bit_const(true), 1),
        ];
    }
    sys
}

/// Runs `sys` scalar, then at every thread count, asserting the entire
/// `Result<SimReport, SimError>` is equal, and returns the scalar result.
fn check_all_thread_counts(
    sys: &System,
    base: &SimConfig,
    seed: u64,
) -> Result<SimReport, SimError> {
    let scalar = Simulator::with_config(sys, base.clone().with_sim_threads(1))
        .and_then(|s| s.run_to_quiescence());
    for &t in &THREADS {
        let par = Simulator::with_config(sys, base.clone().with_sim_threads(t))
            .and_then(|s| s.run_to_quiescence());
        assert_eq!(
            par, scalar,
            "parallel kernel at {t} threads diverged from scalar (seed {seed})"
        );
    }
    scalar
}

#[test]
fn parallel_matches_scalar_on_random_programs() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0x9a11_e700 + seed);
        let couples = 2 + rng.below(5) as usize;
        let sys = gen_par_system(&mut rng, couples);
        let report = check_all_thread_counts(&sys, &SimConfig::new(), seed)
            .expect("random handshake programs quiesce");
        // Every couple completed its handshake.
        for i in 0..couples {
            assert!(
                report
                    .final_signal_by_name(&format!("ACK{i}"))
                    .is_some_and(|v| *v == Value::Bit(true)),
                "couple {i} never acknowledged (seed {seed})"
            );
        }
    }
}

#[test]
fn parallel_matches_scalar_with_tracing() {
    // Trace order is part of the contract: events must appear in the
    // same order with the same timestamps at any thread count.
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0x7ace_5000 + seed);
        let sys = gen_par_system(&mut rng, 4);
        let config = SimConfig::new().with_trace();
        let scalar = Simulator::with_config(&sys, config.clone())
            .and_then(|s| s.run_to_quiescence())
            .expect("traced run quiesces");
        assert!(!scalar.trace().is_empty(), "trace recorded (seed {seed})");
        for &t in &THREADS {
            let par = Simulator::with_config(&sys, config.clone().with_sim_threads(t))
                .and_then(|s| s.run_to_quiescence())
                .expect("traced parallel run quiesces");
            assert_eq!(
                par.trace(),
                scalar.trace(),
                "trace diverged at {t} threads (seed {seed})"
            );
        }
    }
}

#[test]
fn parallel_rounds_actually_engage() {
    // Guard against the suite silently degenerating to the scalar path:
    // with many always-runnable couples, the planner must produce
    // multiple shards and the kernel must run fork/join rounds.
    let mut rng = SplitMix64::new(0xf0_97);
    let sys = gen_par_system(&mut rng, 6);
    let (report, stats) = Simulator::with_config(&sys, SimConfig::new().with_sim_threads(4))
        .expect("system compiles")
        .run_to_quiescence_with_stats()
        .expect("system quiesces");
    assert!(
        stats.shards > 1,
        "planner produced {} shard(s)",
        stats.shards
    );
    assert!(
        stats.parallel_rounds > 0,
        "no parallel rounds ran (stats: {stats:?})"
    );
    assert_eq!(stats.shard_instrs.len(), stats.shards);
    assert_eq!(
        stats.shard_instrs.iter().sum::<u64>(),
        report.total_instrs() - scalar_round_instrs(&sys),
        "per-shard instruction counts must cover exactly the parallel rounds"
    );
}

/// Instructions the same run executes outside parallel rounds (scalar
/// fast paths): total minus the per-shard counters of the parallel run.
fn scalar_round_instrs(sys: &System) -> u64 {
    let (report, stats) = Simulator::with_config(sys, SimConfig::new().with_sim_threads(4))
        .expect("system compiles")
        .run_to_quiescence_with_stats()
        .expect("system quiesces");
    report.total_instrs() - stats.shard_instrs.iter().sum::<u64>()
}

#[test]
fn parallel_matches_scalar_on_assertion_failures() {
    // An assertion that fails mid-field: the parallel kernel must report
    // the *same* error (same behavior, note and time) as the scalar one,
    // and the assertions-checked counter must agree on the error-free
    // prefix semantics.
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0xbad_a55e + seed);
        let mut sys = gen_par_system(&mut rng, 4);
        // Plant a failing assertion in one producer (after its wait on
        // GO, so several processes are running when it trips).
        let victim = 1 + (rng.below(4) as usize) * 2; // a prod{i} behavior
        let body = &mut sys.behaviors[victim].body;
        let at = 1 + (rng.below((body.len() - 1) as u64) as usize);
        body.insert(
            at,
            Stmt::assert(eq(int_const(1, 8), int_const(2, 8)), "planted failure"),
        );
        let scalar = Simulator::new(&sys).and_then(|s| s.run_to_quiescence());
        assert!(
            matches!(scalar, Err(SimError::AssertionFailed { .. })),
            "planted assertion did not trip (seed {seed}): {scalar:?}"
        );
        for &t in &THREADS {
            let par = Simulator::with_config(&sys, SimConfig::new().with_sim_threads(t))
                .and_then(|s| s.run_to_quiescence());
            assert_eq!(par, scalar, "error diverged at {t} threads (seed {seed})");
        }
    }
}

#[test]
fn parallel_matches_scalar_on_paper_systems() {
    // The whole point of the exercise: the paper's own systems must
    // simulate identically under the parallel kernel.
    let systems: Vec<System> = vec![
        ifsyn_systems::fig1().system,
        ifsyn_systems::fig3_system(),
        ifsyn_systems::flc().system,
        ifsyn_systems::answering_machine().system,
        ifsyn_systems::ethernet_coprocessor().system,
    ];
    for (i, sys) in systems.iter().enumerate() {
        check_all_thread_counts(sys, &SimConfig::new().with_trace(), i as u64)
            .expect("paper system quiesces");
    }
}

#[test]
fn parallel_matches_scalar_on_synthetic_fields() {
    use ifsyn_systems::SynthConfig;
    for seed in [3u64, 17, 51] {
        let s = ifsyn_systems::synth_system(
            &SynthConfig::new()
                .with_couples(5)
                .with_rounds(6)
                .with_compute(24)
                .with_seed(seed),
        );
        check_all_thread_counts(&s.system, &SimConfig::new().with_trace(), seed)
            .expect("synthetic field quiesces");
    }
}

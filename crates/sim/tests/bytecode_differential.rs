//! Differential test: the register-bytecode expression engine must agree
//! with the reference tree-walking evaluator on randomized expressions.
//!
//! Both entry points live in `ifsyn_sim::testing`: `eval_tree` walks the
//! `Expr` tree directly, `eval_bytecode` runs the production pipeline
//! (constant fold, lower to micro-ops, execute on a register file). For
//! every generated expression the two must return strictly equal values
//! (width-sensitive) or must both fail; a value from one engine and an
//! error from the other is always a bug.

use ifsyn_sim::testing::{eval_bytecode, eval_tree};
use ifsyn_sim::{LockstepSim, SimConfig, Simulator};
use ifsyn_spec::dsl::*;
use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::{BinOp, BitVec, Expr, SignalId, Stmt, System, Ty, UnaryOp, Value, VarId};

/// Bit widths the variable palette covers.
const WIDTHS: [u32; 5] = [1, 4, 8, 16, 32];

/// The randomized storage environment one iteration evaluates against.
struct Env {
    system: System,
    vars: Vec<Value>,
    signals: Vec<Value>,
    int_vars: Vec<(VarId, u32)>,
    bits_vars: Vec<(VarId, u32)>,
    bit_var: VarId,
    array_var: VarId,
    bit_sig: SignalId,
    bits_sig: SignalId,
    int_sig: SignalId,
}

fn signed_range(width: u32) -> (i64, i64) {
    if width >= 63 {
        (i64::MIN / 2, i64::MAX / 2)
    } else {
        (-(1i64 << (width - 1)), (1i64 << (width - 1)) - 1)
    }
}

fn random_int(rng: &mut SplitMix64, width: u32) -> Value {
    let (lo, hi) = signed_range(width);
    Value::int(rng.range_i64(lo, hi), width)
}

fn random_bits(rng: &mut SplitMix64, width: u32) -> Value {
    let raw = if width >= 64 {
        rng.next_u64()
    } else {
        rng.next_u64() & ((1u64 << width) - 1)
    };
    Value::Bits(BitVec::from_u64(raw, width))
}

fn build_env(rng: &mut SplitMix64) -> Env {
    let mut system = System::new("diff");
    let module = system.add_module("chip");
    let behavior = system.add_behavior("P", module);

    let mut vars = Vec::new();
    let mut int_vars = Vec::new();
    let mut bits_vars = Vec::new();
    for &w in &WIDTHS {
        int_vars.push((
            system.add_variable(format!("i{w}"), Ty::Int(w), behavior),
            w,
        ));
        vars.push(random_int(rng, w));
        bits_vars.push((
            system.add_variable(format!("b{w}"), Ty::Bits(w), behavior),
            w,
        ));
        vars.push(random_bits(rng, w));
    }
    let bit_var = system.add_variable("flag", Ty::Bit, behavior);
    vars.push(Value::Bit(rng.bool()));
    let array_var = system.add_variable(
        "arr",
        Ty::Array {
            elem: Box::new(Ty::Int(8)),
            len: 4,
        },
        behavior,
    );
    vars.push(Value::Array((0..4).map(|_| random_int(rng, 8)).collect()));

    let bit_sig = system.add_signal("s_bit", Ty::Bit);
    let bits_sig = system.add_signal("s_bits", Ty::Bits(8));
    let int_sig = system.add_signal("s_int", Ty::Int(16));
    let signals = vec![
        Value::Bit(rng.bool()),
        random_bits(rng, 8),
        random_int(rng, 16),
    ];

    Env {
        system,
        vars,
        signals,
        int_vars,
        bits_vars,
        bit_var,
        array_var,
        bit_sig,
        bits_sig,
        int_sig,
    }
}

fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

fn unary(op: UnaryOp, arg: Expr) -> Expr {
    Expr::Unary {
        op,
        arg: Box::new(arg),
    }
}

/// A random integer-valued expression of the given width.
fn gen_int(rng: &mut SplitMix64, env: &Env, depth: u32, width: u32) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => {
                let (lo, hi) = signed_range(width);
                int_const(rng.range_i64(lo, hi), width)
            }
            1 => {
                let (id, w) = *rng.pick(&env.int_vars);
                if w == width {
                    load(var(id))
                } else {
                    int_const(rng.range_i64(0, 99), width)
                }
            }
            _ if width == 16 => signal(env.int_sig),
            _ => load(index(var(env.array_var), int_const(rng.range_i64(0, 3), 8))),
        };
    }
    let op = *rng.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
    ]);
    match rng.below(5) {
        0 => unary(UnaryOp::Neg, gen_int(rng, env, depth - 1, width)),
        _ => binary(
            op,
            gen_int(rng, env, depth - 1, width),
            gen_int(rng, env, depth - 1, width),
        ),
    }
}

/// A random bit-vector expression of the given width.
fn gen_bits(rng: &mut SplitMix64, env: &Env, depth: u32, width: u32) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        let raw = rng.next_u64()
            & if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
        return match rng.below(3) {
            0 => bits_const(raw, width),
            1 => {
                let (id, w) = *rng.pick(&env.bits_vars);
                if w == width {
                    load(var(id))
                } else if w > width {
                    // Slice the wider variable down to this width.
                    let lo = rng.range_u32(0, w - width);
                    slice_of(load(var(id)), lo + width - 1, lo)
                } else {
                    resize(load(var(id)), width)
                }
            }
            _ if width == 8 => signal(env.bits_sig),
            _ => bits_const(raw, width),
        };
    }
    match rng.below(6) {
        0 => binary(
            BinOp::And,
            gen_bits(rng, env, depth - 1, width),
            gen_bits(rng, env, depth - 1, width),
        ),
        1 => binary(
            BinOp::Or,
            gen_bits(rng, env, depth - 1, width),
            gen_bits(rng, env, depth - 1, width),
        ),
        2 => binary(
            BinOp::Xor,
            gen_bits(rng, env, depth - 1, width),
            gen_bits(rng, env, depth - 1, width),
        ),
        3 => unary(UnaryOp::Not, gen_bits(rng, env, depth - 1, width)),
        4 if width >= 2 => {
            let lo_w = rng.range_u32(1, width - 1);
            binary(
                BinOp::Concat,
                gen_bits(rng, env, depth - 1, lo_w),
                gen_bits(rng, env, depth - 1, width - lo_w),
            )
        }
        _ => match rng.below(3) {
            0 => {
                let w = rng.range_u32(1, 32);
                resize(gen_bits(rng, env, depth - 1, w), width)
            }
            1 => {
                let wider = width + rng.range_u32(1, 8);
                let lo = rng.range_u32(0, wider - width);
                slice_of(gen_bits(rng, env, depth - 1, wider), lo + width - 1, lo)
            }
            _ => {
                let wider = width + rng.range_u32(1, 8);
                dyn_slice_of(
                    gen_bits(rng, env, depth - 1, wider),
                    int_const(rng.range_i64(0, i64::from(wider - width)), 8),
                    width,
                )
            }
        },
    }
}

/// A random boolean expression.
fn gen_bit(rng: &mut SplitMix64, env: &Env, depth: u32) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => bit_const(rng.bool()),
            1 => load(var(env.bit_var)),
            _ => signal(env.bit_sig),
        };
    }
    match rng.below(6) {
        0 => {
            let w = *rng.pick(&WIDTHS);
            let cmp = *rng.pick(&[
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ]);
            binary(
                cmp,
                gen_int(rng, env, depth - 1, w),
                gen_int(rng, env, depth - 1, w),
            )
        }
        1 => binary(
            BinOp::And,
            gen_bit(rng, env, depth - 1),
            gen_bit(rng, env, depth - 1),
        ),
        2 => binary(
            BinOp::Or,
            gen_bit(rng, env, depth - 1),
            gen_bit(rng, env, depth - 1),
        ),
        3 => binary(
            BinOp::Xor,
            gen_bit(rng, env, depth - 1),
            gen_bit(rng, env, depth - 1),
        ),
        4 => unary(UnaryOp::Not, gen_bit(rng, env, depth - 1)),
        _ => {
            let w = rng.range_u32(2, 16);
            binary(
                BinOp::Eq,
                gen_bits(rng, env, depth - 1, w),
                gen_bits(rng, env, depth - 1, w),
            )
        }
    }
}

/// An intentionally ill-typed or out-of-range expression: both engines
/// must agree that it fails (or, if it happens to evaluate, on the value).
fn gen_wild(rng: &mut SplitMix64, env: &Env, depth: u32) -> Expr {
    match rng.below(5) {
        0 => binary(
            BinOp::Add,
            gen_bit(rng, env, depth),
            gen_bits(rng, env, depth, 8),
        ),
        1 => slice_of(gen_bits(rng, env, depth, 4), 12, 2),
        2 => load(index(
            var(env.array_var),
            int_const(rng.range_i64(4, 20), 8),
        )),
        3 => binary(
            BinOp::Concat,
            gen_int(rng, env, depth, 8),
            gen_int(rng, env, depth, 8),
        ),
        _ => dyn_slice_of(gen_bits(rng, env, depth, 8), gen_int(rng, env, depth, 8), 4),
    }
}

/// Compares both engines on one expression; returns whether it evaluated.
fn check(env: &Env, expr: &Expr, seed: u64, iter: usize) -> bool {
    let tree = eval_tree(&env.system, &env.vars, &env.signals, expr);
    let code = eval_bytecode(&env.system, &env.vars, &env.signals, expr);
    match (&tree, &code) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a, b,
                "value mismatch (seed {seed}, iter {iter}) on {expr:?}"
            );
            true
        }
        (Err(_), Err(_)) => false,
        _ => panic!(
            "divergence (seed {seed}, iter {iter}) on {expr:?}:\n tree: {tree:?}\n code: {code:?}"
        ),
    }
}

#[test]
fn bytecode_matches_tree_walk_on_random_expressions() {
    let mut total = 0u32;
    let mut evaluated = 0u32;
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0x1f5e_ed00 + seed);
        let env = build_env(&mut rng);
        for iter in 0..400 {
            let depth = 1 + (rng.below(4) as u32);
            let expr = match rng.below(4) {
                0 => {
                    let w = *rng.pick(&WIDTHS);
                    gen_int(&mut rng, &env, depth, w)
                }
                1 => {
                    let w = rng.range_u32(1, 48);
                    gen_bits(&mut rng, &env, depth, w)
                }
                2 => gen_bit(&mut rng, &env, depth),
                _ => gen_wild(&mut rng, &env, depth),
            };
            total += 1;
            if check(&env, &expr, seed, iter) {
                evaluated += 1;
            }
        }
    }
    // The typed generators must keep most expressions evaluating, or the
    // test degenerates into comparing errors with errors.
    assert!(
        evaluated * 2 > total,
        "only {evaluated}/{total} expressions evaluated"
    );
}

#[test]
fn bytecode_matches_tree_walk_on_place_reads() {
    let mut rng = SplitMix64::new(0x91ace);
    let env = build_env(&mut rng);
    let (wide_bits, w) = env.bits_vars[4]; // the 32-bit vector variable
    let cases = vec![
        load(var(env.bit_var)),
        load(var(env.array_var)),
        load(index(var(env.array_var), int_const(2, 8))),
        load(slice(var(wide_bits), w - 1, w - 8)),
        load(slice(var(wide_bits), 7, 0)),
        load(dyn_slice(var(wide_bits), int_const(5, 8), 8)),
        load(dyn_slice(
            var(wide_bits),
            load(index(var(env.array_var), int_const(0, 8))),
            4,
        )),
        signal(env.bit_sig),
        signal(env.bits_sig),
        signal(env.int_sig),
    ];
    for (i, expr) in cases.iter().enumerate() {
        check(&env, expr, 0, i);
    }
}

// ---------------------------------------------------------------------------
// Lockstep vs scalar: whole-simulation differential suite.
//
// `LockstepSim` runs N parameter variants of one compiled program through a
// single dispatch stream; lanes whose control flow diverges peel back to the
// scalar kernel. The contract is total: for every input system the lockstep
// result must be *field-for-field equal* to what the scalar `Simulator`
// produces for that system alone — same finish times, same delta/instruction
// counters, same final storage. These tests generate randomized behaviors
// (branches, loops, waits, handshakes, procedure-free and data-dependent
// control) and assert that equality lane by lane, including on lanes that
// are forced to diverge mid-run.
// ---------------------------------------------------------------------------

/// A randomized two-process system parameterized by `payload`, the initial
/// value of the producer's seed variable. The statement mix is driven by
/// `rng`, so equal seeds build structurally identical programs (one convoy)
/// while payloads vary per lane.
fn gen_system(rng: &mut SplitMix64, payload: i64) -> System {
    let mut sys = System::new("lockdiff");
    let m = sys.add_module("chip");
    let req = sys.add_signal("REQ", Ty::Bit);
    let ack = sys.add_signal("ACK", Ty::Bit);
    let data = sys.add_signal("DATA", Ty::Int(16));

    let p = sys.add_behavior("producer", m);
    let seed = sys.add_variable_init("seed", Ty::Int(16), p, Value::int(payload, 16));
    let acc = sys.add_variable("acc", Ty::Int(16), p);
    let idx = sys.add_variable("idx", Ty::Int(8), p);

    let mut body = Vec::new();
    let stmts = 3 + rng.below(5);
    for _ in 0..stmts {
        body.push(gen_stmt(rng, seed, acc, idx, data, 2));
    }
    // A fixed handshake tail so the run always exercises signal waits,
    // wake-on and the projected-write machinery.
    body.extend([
        drive_cost(data, load(var(acc)), 1),
        drive_cost(req, bit_const(true), 1),
        wait_until(eq(signal(ack), bit_const(true))),
        drive_cost(req, bit_const(false), 1),
    ]);
    sys.behavior_mut(p).body = body;

    let c = sys.add_behavior("consumer", m);
    let seen = sys.add_variable("seen", Ty::Int(16), c);
    sys.behavior_mut(c).body = vec![
        wait_until(eq(signal(req), bit_const(true))),
        assign(var(seen), signal(data)),
        Stmt::compute(2, "latch"),
        drive_cost(ack, bit_const(true), 1),
    ];
    sys
}

/// One random producer statement. Branch conditions compare the seed
/// variable against thresholds inside the payload range, so a spread of
/// payloads exercises both uniform and divergent control flow.
fn gen_stmt(
    rng: &mut SplitMix64,
    seed: VarId,
    acc: VarId,
    idx: VarId,
    data: SignalId,
    depth: u32,
) -> Stmt {
    let pick = if depth == 0 {
        rng.below(5)
    } else {
        rng.below(8)
    };
    match pick {
        0 => assign(
            var(acc),
            add(load(var(acc)), int_const(rng.range_i64(1, 9), 16)),
        ),
        1 => assign_cost(
            var(acc),
            add(load(var(acc)), mul(load(var(seed)), int_const(2, 16))),
            rng.range_u32(1, 3),
        ),
        2 => Stmt::compute(rng.range_u64(1, 5), "work"),
        3 => wait_cycles(rng.range_u64(1, 4)),
        4 => drive_cost(data, load(var(acc)), 1),
        5 => if_else(
            lt(load(var(seed)), int_const(rng.range_i64(10, 90), 16)),
            vec![gen_stmt(rng, seed, acc, idx, data, depth - 1)],
            vec![gen_stmt(rng, seed, acc, idx, data, depth - 1)],
        ),
        // Loop bodies stay leaf-only (depth 0): all loops share the one
        // `idx` counter, and a nested loop resetting it would never let
        // the outer loop terminate.
        6 => for_loop(
            var(idx),
            int_const(0, 8),
            int_const(rng.range_i64(1, 4), 8),
            vec![gen_stmt(rng, seed, acc, idx, data, 0)],
        ),
        _ => if_then(
            eq(load(var(seed)), int_const(rng.range_i64(0, 99), 16)),
            vec![gen_stmt(rng, seed, acc, idx, data, depth - 1)],
        ),
    }
}

/// Runs `systems` through the lockstep engine and asserts every lane's
/// report equals its own scalar run. Returns the stats for shape checks.
fn check_lockstep(systems: &[System], seed: u64) -> ifsyn_sim::LockstepStats {
    let config = SimConfig::new();
    let (results, stats) = LockstepSim::run_with_stats(systems, &config, None);
    assert_eq!(results.len(), systems.len());
    for (i, (sys, got)) in systems.iter().zip(results).enumerate() {
        let want = Simulator::with_config(sys, config.clone()).and_then(|s| s.run_to_quiescence());
        assert_eq!(got, want, "lane {i} diverged from scalar (seed {seed})");
    }
    stats
}

#[test]
fn lockstep_matches_scalar_on_random_programs() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0x10c5_7e90 + seed);
        let lanes = 2 + rng.below(15) as usize; // 2..=16 variants
        let payloads: Vec<i64> = (0..lanes).map(|_| rng.range_i64(0, 99)).collect();
        // Rebuild from an identical statement stream per lane: clone the
        // rng state so every lane gets the same program shape.
        let systems: Vec<System> = payloads
            .iter()
            .map(|&p| {
                let mut lane_rng = SplitMix64::new(0xbead_0000 + seed);
                gen_system(&mut lane_rng, p)
            })
            .collect();
        let stats = check_lockstep(&systems, seed);
        assert_eq!(
            stats.convoys, 1,
            "identical programs must form one convoy (seed {seed})"
        );
    }
}

#[test]
fn lockstep_matches_scalar_with_forced_divergence() {
    // Payloads straddling every generated threshold guarantee some lanes
    // take different branches and peel; peeled lanes must still match
    // their scalar runs exactly.
    for seed in 0..12u64 {
        let payloads = [0i64, 5, 42, 57, 88, 99];
        let systems: Vec<System> = payloads
            .iter()
            .map(|&p| {
                let mut lane_rng = SplitMix64::new(0xd1ff_0000 + seed);
                gen_system(&mut lane_rng, p)
            })
            .collect();
        check_lockstep(&systems, seed);
    }
}

#[test]
fn lockstep_identical_lanes_never_peel() {
    for seed in 0..6u64 {
        let systems: Vec<System> = (0..16)
            .map(|_| {
                let mut lane_rng = SplitMix64::new(0x5a5a_0000 + seed);
                gen_system(&mut lane_rng, 37)
            })
            .collect();
        let stats = check_lockstep(&systems, seed);
        assert_eq!(
            stats.peeled_lanes, 0,
            "identical lanes peeled (seed {seed})"
        );
        assert_eq!(stats.lockstep_lanes, 16);
    }
}

//! Property: the analytic estimator and the simulator agree on
//! randomly generated straight-line / structured programs (the shared
//! cost model contract behind Fig. 7).

use ifsyn_estimate::{ChannelTimings, PerformanceEstimator};
use ifsyn_sim::Simulator;
use ifsyn_spec::dsl::*;
use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::{Stmt, System, Ty, VarId};

/// A recipe for one statement.
#[derive(Debug, Clone)]
enum Piece {
    Assign(u8),
    Compute(u8),
    WaitFor(u8),
    Loop {
        iters: u8,
        body_computes: u8,
    },
    IfTrue {
        then_computes: u8,
        else_computes: u8,
    },
}

fn piece(rng: &mut SplitMix64) -> Piece {
    match rng.below(5) {
        0 => Piece::Assign(rng.range_u32(0, 4) as u8),
        1 => Piece::Compute(rng.range_u32(0, 19) as u8),
        2 => Piece::WaitFor(rng.range_u32(0, 9) as u8),
        3 => Piece::Loop {
            iters: rng.range_u32(1, 5) as u8,
            body_computes: rng.range_u32(0, 4) as u8,
        },
        _ => Piece::IfTrue {
            then_computes: rng.range_u32(0, 4) as u8,
            else_computes: rng.range_u32(0, 4) as u8,
        },
    }
}

fn pieces(rng: &mut SplitMix64, max_len: u64) -> Vec<Piece> {
    (0..rng.below(max_len)).map(|_| piece(rng)).collect()
}

fn lower(pieces: &[Piece], x: VarId, i: VarId) -> Vec<Stmt> {
    let mut body = Vec::new();
    for p in pieces {
        match p {
            Piece::Assign(cost) => body.push(assign_cost(
                var(x),
                add(load(var(x)), int_const(1, 16)),
                u32::from(*cost),
            )),
            Piece::Compute(c) => body.push(Stmt::compute(u64::from(*c), "w")),
            Piece::WaitFor(n) => body.push(wait_cycles(u64::from(*n))),
            Piece::Loop {
                iters,
                body_computes,
            } => body.push(for_loop(
                var(i),
                int_const(0, 16),
                int_const(i64::from(*iters) - 1, 16),
                vec![Stmt::compute(u64::from(*body_computes), "loop body")],
            )),
            Piece::IfTrue {
                then_computes,
                else_computes,
            } => body.push(if_else(
                bit_const(true),
                vec![Stmt::compute(u64::from(*then_computes), "then")],
                vec![Stmt::compute(u64::from(*else_computes), "else")],
            )),
        }
    }
    body
}

/// Worst-case branch divergence makes the estimator an upper bound when
/// `else` is longer than `then`; exact otherwise. Compute both bounds.
fn exact_and_estimate(pieces: &[Piece]) -> (u64, u64, bool) {
    let mut sys = System::new("p");
    let m = sys.add_module("chip");
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Int(16), b);
    let i = sys.add_variable("i", Ty::Int(16), b);
    let body = lower(pieces, x, i);
    sys.behavior_mut(b).body = body;
    let est = PerformanceEstimator::new()
        .estimate(&sys, b, &ChannelTimings::new())
        .expect("estimate");
    let report = Simulator::new(&sys)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("sim");
    let measured = report.finish_time(b).expect("finished");
    let has_divergent_branch = pieces.iter().any(|p| {
        matches!(p, Piece::IfTrue { then_computes, else_computes } if else_computes > then_computes)
    });
    (measured, est.cycles, has_divergent_branch)
}

#[test]
fn estimator_matches_or_upper_bounds_simulation() {
    let mut rng = SplitMix64::new(0x51_71);
    for _ in 0..128 {
        let ps = pieces(&mut rng, 12);
        let (measured, estimated, divergent) = exact_and_estimate(&ps);
        if divergent {
            // Worst-case branch pricing: the estimate is an upper bound.
            assert!(estimated >= measured, "{estimated} < {measured}: {ps:?}");
        } else {
            assert_eq!(estimated, measured, "{ps:?}");
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::new(0x52_72);
    for _ in 0..32 {
        let ps = pieces(&mut rng, 8);
        let (a, _, _) = exact_and_estimate(&ps);
        let (b, _, _) = exact_and_estimate(&ps);
        assert_eq!(a, b, "{ps:?}");
    }
}

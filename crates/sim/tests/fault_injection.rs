//! Fault injection and deadlock diagnosis: end-to-end kernel tests.

use ifsyn_sim::{FaultPlan, SimConfig, SimError, Simulator};
use ifsyn_spec::dsl::*;
use ifsyn_spec::{System, Ty, Value};

fn shell() -> (System, ifsyn_spec::ModuleId) {
    let mut sys = System::new("faults");
    let m = sys.add_module("chip");
    (sys, m)
}

fn run(sys: &System, config: SimConfig) -> Result<ifsyn_sim::SimReport, SimError> {
    Simulator::with_config(sys, config)?.run_to_quiescence()
}

#[test]
fn stuck_at_zero_forces_value_and_drops_writes() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(b).body = vec![
        drive_cost(s, bit_const(true), 1),
        drive_cost(s, bit_const(true), 1),
    ];
    let plan = FaultPlan::new().stuck_at_0("S", 0, None);
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(report.final_signal_by_name("S"), Some(&Value::Bit(false)));
    // One forced injection plus two dropped writes.
    assert_eq!(report.injected_faults().len(), 3);
    assert!(report
        .injected_faults()
        .iter()
        .any(|f| f.effect.contains("stuck")));
}

#[test]
fn stuck_window_releases_the_signal_afterwards() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(b).body = vec![
        drive_cost(s, bit_const(true), 1), // t = 1, inside [0, 5): dropped
        wait_cycles(10),
        drive_cost(s, bit_const(true), 1), // t = 12, window over: lands
    ];
    let plan = FaultPlan::new().stuck_at_0("S", 0, Some(5));
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(report.final_signal_by_name("S"), Some(&Value::Bit(true)));
}

#[test]
fn flip_bit_inverts_the_named_bit() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bits(8));
    sys.behavior_mut(b).body = vec![
        drive_cost(s, bits_const(0b0001_0000, 8), 1),
        wait_cycles(20),
    ];
    let plan = FaultPlan::new().flip_bit("S", 2, 5);
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(
        report.final_signal_by_name("S"),
        Some(&Value::Bits(ifsyn_spec::BitVec::from_u64(0b0001_0100, 8)))
    );
    assert!(report
        .injected_faults()
        .iter()
        .any(|f| f.time == 5 && f.effect.contains("bit 2")));
}

#[test]
fn flip_wakes_a_waiting_process() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), bit_const(true)))];
    // Nobody drives S; only the transient flip at t = 7 satisfies the wait.
    let plan = FaultPlan::new().flip_bit("S", 0, 7);
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(report.finish_time(b), Some(7));
}

#[test]
fn delayed_writes_postpone_the_wakeup() {
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let q = sys.add_behavior("Q", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(p).body = vec![drive_cost(s, bit_const(true), 1)];
    sys.behavior_mut(q).body = vec![wait_until(eq(signal(s), bit_const(true)))];
    let baseline = run(&sys, SimConfig::new()).unwrap();
    assert_eq!(baseline.finish_time(q), Some(1));
    let plan = FaultPlan::new().delay_writes("S", 4, 0, None);
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(report.finish_time(q), Some(5));
}

#[test]
fn dropped_writes_leave_the_wire_value() {
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bits(8));
    sys.behavior_mut(p).body = vec![
        drive_cost(s, bits_const(7, 8), 1),  // t = 1: lands
        drive_cost(s, bits_const(99, 8), 1), // t = 2, in [2, 10): dropped
    ];
    let plan = FaultPlan::new().drop_writes("S", 2, Some(10));
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(
        report.final_signal_by_name("S"),
        Some(&Value::Bits(ifsyn_spec::BitVec::from_u64(7, 8)))
    );
}

#[test]
fn unknown_fault_signal_is_rejected() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    sys.behavior_mut(b).body = vec![wait_cycles(1)];
    let plan = FaultPlan::new().stuck_at_0("NO_SUCH_WIRE", 0, None);
    let err = match Simulator::with_config(&sys, SimConfig::new().with_faults(plan)) {
        Err(e) => e,
        Ok(_) => panic!("unknown signal must be rejected"),
    };
    assert!(matches!(err, SimError::InvalidSystem { .. }), "{err}");
    assert!(err.to_string().contains("NO_SUCH_WIRE"), "{err}");
}

#[test]
fn wait_until_timeout_fires_at_the_bound() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bit);
    // Nobody drives S: the watchdog alone resumes the process.
    sys.behavior_mut(b).body = vec![wait_until_for(eq(signal(s), bit_const(true)), 12)];
    let report = run(&sys, SimConfig::new()).unwrap();
    assert_eq!(report.finish_time(b), Some(12));
    assert_eq!(report.blocked_at_exit(), 0);
}

#[test]
fn wait_until_timeout_does_not_fire_when_satisfied_early() {
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let q = sys.add_behavior("Q", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(p).body = vec![wait_cycles(3), drive_cost(s, bit_const(true), 1)];
    sys.behavior_mut(q).body = vec![wait_until_for(eq(signal(s), bit_const(true)), 50)];
    let report = run(&sys, SimConfig::new()).unwrap();
    // Q resumes when S rises at t = 4, and the stale watchdog entry must
    // not stretch the simulation out to t = 50.
    assert_eq!(report.finish_time(q), Some(4));
    assert_eq!(report.time(), 4);
}

#[test]
fn handshake_with_stuck_done_yields_cyclic_deadlock_diagnosis() {
    let (mut sys, m) = shell();
    let client = sys.add_behavior("client", m);
    let server = sys.add_behavior("server", m);
    let start = sys.add_signal("START", Ty::Bit);
    let done = sys.add_signal("DONE", Ty::Bit);
    sys.behavior_mut(client).body = vec![
        drive_cost(start, bit_const(true), 1),
        wait_until(eq(signal(done), bit_const(true))),
        drive_cost(start, bit_const(false), 0),
        wait_until(eq(signal(done), bit_const(false))),
    ];
    sys.behavior_mut(server).body = vec![
        wait_until(eq(signal(start), bit_const(true))),
        drive_cost(done, bit_const(true), 1),
        wait_until(eq(signal(start), bit_const(false))),
        drive_cost(done, bit_const(false), 0),
    ];
    let plan = FaultPlan::new().stuck_at_0("DONE", 0, None);
    let config = SimConfig::new().with_faults(plan).with_deadlock_detection();
    let err = run(&sys, config).expect_err("stuck DONE must deadlock");
    let SimError::Deadlock { diagnosis } = err else {
        panic!("expected Deadlock, got {err}");
    };
    let blocked = diagnosis
        .blocked_behavior("client")
        .expect("client is blocked");
    assert!(blocked.wait.contains("DONE"), "{}", blocked.wait);
    assert!(
        blocked.observed.iter().any(|(n, _)| n == "DONE"),
        "{blocked:?}"
    );
    // client waits on DONE (written by server), server waits on START
    // (written by client): the classic two-party cycle.
    assert!(
        diagnosis
            .cycles
            .iter()
            .any(|c| { c.contains(&"client".to_string()) && c.contains(&"server".to_string()) }),
        "{:?}",
        diagnosis.cycles
    );
}

#[test]
fn three_party_diagnosis_reports_both_overlapping_cycles() {
    // A waits on X, which both B and C can write; B and C each wait on a
    // line only A writes. The wait-for graph is a figure-eight through A
    // (A -> B -> A and A -> C -> A) and the diagnosis must report both
    // elementary cycles, one `wait-for cycle:` line each.
    let (mut sys, m) = shell();
    let a = sys.add_behavior("A", m);
    let b = sys.add_behavior("B", m);
    let c = sys.add_behavior("C", m);
    let x = sys.add_signal("X", Ty::Bit);
    let y = sys.add_signal("Y", Ty::Bit);
    let z = sys.add_signal("Z", Ty::Bit);
    sys.behavior_mut(a).body = vec![
        wait_until(eq(signal(x), bit_const(true))),
        drive_cost(y, bit_const(true), 1),
        drive_cost(z, bit_const(true), 1),
    ];
    sys.behavior_mut(b).body = vec![
        wait_until(eq(signal(y), bit_const(true))),
        drive_cost(x, bit_const(true), 1),
    ];
    sys.behavior_mut(c).body = vec![
        wait_until(eq(signal(z), bit_const(true))),
        drive_cost(x, bit_const(true), 1),
    ];
    let err = run(&sys, SimConfig::new().with_deadlock_detection())
        .expect_err("nobody moves first: deadlock");
    let SimError::Deadlock { diagnosis } = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert_eq!(diagnosis.blocked.len(), 3, "{diagnosis}");
    let mut cycles: Vec<Vec<String>> = diagnosis
        .cycles
        .iter()
        .map(|cy| {
            let mut s = cy.clone();
            s.sort();
            s
        })
        .collect();
    cycles.sort();
    assert_eq!(
        cycles,
        vec![
            vec!["A".to_string(), "B".into()],
            vec!["A".into(), "C".into()]
        ],
        "{diagnosis}"
    );
}

#[test]
fn self_wait_yields_a_blocked_entry_but_no_cycle() {
    // P waits on a signal only its own (unreachable) later code writes.
    // The kernel's wait-for edges deliberately exclude self-edges — a
    // process cannot unblock itself — so the diagnosis lists the blocked
    // wait without inventing a one-node cycle.
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let s = sys.add_signal("SELF", Ty::Bit);
    sys.behavior_mut(p).body = vec![
        wait_until(eq(signal(s), bit_const(true))),
        drive_cost(s, bit_const(false), 1),
    ];
    let err =
        run(&sys, SimConfig::new().with_deadlock_detection()).expect_err("self-wait hangs forever");
    let SimError::Deadlock { diagnosis } = err else {
        panic!("expected Deadlock, got {err}");
    };
    let blocked = diagnosis.blocked_behavior("P").expect("P is blocked");
    assert!(blocked.wait.contains("SELF"), "{}", blocked.wait);
    assert!(diagnosis.cycles.is_empty(), "{:?}", diagnosis.cycles);
}

#[test]
fn blocked_on_stuck_signal_observes_the_forced_value() {
    // Q's write of ADDR = 5 is swallowed by a stuck-at-0 fault, so P
    // never sees the value it waits for. The diagnosis must show P
    // observing the *forced* all-zeros value (what the wire actually
    // carries), and still extract the P <-> Q wait-for cycle even though
    // the true culprit is the fault, not the peer's code.
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let q = sys.add_behavior("Q", m);
    let addr = sys.add_signal("ADDR", Ty::Bits(8));
    let ack = sys.add_signal("ACK", Ty::Bit);
    sys.behavior_mut(p).body = vec![
        wait_until(eq(signal(addr), bits_const(5, 8))),
        drive_cost(ack, bit_const(true), 1),
    ];
    sys.behavior_mut(q).body = vec![
        drive_cost(addr, bits_const(5, 8), 1),
        wait_until(eq(signal(ack), bit_const(true))),
    ];
    let plan = FaultPlan::new().stuck_at_0("ADDR", 0, None);
    let config = SimConfig::new().with_faults(plan).with_deadlock_detection();
    let err = run(&sys, config).expect_err("stuck ADDR must deadlock");
    let SimError::Deadlock { diagnosis } = err else {
        panic!("expected Deadlock, got {err}");
    };
    let blocked = diagnosis.blocked_behavior("P").expect("P is blocked");
    let (_, observed) = blocked
        .observed
        .iter()
        .find(|(n, _)| n == "ADDR")
        .expect("P's sensitivity list names ADDR");
    assert!(
        !observed.contains('5'),
        "observed value must be the forced zeros, not the swallowed write: {observed}"
    );
    assert!(
        diagnosis
            .cycles
            .iter()
            .any(|c| c.contains(&"P".to_string()) && c.contains(&"Q".to_string())),
        "{:?}",
        diagnosis.cycles
    );
}

#[test]
fn deadlock_detection_stays_off_by_default() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), bit_const(true)))];
    // No detection: a blocked process is reported, not an error.
    let report = run(&sys, SimConfig::new()).unwrap();
    assert_eq!(report.blocked_at_exit(), 1);
    // With detection: the same run is a diagnosed deadlock.
    let err = run(&sys, SimConfig::new().with_deadlock_detection())
        .expect_err("detection must flag the hang");
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

#[test]
fn repeating_processes_do_not_count_as_deadlocked() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("idle_server", m);
    let s = sys.add_signal("S", Ty::Bit);
    sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), bit_const(true)))];
    sys.behavior_mut(b).repeats = true;
    let report = run(&sys, SimConfig::new().with_deadlock_detection()).unwrap();
    // A parked server is business as usual, not a deadlock...
    assert_eq!(report.time(), 0);
    // ...and it does not count as blocked-at-exit either.
    assert_eq!(report.blocked_at_exit(), 0);
}

#[test]
fn injection_recording_is_capped_but_simulation_continues() {
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let i = sys.add_variable("i", Ty::Int(32), p);
    let s = sys.add_signal("S", Ty::Bit);
    // 12k dropped writes, beyond the 10k recording cap.
    sys.behavior_mut(p).body = vec![for_loop(
        var(i),
        int_const(0, 32),
        int_const(11_999, 32),
        vec![drive_cost(s, bit_const(true), 1)],
    )];
    let plan = FaultPlan::new().drop_writes("S", 0, None);
    let report = run(&sys, SimConfig::new().with_faults(plan)).unwrap();
    assert_eq!(report.injected_faults().len(), 10_000);
    assert_eq!(report.finish_time(p), Some(12_000)); // one cycle per drive
}

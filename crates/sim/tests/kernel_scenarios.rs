//! End-to-end scenario tests for the discrete-event kernel.

use ifsyn_sim::{SimConfig, SimError, Simulator};
use ifsyn_spec::dsl::*;
use ifsyn_spec::{
    Arg, BitVec, Channel, ChannelDirection, ParamMode, Procedure, Stmt, System, Ty, Value,
};

/// A one-module system shell.
fn shell() -> (System, ifsyn_spec::ModuleId) {
    let mut sys = System::new("test");
    let m = sys.add_module("chip");
    (sys, m)
}

#[test]
fn straight_line_costs_accumulate_into_finish_time() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![
        assign(var(x), int_const(1, 16)),         // 1 cycle
        assign_cost(var(x), int_const(2, 16), 7), // 7 cycles
        Stmt::compute(10, "work"),                // 10 cycles
        wait_cycles(5),                           // 5 cycles
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.finish_time(b), Some(23));
    assert_eq!(report.final_variable(x), &Value::int(2, 16));
}

#[test]
fn for_loop_runs_exact_iterations() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let i = sys.add_variable("i", Ty::Int(16), b);
    let acc = sys.add_variable("acc", Ty::Int(32), b);
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(1, 16),
        int_const(10, 16),
        vec![assign(var(acc), add(load(var(acc)), load(var(i))))],
    )];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    // sum 1..=10 = 55; 10 assignments at 1 cycle each.
    assert_eq!(report.final_variable(acc).as_i64().unwrap(), 55);
    assert_eq!(report.finish_time(b), Some(10));
}

#[test]
fn nested_loops_multiply() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let i = sys.add_variable("i", Ty::Int(16), b);
    let j = sys.add_variable("j", Ty::Int(16), b);
    let acc = sys.add_variable("acc", Ty::Int(32), b);
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(3, 16),
        vec![for_loop(
            var(j),
            int_const(0, 16),
            int_const(4, 16),
            vec![assign(var(acc), add(load(var(acc)), int_const(1, 32)))],
        )],
    )];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(acc).as_i64().unwrap(), 20);
}

#[test]
fn while_loop_with_variable_condition() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let n = sys.add_variable_init("n", Ty::Int(16), b, Value::int(5, 16));
    let acc = sys.add_variable("acc", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![while_loop(
        lt(int_const(0, 16), load(var(n))),
        vec![
            assign(var(acc), add(load(var(acc)), int_const(2, 16))),
            assign(var(n), sub(load(var(n)), int_const(1, 16))),
        ],
    )];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(acc).as_i64().unwrap(), 10);
    assert_eq!(report.final_variable(n).as_i64().unwrap(), 0);
}

#[test]
fn procedure_out_param_copies_back() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let y = sys.add_variable("y", Ty::Int(16), b);
    let mut p = Procedure::new("give_seven");
    let out_slot = p.add_param("result", Ty::Int(16), ParamMode::Out);
    p.body = vec![assign(local(out_slot), int_const(7, 16))];
    let pid = sys.add_procedure(p);
    sys.behavior_mut(b).body = vec![call(pid, vec![Arg::Out(var(y))])];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(y).as_i64().unwrap(), 7);
}

#[test]
fn procedure_inout_reads_and_writes() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let y = sys.add_variable_init("y", Ty::Int(16), b, Value::int(20, 16));
    let mut p = Procedure::new("double");
    let s = p.add_param("x", Ty::Int(16), ParamMode::InOut);
    p.body = vec![assign(local(s), mul(load(local(s)), int_const(2, 16)))];
    let pid = sys.add_procedure(p);
    sys.behavior_mut(b).body = vec![
        call(pid, vec![Arg::InOut(var(y))]),
        call(pid, vec![Arg::InOut(var(y))]),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(y).as_i64().unwrap(), 80);
}

#[test]
fn out_param_array_index_captured_at_call_time() {
    // VHDL evaluates the actual's name once at the call: even if the index
    // variable changes inside the callee, copy-back hits the original slot.
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let arr = sys.add_variable("arr", Ty::array(Ty::Int(16), 4), b);
    let idx = sys.add_variable_init("idx", Ty::Int(16), b, Value::int(1, 16));
    let mut p = Procedure::new("clobber_index_then_store");
    let out_slot = p.add_param("result", Ty::Int(16), ParamMode::Out);
    p.body = vec![
        assign(var(idx), int_const(3, 16)), // callee changes the index var
        assign(local(out_slot), int_const(99, 16)),
    ];
    let pid = sys.add_procedure(p);
    sys.behavior_mut(b).body = vec![call(pid, vec![Arg::Out(index(var(arr), load(var(idx))))])];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    let arr_final = report.final_variable(arr);
    match arr_final {
        Value::Array(items) => {
            assert_eq!(items[1].as_i64().unwrap(), 99, "copy-back must use index 1");
            assert_eq!(items[3].as_i64().unwrap(), 0);
        }
        other => panic!("expected array, got {other}"),
    }
}

#[test]
fn slice_writes_update_only_their_bits() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Bits(8), b);
    sys.behavior_mut(b).body = vec![
        assign(slice(var(x), 7, 4), bits_const(0b1010, 4)),
        assign(slice(var(x), 3, 0), bits_const(0b0101, 4)),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(
        report.final_variable(x),
        &Value::Bits(BitVec::from_u64(0b1010_0101, 8))
    );
}

/// Builds a two-process four-phase handshake moving `words` data words,
/// with protocol-generation-style costs (rising edges cost 1, falling
/// edges and latches cost 0). Returns (system, sender, receiver, rx_var).
fn handshake_system(
    words: u64,
) -> (
    System,
    ifsyn_spec::BehaviorId,
    ifsyn_spec::BehaviorId,
    ifsyn_spec::VarId,
) {
    let (mut sys, m) = shell();
    let m2 = sys.add_module("chip2");
    let start = sys.add_signal("B_START", Ty::Bit);
    let done = sys.add_signal("B_DONE", Ty::Bit);
    let data = sys.add_signal("B_DATA", Ty::Bits(8));

    let tx = sys.add_behavior("sender", m);
    let rx = sys.add_behavior("receiver", m2);
    let txi = sys.add_variable("txi", Ty::Int(16), tx);
    let rxbuf = sys.add_variable("rxbuf", Ty::array(Ty::Bits(8), 64), rx);
    let rxi = sys.add_variable("rxi", Ty::Int(16), rx);

    // Sender: for each word drive DATA=word index, START<=1 (1 cycle);
    // wait DONE; START<=0 (0 cycles); wait not DONE.
    sys.behavior_mut(tx).body = vec![for_loop(
        var(txi),
        int_const(0, 16),
        int_const(words as i64 - 1, 16),
        vec![
            drive_cost(data, resize(load(var(txi)), 8), 0),
            drive_cost(start, bit_const(true), 1),
            wait_until(eq(signal(done), bit_const(true))),
            drive_cost(start, bit_const(false), 0),
            wait_until(eq(signal(done), bit_const(false))),
        ],
    )];
    // Receiver: for each word wait START; latch (0 cost); DONE<=1 (1);
    // wait not START; DONE<=0 (0).
    sys.behavior_mut(rx).body = vec![for_loop(
        var(rxi),
        int_const(0, 16),
        int_const(words as i64 - 1, 16),
        vec![
            wait_until(eq(signal(start), bit_const(true))),
            assign_cost(index(var(rxbuf), load(var(rxi))), signal(data), 0),
            drive_cost(done, bit_const(true), 1),
            wait_until(eq(signal(start), bit_const(false))),
            drive_cost(done, bit_const(false), 0),
        ],
    )];
    (sys, tx, rx, rxbuf)
}

#[test]
fn handshake_transfers_all_words_intact() {
    let (sys, _tx, _rx, rxbuf) = handshake_system(16);
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    match report.final_variable(rxbuf) {
        Value::Array(items) => {
            for (i, item) in items.iter().take(16).enumerate() {
                assert_eq!(item.as_u64().unwrap(), i as u64, "word {i}");
            }
        }
        other => panic!("expected array, got {other}"),
    }
}

#[test]
fn handshake_costs_two_cycles_per_word() {
    // The paper's Eq. 2 assumes 2 clocks per bus word for a full
    // handshake; the generated edge costs reproduce exactly that.
    for words in [1u64, 4, 16, 64] {
        let (sys, tx, _, _) = handshake_system(words);
        let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
        assert_eq!(
            report.finish_time(tx),
            Some(2 * words),
            "sender should finish at 2*{words}"
        );
    }
}

#[test]
fn repeating_server_blocks_at_quiescence() {
    let (mut sys, m) = shell();
    let req = sys.add_signal("REQ", Ty::Bit);
    let ack = sys.add_signal("ACK", Ty::Bit);
    let client = sys.add_behavior("client", m);
    let server = sys.add_behavior("server", m);
    sys.behavior_mut(server).repeats = true;
    sys.behavior_mut(server).body = vec![
        wait_until(eq(signal(req), bit_const(true))),
        drive_cost(ack, bit_const(true), 1),
        wait_until(eq(signal(req), bit_const(false))),
        drive_cost(ack, bit_const(false), 0),
    ];
    sys.behavior_mut(client).body = vec![
        drive_cost(req, bit_const(true), 1),
        wait_until(eq(signal(ack), bit_const(true))),
        drive_cost(req, bit_const(false), 0),
        wait_until(eq(signal(ack), bit_const(false))),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert!(report.finish_time(client).is_some());
    assert_eq!(report.iterations(server), 1);
    let blocked: Vec<_> = report
        .blocked_behaviors()
        .map(|(_, o)| o.name.clone())
        .collect();
    assert_eq!(blocked, vec!["server".to_string()]);
}

#[test]
fn abstract_channels_move_data_with_addresses() {
    let (mut sys, m) = shell();
    let m2 = sys.add_module("mem_chip");
    let p = sys.add_behavior("P", m);
    let memproc = sys.add_behavior("MEMproc", m2);
    let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 64), memproc);
    let i = sys.add_variable("i", Ty::Int(16), p);
    let readback = sys.add_variable("readback", Ty::Int(16), p);
    let ch_w = sys.add_channel(Channel {
        name: "chw".into(),
        accessor: p,
        variable: mem,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 6,
        accesses: 64,
    });
    let ch_r = sys.add_channel(Channel {
        name: "chr".into(),
        accessor: p,
        variable: mem,
        direction: ChannelDirection::Read,
        data_bits: 16,
        addr_bits: 6,
        accesses: 1,
    });
    sys.behavior_mut(p).body = vec![
        for_loop(
            var(i),
            int_const(0, 16),
            int_const(63, 16),
            vec![send_at(
                ch_w,
                load(var(i)),
                mul(load(var(i)), int_const(3, 16)),
            )],
        ),
        receive_at(ch_r, int_const(21, 16), var(readback)),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(readback).as_i64().unwrap(), 63);
    match report.final_variable(mem) {
        Value::Array(items) => assert_eq!(items[10].as_i64().unwrap(), 30),
        other => panic!("expected array, got {other}"),
    }
}

#[test]
fn zero_delay_infinite_loop_is_detected() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("spinner", m);
    let x = sys.add_variable("x", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![while_loop(
        bit_const(true),
        vec![assign_cost(var(x), int_const(1, 16), 0)],
    )];
    // A small step budget keeps the test fast; the default (10M) would
    // spin for seconds before diagnosing.
    let mut config = SimConfig::new();
    config.max_steps_per_activation = 10_000;
    let err = Simulator::with_config(&sys, config)
        .unwrap()
        .run_to_quiescence()
        .unwrap_err();
    assert!(matches!(err, SimError::ZeroDelayLoop { .. }), "{err}");
}

#[test]
fn timeout_is_reported() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("sleeper", m);
    sys.behavior_mut(b).body = vec![wait_cycles(1_000_000)];
    let config = SimConfig::new().with_max_time(100);
    let err = Simulator::with_config(&sys, config)
        .unwrap()
        .run_to_quiescence()
        .unwrap_err();
    assert!(
        matches!(err, SimError::Timeout { max_time: 100, .. }),
        "{err}"
    );
}

#[test]
fn waiting_forever_reports_blocked_not_error() {
    let (mut sys, m) = shell();
    let s = sys.add_signal("never", Ty::Bit);
    let b = sys.add_behavior("waiter", m);
    sys.behavior_mut(b).body = vec![wait_until(eq(signal(s), bit_const(true)))];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.finish_time(b), None);
    assert_eq!(report.blocked_behaviors().count(), 1);
}

#[test]
fn level_sensitive_wait_until_does_not_suspend_on_true() {
    let (mut sys, m) = shell();
    let s = sys.add_signal("hi", Ty::Bit);
    sys.signals[s.index()].init = Some(Value::Bit(true));
    let b = sys.add_behavior("P", m);
    sys.behavior_mut(b).body = vec![
        wait_until(eq(signal(s), bit_const(true))),
        Stmt::compute(3, "after"),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.finish_time(b), Some(3));
}

#[test]
fn last_writer_wins_within_a_delta() {
    let (mut sys, m) = shell();
    let s = sys.add_signal("s", Ty::Bits(8));
    let b = sys.add_behavior("P", m);
    sys.behavior_mut(b).body = vec![
        drive_cost(s, bits_const(1, 8), 0),
        drive_cost(s, bits_const(2, 8), 0),
        wait_cycles(1),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    // Only one event: value goes 0 -> 2 in a single delta.
    assert_eq!(report.signal_event_count(s), 1);
}

#[test]
fn trace_records_signal_changes_in_order() {
    let (mut sys, m) = shell();
    let s = sys.add_signal("s", Ty::Bit);
    let b = sys.add_behavior("P", m);
    sys.behavior_mut(b).body = vec![
        drive_cost(s, bit_const(true), 1),
        drive_cost(s, bit_const(false), 1),
    ];
    let config = SimConfig::new().with_trace();
    let report = Simulator::with_config(&sys, config)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let trace = report.trace();
    assert_eq!(trace.len(), 2);
    assert_eq!(trace[0].time, 1);
    assert_eq!(trace[0].value, Value::Bit(true));
    assert_eq!(trace[1].time, 2);
    assert_eq!(trace[1].value, Value::Bit(false));
}

#[test]
fn coercion_through_channel_respects_target_type() {
    let (mut sys, m) = shell();
    let p = sys.add_behavior("P", m);
    let q = sys.add_behavior("Q", m);
    let x = sys.add_variable("X", Ty::Bits(8), q);
    let ch = sys.add_channel(Channel {
        name: "ch".into(),
        accessor: p,
        variable: x,
        direction: ChannelDirection::Write,
        data_bits: 8,
        addr_bits: 0,
        accesses: 1,
    });
    sys.behavior_mut(p).body = vec![send(ch, int_const(300, 16))];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    // 300 truncated to 8 bits = 44.
    assert_eq!(report.final_variable(x).as_u64().unwrap(), 300 % 256);
}

#[test]
fn finish_times_are_deterministic_across_runs() {
    let (sys, tx, rx, _) = handshake_system(8);
    let r1 = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    let r2 = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(r1.finish_time(tx), r2.finish_time(tx));
    assert_eq!(r1.finish_time(rx), r2.finish_time(rx));
    assert_eq!(r1.total_deltas(), r2.total_deltas());
}

#[test]
fn empty_system_is_quiescent_at_time_zero() {
    let sys = System::new("empty");
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.time(), 0);
    assert_eq!(report.finished_behaviors().count(), 0);
}

#[test]
fn estimator_matches_simulation_on_compute_only_behavior() {
    // The shared cost model must keep analytic and measured timing equal
    // on straight-line code.
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Int(16), b);
    let i = sys.add_variable("i", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![
        for_loop(
            var(i),
            int_const(0, 16),
            int_const(9, 16),
            vec![
                assign(var(x), add(load(var(x)), int_const(1, 16))),
                Stmt::compute(3, "work"),
            ],
        ),
        Stmt::compute(7, "tail"),
    ];
    let est = ifsyn_estimate::PerformanceEstimator::new()
        .estimate(&sys, b, &ifsyn_estimate::ChannelTimings::new())
        .unwrap();
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(Some(est.cycles), report.finish_time(b));
}

#[test]
fn run_until_stops_free_running_systems_cleanly() {
    // A periodic producer that never quiesces: run_until terminates and
    // reports the iterations completed so far.
    let (mut sys, m) = shell();
    let tick = sys.add_signal("TICK", Ty::Bit);
    let b = sys.add_behavior("metronome", m);
    sys.behavior_mut(b).repeats = true;
    sys.behavior_mut(b).body = vec![drive_cost(tick, not(signal(tick)), 1), wait_cycles(9)];
    let report = Simulator::new(&sys).unwrap().run_until(100).unwrap();
    assert_eq!(report.time(), 100);
    // One iteration per 10 cycles.
    assert!(report.iterations(b) >= 9, "{}", report.iterations(b));
    assert_eq!(report.signal_event_count(tick), report.iterations(b));
}

#[test]
fn run_until_past_quiescence_reports_quiescent_state() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    sys.behavior_mut(b).body = vec![Stmt::compute(5, "w")];
    let report = Simulator::new(&sys).unwrap().run_until(1_000).unwrap();
    assert_eq!(report.finish_time(b), Some(5));
}

#[test]
fn zero_cost_signal_ping_pong_reports_delta_overflow() {
    // Two processes waking each other with zero-delay writes at one
    // time instant: classic combinational oscillation.
    let (mut sys, m) = shell();
    let s1 = sys.add_signal("s1", Ty::Bit);
    let s2 = sys.add_signal("s2", Ty::Bit);
    let p1 = sys.add_behavior("p1", m);
    sys.behavior_mut(p1).repeats = true;
    sys.behavior_mut(p1).body = vec![
        wait_until(eq(signal(s1), signal(s2))),
        drive_cost(s2, not(signal(s2)), 0),
    ];
    let p2 = sys.add_behavior("p2", m);
    sys.behavior_mut(p2).repeats = true;
    sys.behavior_mut(p2).body = vec![
        wait_until(ne(signal(s1), signal(s2))),
        drive_cost(s1, not(signal(s1)), 0),
    ];
    let mut config = SimConfig::new();
    config.max_steps_per_activation = 10_000;
    let err = Simulator::with_config(&sys, config)
        .unwrap()
        .run_to_quiescence()
        .unwrap_err();
    // Either diagnosis is correct: the per-process step budget may trip
    // (ZeroDelayLoop) before the instant-wide delta budget does.
    assert!(
        matches!(
            err,
            SimError::DeltaOverflow { time: 0 } | SimError::ZeroDelayLoop { time: 0, .. }
        ),
        "expected a zero-time oscillation diagnosis, got {err}"
    );
}

#[test]
fn out_param_copyback_coerces_to_target_type() {
    // Regression: a Bits(16) out-parameter copied back into an Int(16)
    // variable must sign-extend (bit-reinterpret), exactly like an
    // ordinary assignment — 0xFFFF is -1, not 65535.
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let y = sys.add_variable("y", Ty::Int(16), b);
    let mut p = Procedure::new("give_all_ones");
    let out_slot = p.add_param("result", Ty::Bits(16), ParamMode::Out);
    p.body = vec![assign(local(out_slot), bits_const(0xffff, 16))];
    let pid = sys.add_procedure(p);
    sys.behavior_mut(b).body = vec![call(pid, vec![Arg::Out(var(y))])];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.final_variable(y).as_i64().unwrap(), -1);
}

#[test]
fn passing_assertions_are_counted() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![
        assign(var(x), int_const(5, 16)),
        Stmt::assert(eq(load(var(x)), int_const(5, 16)), "x is five"),
        Stmt::assert(lt(load(var(x)), int_const(10, 16)), "x below ten"),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(report.assertions_checked(), 2);
    // Assertions are free: only the assignment costs a cycle.
    assert_eq!(report.finish_time(b), Some(1));
}

#[test]
fn failing_assertion_stops_the_simulation_with_context() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("checker", m);
    let x = sys.add_variable("x", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![
        assign(var(x), int_const(5, 16)),
        Stmt::assert(eq(load(var(x)), int_const(6, 16)), "x should be six"),
    ];
    let err = Simulator::new(&sys)
        .unwrap()
        .run_to_quiescence()
        .unwrap_err();
    match err {
        SimError::AssertionFailed {
            behavior,
            note,
            time,
        } => {
            assert_eq!(behavior, "checker");
            assert_eq!(note, "x should be six");
            assert_eq!(time, 1);
        }
        other => panic!("expected assertion failure, got {other}"),
    }
}

#[test]
fn runtime_index_out_of_range_is_an_eval_error() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let arr = sys.add_variable("arr", Ty::array(Ty::Int(16), 4), b);
    let i = sys.add_variable_init("i", Ty::Int(16), b, Value::int(9, 16));
    sys.behavior_mut(b).body = vec![assign(index(var(arr), load(var(i))), int_const(1, 16))];
    let err = Simulator::new(&sys)
        .unwrap()
        .run_to_quiescence()
        .unwrap_err();
    assert!(matches!(err, SimError::Eval { .. }), "{err}");
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn report_lookup_by_name() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("answer", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![assign(var(x), int_const(42, 16))];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(
        report
            .final_variable_by_name("answer")
            .unwrap()
            .as_i64()
            .unwrap(),
        42
    );
    assert!(report.final_variable_by_name("missing").is_none());
}

#[test]
fn trace_recording_stops_at_the_cap_without_error() {
    let (mut sys, m) = shell();
    let s = sys.add_signal("S", Ty::Bits(8));
    let b = sys.add_behavior("P", m);
    let i = sys.add_variable("i", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(99, 16),
        vec![drive_cost(s, resize(load(var(i)), 8), 1)],
    )];
    let mut config = SimConfig::new().with_trace();
    config.max_trace_events = 10;
    let report = Simulator::with_config(&sys, config)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    assert_eq!(report.trace().len(), 10, "bounded trace");
    // The run itself is unaffected.
    assert_eq!(report.finish_time(b), Some(100));
    assert_eq!(report.signal_event_count(s), 99); // i=0 write is no event
}

#[test]
fn dynamic_slices_read_and_write_at_runtime_offsets() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Bits(16), b);
    let y = sys.add_variable("y", Ty::Bits(4), b);
    let j = sys.add_variable_init("j", Ty::Int(16), b, Value::int(2, 16));
    // x(j*4 + 3 downto j*4) := "1010"  with j = 2  -> bits 11..8.
    sys.behavior_mut(b).body = vec![
        assign(
            dyn_slice(var(x), mul(load(var(j)), int_const(4, 16)), 4),
            bits_const(0b1010, 4),
        ),
        assign(
            var(y),
            dyn_slice_of(load(var(x)), mul(load(var(j)), int_const(4, 16)), 4),
        ),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    assert_eq!(
        report.final_variable(x),
        &Value::Bits(BitVec::from_u64(0b1010 << 8, 16))
    );
    assert_eq!(
        report.final_variable(y),
        &Value::Bits(BitVec::from_u64(0b1010, 4))
    );
}

#[test]
fn out_of_range_dynamic_slice_is_an_eval_error() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let x = sys.add_variable("x", Ty::Bits(8), b);
    let j = sys.add_variable_init("j", Ty::Int(16), b, Value::int(6, 16));
    sys.behavior_mut(b).body = vec![assign(
        dyn_slice(var(x), load(var(j)), 4), // bits 9..6 of an 8-bit value
        bits_const(0, 4),
    )];
    let err = Simulator::new(&sys)
        .unwrap()
        .run_to_quiescence()
        .unwrap_err();
    assert!(matches!(err, SimError::Eval { .. }), "{err}");
}

#[test]
fn report_carries_scheduler_stats() {
    let (mut sys, m) = shell();
    let b = sys.add_behavior("P", m);
    let s = sys.add_signal("s", Ty::Bits(8));
    let i = sys.add_variable("i", Ty::Int(16), b);
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(9, 16),
        vec![drive_cost(s, resize(load(var(i)), 8), 1), wait_cycles(2)],
    )];
    // A second process sleeping on its own cadence keeps the scheduler
    // from fast-forwarding the first one past its suspensions, so the
    // run genuinely exercises the event heaps.
    let b2 = sys.add_behavior("Q", m);
    sys.behavior_mut(b2).body = vec![
        wait_cycles(3),
        wait_cycles(3),
        wait_cycles(3),
        wait_cycles(3),
        wait_cycles(3),
    ];
    let report = Simulator::new(&sys).unwrap().run_to_quiescence().unwrap();
    // Timed writes and sleeps both pass through the event heaps, so a run
    // that uses them must have observed a non-empty heap at some point.
    assert!(
        report.heap_peak() >= 1,
        "heap_peak = {}",
        report.heap_peak()
    );
    // Ten loop iterations each advance time at least twice.
    assert!(
        report.time_steps() >= 20,
        "time_steps = {}",
        report.time_steps()
    );
    assert!(report.deltas_per_step() > 0.0);
}

//! Trace ordering under the parallel delta-cycle kernel.
//!
//! [`TraceSink`] documents that `change` hooks arrive "in non-decreasing
//! time order, exactly as the kernel recorded them". The parallel kernel
//! must preserve that guarantee bit-for-bit: the recorded event stream —
//! and therefore any rendering of it, VCD text included — is identical
//! at every thread count, and the [`SimConfig::with_max_trace_events`]
//! bound truncates at exactly the same event.

use ifsyn_sim::trace::{emit_trace, MemorySink};
use ifsyn_sim::vcd::to_vcd_string;
use ifsyn_sim::{SimConfig, SimReport, Simulator};
use ifsyn_spec::System;
use ifsyn_systems::{synth_system, SynthConfig};

/// A synthetic field busy enough to produce multi-shard rounds and a
/// few thousand trace events.
fn field() -> ifsyn_systems::SynthSystem {
    synth_system(
        &SynthConfig::new()
            .with_couples(6)
            .with_rounds(12)
            .with_compute(16)
            .with_seed(0x7eace),
    )
}

fn run(sys: &System, config: SimConfig) -> SimReport {
    Simulator::with_config(sys, config)
        .expect("system compiles")
        .run_to_quiescence()
        .expect("system quiesces")
}

#[test]
fn vcd_text_is_identical_at_any_thread_count() {
    let f = field();
    let config = SimConfig::new().with_trace();
    let scalar = run(&f.system, config.clone());
    let scalar_vcd = to_vcd_string(&f.system, &scalar);
    assert!(
        scalar_vcd.contains("$enddefinitions"),
        "VCD header rendered"
    );
    for threads in [2, 4, 8] {
        let par = run(&f.system, config.clone().with_sim_threads(threads));
        assert_eq!(
            to_vcd_string(&f.system, &par),
            scalar_vcd,
            "VCD text diverged at {threads} threads"
        );
    }
}

#[test]
fn memory_sink_sees_the_same_replay_as_the_vcd_renderer() {
    // Both sinks ride the same `emit_trace` replay; under the parallel
    // kernel the MemorySink stream must equal the scalar one event for
    // event, and stay consistent with the report it came from.
    let f = field();
    let config = SimConfig::new().with_trace();
    let scalar = run(&f.system, config.clone());
    let mut scalar_sink = MemorySink::new();
    emit_trace(&f.system, &scalar, &mut scalar_sink);
    for threads in [2, 4, 8] {
        let par = run(&f.system, config.clone().with_sim_threads(threads));
        let mut par_sink = MemorySink::new();
        emit_trace(&f.system, &par, &mut par_sink);
        assert_eq!(par_sink, scalar_sink, "sink diverged at {threads} threads");
        assert_eq!(par_sink.events, par.trace(), "sink mirrors its report");
        // The documented ordering guarantee: non-decreasing time.
        assert!(
            par_sink.events.windows(2).all(|w| w[0].time <= w[1].time),
            "events out of time order at {threads} threads"
        );
    }
}

#[test]
fn trace_truncation_cuts_at_the_same_event() {
    let f = field();
    let full = run(&f.system, SimConfig::new().with_trace());
    let cap = full.trace().len() / 2;
    assert!(cap > 0, "field produces enough events to truncate");
    let capped = SimConfig::new().with_trace().with_max_trace_events(cap);
    let scalar = run(&f.system, capped.clone());
    assert_eq!(scalar.trace().len(), cap, "scalar run filled the bound");
    assert_eq!(
        scalar.trace(),
        &full.trace()[..cap],
        "truncation is a prefix of the full trace"
    );
    for threads in [2, 4, 8] {
        let par = run(&f.system, capped.clone().with_sim_threads(threads));
        assert_eq!(
            par.trace(),
            scalar.trace(),
            "truncated trace diverged at {threads} threads"
        );
    }
}

//! # ifsyn-partition — system partitioning
//!
//! The substrate step *before* the DAC'94 paper's contribution (their
//! reference \[1\], Vahid & Gajski's SpecSyn partitioner): group the
//! behaviors and variables of a specification into modules (chips /
//! memories), derive an abstract [`Channel`] for every cross-module
//! variable access, and rewrite those accesses into channel operations.
//!
//! Two modes:
//!
//! * **manual placement** — [`Partitioner::place_behavior`] /
//!   [`Partitioner::place_variable`] pin objects to named modules (how
//!   the paper's Fig. 3 and Fig. 6 partitions are specified);
//! * **automatic clustering** — [`Partitioner::auto_cluster`] merges the
//!   closest behavior/variable pairs (closeness = bits exchanged) until
//!   the requested module count remains, a simplified SpecSyn closeness
//!   metric.
//!
//! Channel *grouping* ([`PartitionResult::channel_groups`]) collects
//! channels that connect the same module pair — the groups bus
//! generation implements as single buses.
//!
//! [`Channel`]: ifsyn_spec::Channel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod derive;
mod error;
pub mod footprint;
mod partitioner;
pub mod shard;

pub use cluster::Closeness;
pub use error::PartitionError;
pub use footprint::{footprint, footprints, ProcessFootprint};
pub use partitioner::{PartitionResult, Partitioner};
pub use shard::{plan_shards, ShardPlan};
